//! Quickstart: store versions, run temporal queries, use the operators.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The two entry points shown here are the `DbOptions` builder (open an
//! in-memory or on-disk database — `DbOptions::at(dir).snapshot_every(8)
//! .cache_bytes(32 << 20).open()?`) and the query builder:
//! `db.query(text).at(ts).run()?` materialises a `QueryResult` (with
//! execution statistics including materialized-version cache hits), while
//! `.stream()?` pulls rows one at a time through the streaming executor.

use temporal_xml::core::ops::lifetime::LifetimeStrategy;
use temporal_xml::{Database, Eid, Interval, QueryExt, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory();
    let day = |d: u32| Timestamp::from_date(2024, 3, d);

    // 1. Store three versions of a document (the database diffs them and
    //    stores completed deltas; element identity persists).
    println!("== storing three versions of inventory.xml ==");
    db.put(
        "inventory.xml",
        r#"<inventory>
             <product sku="A1"><name>Espresso machine</name><stock>12</stock></product>
             <product sku="B2"><name>Grinder</name><stock>30</stock></product>
           </inventory>"#,
        day(1),
    )?;
    db.put(
        "inventory.xml",
        r#"<inventory>
             <product sku="A1"><name>Espresso machine</name><stock>7</stock></product>
             <product sku="B2"><name>Grinder</name><stock>30</stock></product>
             <product sku="C3"><name>Kettle</name><stock>50</stock></product>
           </inventory>"#,
        day(10),
    )?;
    db.put(
        "inventory.xml",
        r#"<inventory>
             <product sku="A1"><name>Espresso machine</name><stock>0</stock></product>
             <product sku="C3"><name>Kettle</name><stock>44</stock></product>
           </inventory>"#,
        day(20),
    )?;

    // 2. Snapshot query: what did the inventory look like on day 15?
    //    `.at(ts)` anchors NOW so the run is deterministic.
    println!("\n== snapshot on 2024-03-15 ==");
    let r = db
        .query(r#"SELECT R/name, R/stock FROM doc("inventory.xml")[15/03/2024]//product R"#)
        .at(day(25))
        .run()?;
    println!("{}", r.to_xml());

    // 3. History query, streamed: the stock history of product A1.
    //    `.stream()` yields rows as the operator tree produces them —
    //    nothing is materialised up front, so peak memory is bounded by
    //    the scan's candidate set, not the result size, and a `LIMIT`
    //    stops the index cursors early.
    println!("\n== stock history of the espresso machine (streamed) ==");
    let mut stream = db
        .query(
            r#"SELECT TIME(R), R/stock
               FROM doc("inventory.xml")[EVERY]//product R
               WHERE R/name CONTAINS "espresso""#,
        )
        .at(day(25))
        .stream()?;
    for row in &mut stream {
        let row = row?;
        println!("  {}: {}", row[0].as_text(), row[1].as_text());
    }
    let stats = stream.stats();
    println!("  ({} rows, {} reconstructions)", stats.rows_output, stats.reconstructions);

    // 4. Aggregates never reconstruct documents (the paper's Q2 point).
    println!("\n== product count over time (no reconstruction) ==");
    for d in [1, 10, 20] {
        let r = db
            .query(format!(
                r#"SELECT COUNT(R) FROM doc("inventory.xml")[{d:02}/03/2024]//product R"#
            ))
            .at(day(25))
            .run()?;
        println!(
            "  day {d:2}: {} products   (reconstructions: {})",
            r.rows[0][0].as_text(),
            r.stats.reconstructions
        );
    }

    // 5. Direct operator use: element identity and lifetimes.
    println!("\n== operator-level access ==");
    let doc = db.store().doc_id("inventory.xml")?.expect("doc exists");
    let current = db.store().current_tree(doc)?;
    let grinder_gone = {
        // The Grinder was removed in v2 — find its EID in an old version.
        let v1 = db.reconstruct_doc_at(doc, day(12))?;
        let node = v1
            .iter()
            .find(|&n| {
                v1.text_content(n).contains("Grinder") && v1.node(n).name() == Some("product")
            })
            .expect("grinder in v1");
        Eid::new(doc, v1.node(node).xid)
    };
    let created = db.cre_time(grinder_gone.at(day(12)), LifetimeStrategy::Index)?;
    let deleted = db.del_time(grinder_gone.at(day(12)), LifetimeStrategy::Index)?;
    println!("  grinder {grinder_gone}: created {created}, deleted {deleted}");

    // Element history of product A1 (by persistent identity).
    let a1 =
        current.iter().find(|&n| current.node(n).attr("sku") == Some("A1")).expect("A1 in current");
    let a1_eid = Eid::new(doc, current.node(a1).xid);
    println!("  element history of {a1_eid}:");
    for ev in db.element_history(a1_eid, Interval::ALL)? {
        println!(
            "    v{} @ {}: {}",
            ev.version.0,
            ev.teid.ts,
            temporal_xml::xml::to_string(&ev.subtree)
        );
    }

    // 6. Diff two versions of the document root as an XML edit script.
    println!("\n== edit script between day 1 and day 20 ==");
    let root_eid = Eid::new(doc, current.node(current.root().unwrap()).xid);
    let script = db.diff(root_eid.at(day(1)), root_eid.at(day(20)))?;
    println!("{}", temporal_xml::xml::to_string_pretty(&script));

    Ok(())
}
