//! The paper's running example, end to end: Figure 1's restaurant guide
//! and every example query from §5, §6.2 and §7.4.
//!
//! ```sh
//! cargo run --example restaurant_guide
//! ```

use temporal_xml::wgen::restaurant::{figure1_versions, GUIDE_URL};
use temporal_xml::{Database, QueryExt, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory();

    // Figure 1: the restaurant list at guide.com as retrieved on
    // January 1st, January 15th and January 31st 2001.
    println!("== loading Figure 1 ==");
    for (ts, xml) in figure1_versions() {
        db.put(GUIDE_URL, &xml, ts)?;
        println!("  stored version @ {ts}");
    }
    let now = Timestamp::from_date(2001, 2, 20);
    let run = |q: &str| -> Result<String, temporal_xml::base::Error> {
        Ok(db.query(q).at(now).run()?.to_xml())
    };

    // §5 intro query: all restaurants with price less than $10 — none in
    // the guide, so the result is empty.
    println!("\n== §5: restaurants with price < 10 (current) ==");
    println!(
        "{}",
        run(r#"SELECT R FROM doc("guide.com/restaurants")//restaurant R WHERE R/price < 10"#)?
    );

    // Q1: list all restaurants in the list as of 26/01/2001.
    println!("\n== Q1: snapshot at 26/01/2001 ==");
    println!("{}", run(r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#)?);

    // Q2: the number of restaurants at 26/01/2001. The paper writes
    // SELECT SUM(R); counting elements is COUNT(R) in this dialect. Note
    // the zero reconstructions — the paper's point that delta-only storage
    // costs nothing here.
    println!("\n== Q2: count at 26/01/2001 ==");
    let r = db
        .query(r#"SELECT COUNT(R) FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#)
        .at(now)
        .run()?;
    println!("{}   (documents reconstructed: {})", r.to_xml(), r.stats.reconstructions);

    // Q3: the price history of the restaurant Napoli.
    println!("\n== Q3: price history of Napoli ([EVERY]) ==");
    println!(
        "{}",
        run(r#"SELECT TIME(R), R/price
                FROM doc("guide.com/restaurants")[EVERY]//restaurant R
                WHERE R/name = "Napoli""#)?
    );

    // §6 snippets: create-time predicate and PREVIOUS/CURRENT.
    println!("\n== §6: restaurants created on/after 11/01/2001 ==");
    println!(
        "{}",
        run(r#"SELECT R/name FROM doc("guide.com/restaurants")[EVERY]//restaurant R
               WHERE CREATE TIME(R) >= 11/01/2001"#)?
    );

    println!("\n== §6: previous version of each current restaurant ==");
    println!("{}", run(r#"SELECT PREVIOUS(R) FROM doc("guide.com/restaurants")//restaurant R"#)?);

    println!("\n== §6: DISTINCT CURRENT(R)/name over the history ==");
    println!(
        "{}",
        run(r#"SELECT DISTINCT CURRENT(R)/name
               FROM doc("guide.com/restaurants")[EVERY]//restaurant R"#)?
    );

    // §7.4: restaurants that have increased their prices since 10/01/2001.
    println!("\n== §7.4: price increases since 10/01/2001 ==");
    println!(
        "{}",
        run(r#"SELECT R1/name
               FROM doc("guide.com/restaurants")[10/01/2001]//restaurant R1,
                    doc("guide.com/restaurants")//restaurant R2
               WHERE R1/name = R2/name AND R1/price < R2/price"#)?
    );

    // The same join done by identity (==) instead of name equality — the
    // §7.4 discussion of what EIDs buy.
    println!("\n== §7.4 variant: the same join by persistent identity ==");
    println!(
        "{}",
        run(r#"SELECT R1/name, DIFF(R1, R2)
               FROM doc("guide.com/restaurants")[10/01/2001]//restaurant R1,
                    doc("guide.com/restaurants")//restaurant R2
               WHERE R1 == R2 AND R1/price < R2/price"#)?
    );

    // §5 relative time: the snapshot two weeks before `now` (06/02/2001 —
    // after the last update, so the current list).
    println!("\n== §5: NOW - 14 DAYS ==");
    println!(
        "{}",
        run(r#"SELECT R/name, R/price
               FROM doc("guide.com/restaurants")[NOW - 14 DAYS]//restaurant R"#)?
    );

    Ok(())
}
