//! An XML web warehouse (the paper's Xyleme setting, §3.1 case 2).
//!
//! A simulated crawler feeds the database: pages change on their own
//! schedule, the crawler observes them with jitter, misses versions and
//! notices deletions late. The warehouse then answers temporal queries —
//! including change-oriented ones via the delta-content index — over the
//! *crawl-time* history, which is all it has.
//!
//! ```sh
//! cargo run --example web_warehouse
//! ```

use temporal_xml::core::DbOptions;
use temporal_xml::index::deltaindex::ChangeOp;
use temporal_xml::index::maint::{FtiMode, IndexConfig};
use temporal_xml::wgen::crawler::{simulate, CrawlConfig, CrawlKind};
use temporal_xml::wgen::tdocgen::DocGen;
use temporal_xml::{Duration, Interval, QueryExt, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Index both version contents and delta operations (§7.2's third
    // alternative) so change queries are index-served too.
    let db = DbOptions::new()
        .index_config(IndexConfig {
            fti_mode: FtiMode::Both,
            eid_index: true,
            ..IndexConfig::default()
        })
        .open()?;

    // Crawl 8 sites for ~3 weeks.
    let start = Timestamp::from_date(2001, 3, 1);
    let cfg = CrawlConfig {
        pages: 8,
        page_change_every: Duration::from_hours(8),
        crawl_every: Duration::from_days(1),
        death_prob: 0.02,
        horizon: Duration::from_days(21),
        ..Default::default()
    };
    let (events, true_versions) = simulate(&cfg, start, 2001);

    println!("== feeding {} crawl events into the warehouse ==", events.len());
    let mut stored = 0usize;
    let mut removed = 0usize;
    for e in &events {
        match &e.kind {
            CrawlKind::Content(xml) => {
                let r = db.put(&e.url, xml, e.crawled_at)?;
                if r.changed {
                    stored += 1;
                }
            }
            CrawlKind::Gone => {
                db.delete(&e.url, e.crawled_at)?;
                removed += 1;
            }
        }
    }
    let observed: usize = stored;
    let truth: usize = true_versions.iter().sum();
    println!(
        "  stored {observed} versions ({removed} deletions observed); \
         sites actually produced {truth} versions — the crawler missed {}",
        truth - observed
    );

    // Snapshot of the whole collection one week in.
    let now = start + Duration::from_days(30);
    let probe = start + Duration::from_days(7);
    let r = db
        .query(format!(r#"SELECT COUNT(R) FROM doc("*")[{}]//item R"#, probe.micros()))
        .at(now)
        .run()?;
    println!(
        "\n== warehouse-wide snapshot, day 7 ==\n  items visible: {}  (reconstructions: {})",
        r.rows[0][0].as_text(),
        r.stats.reconstructions
    );

    // Track one popular word across the whole history.
    let word = DocGen::word_at_rank(0);
    let r = db
        .query(format!(r#"SELECT COUNT(R) FROM doc("*")[EVERY]//text R WHERE R CONTAINS "{word}""#))
        .at(now)
        .run()?;
    println!(
        "\n== occurrences of the most common word `{word}` over all versions ==\n  rows: {}",
        r.rows[0][0].as_text()
    );

    // Change-oriented query via the delta-content index (§7.2, second
    // alternative): in which versions was an <item> deleted?
    let di = db.indexes().delta_index();
    let deletions = di.find("item", Some(ChangeOp::Delete));
    println!(
        "\n== delta-content index: versions that deleted an <item> ==\n  {} delete events",
        deletions.len()
    );
    drop(di);

    // Per-document history inspection for the busiest page.
    let (busiest, _) = db
        .store()
        .list()?
        .into_iter()
        .map(|(d, n)| (d, n.clone()))
        .max_by_key(|(d, _)| db.store().versions(*d).map(|v| v.len()).unwrap_or(0))
        .expect("some documents");
    let name = db.store().doc_name(busiest)?;
    let versions = db.store().versions(busiest)?;
    println!("\n== busiest page: {name} with {} versions ==", versions.len());
    let history = db.doc_history(busiest, Interval::ALL)?;
    for dv in history.iter().take(3) {
        println!("  v{} @ {}: {} nodes", dv.version.0, dv.ts, dv.tree.len());
    }

    // Index footprints (the E7 trade-off, §7.2).
    let fti = db.indexes().fti();
    let di = db.indexes().delta_index();
    println!(
        "\n== index sizes ==\n  temporal FTI: {} postings (~{} KiB)\n  delta index:  {} entries (~{} KiB)",
        fti.posting_count(),
        fti.approx_bytes() / 1024,
        di.entry_count(),
        di.approx_bytes() / 1024,
    );

    Ok(())
}
