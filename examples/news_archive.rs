//! A news archive: corrections, retractions and change tracking.
//!
//! The paper's §3.1 mentions news notices as the document-time example;
//! this archive stores a wire feed whose stories get corrected and
//! eventually retracted, and shows the operators journalists' tools need:
//! "what did we say at time t", "how did this story change", and "find the
//! version that first mentioned X".
//!
//! ```sh
//! cargo run --example news_archive
//! ```

use temporal_xml::core::ops::lifetime::LifetimeStrategy;
use temporal_xml::{Database, Eid, Interval, QueryExt, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory();
    let t = |h: u32, m: u32| Timestamp::from_datetime(2001, 9, 10, h, m, 0);

    // A developing story, as filed over one day.
    println!("== filing story wire/4711 over the day ==");
    db.put(
        "wire/4711",
        r#"<story id="4711">
             <headline>Harbour bridge closed after incident</headline>
             <body>The harbour bridge was closed on Monday morning. Police gave no details.</body>
             <byline>NTB</byline>
           </story>"#,
        t(8, 12),
    )?;
    db.put(
        "wire/4711",
        r#"<story id="4711">
             <headline>Harbour bridge closed after collision</headline>
             <body>The harbour bridge was closed on Monday morning after a ship collided
                   with a pillar. No injuries were reported.</body>
             <byline>NTB</byline>
           </story>"#,
        t(9, 40),
    )?;
    db.put(
        "wire/4711",
        r#"<story id="4711">
             <headline>Harbour bridge reopens after collision</headline>
             <body>The harbour bridge reopened Monday afternoon. The collision caused only
                   minor damage. No injuries were reported.</body>
             <byline>NTB</byline>
             <correction>An earlier version said the bridge remained closed.</correction>
           </story>"#,
        t(14, 5),
    )?;
    // A second story that gets retracted.
    db.put(
        "wire/4712",
        r#"<story id="4712">
             <headline>Mayor to resign, sources say</headline>
             <body>Unconfirmed reports suggest the mayor will resign.</body>
           </story>"#,
        t(10, 30),
    )?;
    db.delete("wire/4712", t(11, 45))?; // retracted

    let now = t(23, 0);
    println!("  3 versions of wire/4711 filed; wire/4712 filed and retracted");

    // What did the archive show at 10:00?
    println!("\n== front page as of 10:00 ==");
    let r = db
        .query(format!(r#"SELECT R FROM doc("*")[{}]//headline R"#, t(10, 0).micros()))
        .at(now)
        .run()?;
    println!("{}", r.to_xml());

    // ...and at 12:00, after the retraction.
    println!("\n== front page as of 12:00 (mayor story retracted) ==");
    let r = db
        .query(format!(r#"SELECT R FROM doc("*")[{}]//headline R"#, t(12, 0).micros()))
        .at(now)
        .run()?;
    println!("{}", r.to_xml());

    // When did the word "collision" first appear? All versions containing
    // it, oldest first, with their element create times.
    println!("\n== versions of the headline mentioning `collision` ==");
    let r = db
        .query(
            r#"SELECT TIME(R), R
               FROM doc("wire/4711")[EVERY]//headline R
               WHERE R CONTAINS "collision""#,
        )
        .at(now)
        .run()?;
    println!("{}", r.to_xml());

    // The full correction trail of story 4711 as edit scripts.
    println!("\n== correction trail of wire/4711 ==");
    let doc = db.store().doc_id("wire/4711")?.unwrap();
    let cur = db.store().current_tree(doc)?;
    let root_eid = Eid::new(doc, cur.node(cur.root().unwrap()).xid);
    let history = db.element_history(root_eid, Interval::ALL)?;
    println!("  {} element versions", history.len());
    for pair in history.windows(2) {
        let (newer, older) = (&pair[0], &pair[1]);
        let script = db.diff(older.teid, newer.teid)?;
        let ops = script.root().map(|r| script.node(r).children().len()).unwrap_or(0);
        println!("  {} -> {}: {ops} edit operations", older.teid.ts, newer.teid.ts);
    }

    // Lifetime of the retracted story's root element.
    println!("\n== lifetime of the retracted story ==");
    let doc2 = db.store().doc_id("wire/4712")?.unwrap();
    let t0 = db.reconstruct_doc_at(doc2, t(10, 30))?;
    let eid = Eid::new(doc2, t0.node(t0.root().unwrap()).xid);
    let teid = eid.at(t(10, 30));
    let created = db.cre_time(teid, LifetimeStrategy::Traverse)?;
    let deleted = db.del_time(teid, LifetimeStrategy::Traverse)?;
    println!("  story 4712: on the wire {created} — retracted {deleted}");

    // The correction element was added late: its create time.
    println!("\n== when was the <correction> added? ==");
    let r =
        db.query(r#"SELECT CREATETIME(R) FROM doc("wire/4711")//correction R"#).at(now).run()?;
    println!("{}", r.to_xml());

    Ok(())
}
