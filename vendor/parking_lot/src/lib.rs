//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the `parking_lot` API the workspace uses
//! (`Mutex`, `RwLock` and their guards), backed by `std::sync`. Poisoning
//! is transparently ignored — like real `parking_lot`, a panic while a
//! lock is held does not poison it for later users.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with the `parking_lot` API (no poisoning, no
/// `Result` from `lock`).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with the `parking_lot` API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a panic.
        assert_eq!(*m.lock(), 0);
    }
}
