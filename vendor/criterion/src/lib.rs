//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the criterion API the workspace's
//! benches use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `iter`, `iter_batched`, `criterion_group!`,
//! `criterion_main!`). Measurement is deliberately simple: a short
//! warm-up, then `sample_size` timed samples of an adaptively chosen
//! batch, reporting the median ns/iter to stdout. No statistics engine,
//! no plots, no comparison against saved baselines — the goal is that
//! `cargo bench` runs and prints stable, comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works like upstream.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let n = self.sample_size;
        run_one(&id.into().label, n, f);
    }
}

/// A named group; benchmarks report as `group/benchmark`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// A function identifier, optionally parameterised.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("scan", 64)` renders as `scan/64`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// How `iter_batched` amortises setup cost. The stub runs one routine
/// per setup regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch the runner requested.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed fresh input from `setup` each call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up and batch sizing: grow the batch until one call takes
    // ≳1 ms (or a growth cap), so per-sample timings are measurable.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!("{label:<48} {:>12} median  [{} .. {}]", fmt_ns(median), fmt_ns(lo), fmt_ns(hi));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_group_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        let mut hits = 0u32;
        g.bench_function("iter", |b| {
            hits += 1;
            b.iter(|| black_box(2u64 + 2))
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(hits >= 3, "closure re-run per sample: {hits}");
    }
}
