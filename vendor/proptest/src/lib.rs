//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the subset of proptest the workspace uses:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! * `any::<T>()` for primitive integers, ranges as strategies, `Just`,
//!   tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//!   and `&str` regex-subset string strategies (`.`, `[...]`, `(a|b)`,
//!   `{m,n}` repetition — the forms used in this repo's tests);
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assume!` / `prop_oneof!`
//!   macros.
//!
//! Generation-only: failing cases are reported with their `Debug` inputs
//! and the deterministic case seed, but there is no shrinking. Regression
//! files (`.proptest-regressions`) are ignored.

use std::fmt::Debug;
use std::sync::Arc;

pub mod pattern;

/// Deterministic test RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assumption (`prop_assume!`) failed; the case is skipped.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

/// Result type of a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum rejected cases before the property errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// Convenience constructor mirroring upstream.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

// ------------------------------------------------------------ strategies

/// A value generator. Generation-only (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds recursive strategies: applies `recurse` to the accumulated
    /// strategy `depth` times, with the leaf as the base. Each level
    /// randomly picks between recursing and bottoming out, so generated
    /// structures have varying depth ≤ `depth` + leaf.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let mut level: BoxedStrategy<Self::Value> = self.boxed();
        for _ in 0..depth {
            // Mix in the shallower level so depth varies per sample.
            let deeper = recurse(level.clone()).boxed();
            level = Union { variants: vec![(1, level), (2, deeper)] }.boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, shareable strategy.
pub struct BoxedStrategy<T>(Arc<dyn StrategyObj<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    /// (weight, strategy) variants; weights are relative.
    pub variants: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: Debug> Union<T> {
    /// Builds a union from weighted variants.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.variants[0].1.generate(rng)
    }
}

/// `any::<T>()` — full-domain uniform primitives.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy value.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain integer strategy (the `any::<int>()` implementation).
#[derive(Clone, Debug, Default)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy { AnyInt(std::marker::PhantomData) }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyInt<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyInt<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyInt(std::marker::PhantomData)
    }
}

/// Pattern-string strategy: `&str` generates strings matching a regex
/// subset (see [`pattern`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("bad pattern strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// The `prop::` namespace mirroring upstream's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Size specification for [`vec`].
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// Vec-of-strategy strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.range(self.size.lo, self.size.hi);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::*;

        /// Uniform choice from a fixed list.
        #[derive(Clone, Debug)]
        pub struct Select<T: Clone + Debug> {
            items: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.range(0, self.items.len())].clone()
            }
        }

        /// `prop::sample::select(items)`.
        pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select from empty list");
            Select { items }
        }
    }

    pub use super::any;
}

/// The glob-import prelude, mirroring upstream.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------- macros

/// Weighted or unweighted choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Asserts within a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The property-test macro: generates `#[test]` functions that run the
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` item inside `proptest! { .. }`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Distinct deterministic seed per property, stable across runs.
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut rejects = 0u32;
            let mut case = 0u32;
            let mut executed = 0u32;
            while executed < config.cases {
                let mut rng = $crate::TestRng::new(base ^ ((case as u64) << 1));
                case += 1;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<
                    $crate::TestCaseResult,
                    ::std::boxed::Box<dyn ::std::any::Any + Send>,
                > = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg;)+
                    let ret: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    ret
                }));
                match outcome {
                    Ok(Ok(())) => executed += 1,
                    Ok(Err($crate::TestCaseError::Reject(_))) => {
                        rejects += 1;
                        assert!(
                            rejects <= config.max_global_rejects,
                            "proptest {}: too many rejected cases ({rejects})",
                            stringify!($name),
                        );
                    }
                    Ok(Err($crate::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest {} failed (case #{case}): {msg}\n  inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest {} panicked (case #{case})\n  inputs: {inputs}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// FNV-1a hash of a string (deterministic per-property seeds).
#[doc(hidden)]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ints_in_range(a in 0u64..100, b in 5usize..=9) {
            prop_assert!(a < 100);
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn oneof_and_tuples(x in prop_oneof![2 => 0u32..5, 1 => 10u32..15]) {
            prop_assert!(x < 5 || (10..15).contains(&x), "x = {}", x);
        }

        #[test]
        fn string_patterns(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum T {
            Leaf(u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(T::Leaf)
            .prop_recursive(3, 24, 4, |inner| prop::collection::vec(inner, 0..4).prop_map(T::Node));
        let mut rng = crate::TestRng::new(5);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5, "depth bound holds: {t:?}");
        }
    }

    #[test]
    fn select_and_just() {
        let s = (Just("k".to_string()), prop::sample::select(vec!["a", "b"]));
        let mut rng = crate::TestRng::new(1);
        for _ in 0..20 {
            let (k, v) = s.generate(&mut rng);
            assert_eq!(k, "k");
            assert!(v == "a" || v == "b");
        }
    }
}
