//! Generator for the regex subset used as `&str` strategies.
//!
//! Supports the forms this workspace's tests use:
//!
//! * literal characters and `\x` escapes;
//! * `.` — any printable ASCII character (plus space);
//! * `[...]` character classes with ranges (`a-z`), escapes (`\[`),
//!   and a literal `-` when first or last;
//! * `(alt1|alt2|...)` alternation over sequences;
//! * `{m,n}`, `{m,}`, `{n}`, `*`, `+`, `?` repetition of the preceding atom.
//!
//! Unsupported syntax is a parse error so misuse fails loudly rather
//! than silently generating the wrong distribution. `{m,}` caps the
//! open upper bound at `m + 32`.

use crate::TestRng;

/// A parsed pattern: a sequence of repeated atoms.
#[derive(Clone, Debug)]
pub struct Pattern {
    seq: Vec<Rep>,
}

#[derive(Clone, Debug)]
struct Rep {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Any printable ASCII (0x20..=0x7E).
    Any,
    /// Flat list of candidate characters (ranges pre-expanded).
    Class(Vec<char>),
    /// Alternation of sub-sequences.
    Group(Vec<Pattern>),
}

impl Pattern {
    /// Parses `src`, or explains why it is outside the supported subset.
    pub fn parse(src: &str) -> Result<Pattern, String> {
        let mut chars: Vec<char> = src.chars().collect();
        chars.reverse(); // pop() from the front
        let pat = parse_seq(&mut chars, /*in_group:*/ false)?;
        if let Some(c) = chars.pop() {
            return Err(format!("unexpected {c:?}"));
        }
        Ok(pat)
    }

    /// Generates one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.gen_into(rng, &mut out);
        out
    }

    fn gen_into(&self, rng: &mut TestRng, out: &mut String) {
        for rep in &self.seq {
            let n = rng.range(rep.min, rep.max + 1);
            for _ in 0..n {
                match &rep.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Any => out.push((0x20 + rng.below(0x5F) as u8) as char),
                    Atom::Class(cs) => out.push(cs[rng.range(0, cs.len())]),
                    Atom::Group(alts) => alts[rng.range(0, alts.len())].gen_into(rng, out),
                }
            }
        }
    }
}

fn parse_seq(chars: &mut Vec<char>, in_group: bool) -> Result<Pattern, String> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.last() {
        if in_group && (c == '|' || c == ')') {
            break;
        }
        chars.pop();
        let atom = match c {
            '.' => Atom::Any,
            '[' => Atom::Class(parse_class(chars)?),
            '(' => Atom::Group(parse_group(chars)?),
            '\\' => Atom::Literal(chars.pop().ok_or("trailing backslash")?),
            ')' | '|' | '{' | '}' | '*' | '+' | '?' => {
                return Err(format!("unexpected metacharacter {c:?}"))
            }
            other => Atom::Literal(other),
        };
        let (min, max) = parse_rep(chars)?;
        seq.push(Rep { atom, min, max });
    }
    Ok(Pattern { seq })
}

fn parse_group(chars: &mut Vec<char>) -> Result<Vec<Pattern>, String> {
    let mut alts = Vec::new();
    loop {
        alts.push(parse_seq(chars, true)?);
        match chars.pop() {
            Some('|') => continue,
            Some(')') => return Ok(alts),
            _ => return Err("unterminated group".into()),
        }
    }
}

fn parse_class(chars: &mut Vec<char>) -> Result<Vec<char>, String> {
    let mut members = Vec::new();
    loop {
        let c = chars.pop().ok_or("unterminated character class")?;
        match c {
            ']' => break,
            '\\' => members.push(chars.pop().ok_or("trailing backslash in class")?),
            _ => {
                // Range only if '-' is followed by a non-']' character.
                if chars.last() == Some(&'-') && chars.len() >= 2 && chars[chars.len() - 2] != ']' {
                    chars.pop(); // the '-'
                    let hi = chars.pop().unwrap();
                    let hi = if hi == '\\' {
                        chars.pop().ok_or("trailing backslash in class")?
                    } else {
                        hi
                    };
                    if (c as u32) > (hi as u32) {
                        return Err(format!("inverted range {c:?}-{hi:?}"));
                    }
                    for u in (c as u32)..=(hi as u32) {
                        members.push(char::from_u32(u).ok_or("bad range")?);
                    }
                } else {
                    members.push(c);
                }
            }
        }
    }
    if members.is_empty() {
        return Err("empty character class".into());
    }
    Ok(members)
}

fn parse_rep(chars: &mut Vec<char>) -> Result<(usize, usize), String> {
    match chars.last() {
        Some('{') => {
            chars.pop();
            let min = parse_int(chars)?;
            match chars.pop() {
                Some('}') => Ok((min, min)),
                Some(',') => {
                    let max = if chars.last() == Some(&'}') {
                        min + 32 // open upper bound, capped
                    } else {
                        parse_int(chars)?
                    };
                    if chars.pop() != Some('}') {
                        return Err("unterminated repetition".into());
                    }
                    if max < min {
                        return Err(format!("inverted repetition {{{min},{max}}}"));
                    }
                    Ok((min, max))
                }
                _ => Err("unterminated repetition".into()),
            }
        }
        Some('*') => {
            chars.pop();
            Ok((0, 16))
        }
        Some('+') => {
            chars.pop();
            Ok((1, 16))
        }
        Some('?') => {
            chars.pop();
            Ok((0, 1))
        }
        _ => Ok((1, 1)),
    }
}

fn parse_int(chars: &mut Vec<char>) -> Result<usize, String> {
    let mut n: Option<usize> = None;
    while let Some(&c) = chars.last() {
        if let Some(d) = c.to_digit(10) {
            chars.pop();
            n = Some(n.unwrap_or(0) * 10 + d as usize);
        } else {
            break;
        }
    }
    n.ok_or_else(|| "expected integer in repetition".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pat: &str, seed: u64) -> String {
        Pattern::parse(pat).unwrap().generate(&mut TestRng::new(seed))
    }

    #[test]
    fn literals_and_rep() {
        assert_eq!(sample("abc", 0), "abc");
        let s = sample("a{3}", 1);
        assert_eq!(s, "aaa");
        for seed in 0..50 {
            let s = sample("x{2,5}", seed);
            assert!((2..=5).contains(&s.len()), "{s:?}");
        }
    }

    #[test]
    fn classes_with_ranges_and_escapes() {
        for seed in 0..200 {
            let s = sample("[<>/a-z \"=&;!\\[\\]-]{0,120}", seed);
            assert!(s.len() <= 120);
            for c in s.chars() {
                assert!("<>/ \"=&;![]-".contains(c) || c.is_ascii_lowercase(), "unexpected {c:?}");
            }
        }
    }

    #[test]
    fn dot_is_printable() {
        for seed in 0..100 {
            for c in sample(".{0,200}", seed).chars() {
                assert!(('\x20'..='\x7E').contains(&c));
            }
        }
    }

    #[test]
    fn alternation_group() {
        let pat = "(SELECT|FROM|WHERE|doc|//|\\[|\"x\"|=|~|==|,| |[0-9]){0,60}";
        for seed in 0..100 {
            let s = sample(pat, seed);
            assert!(s.len() <= 60 * 6);
        }
        // A single mandatory pick lands in the alternative set.
        let one = Pattern::parse("(ab|cd)").unwrap();
        for seed in 0..20 {
            let s = one.generate(&mut TestRng::new(seed));
            assert!(s == "ab" || s == "cd", "{s:?}");
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(Pattern::parse("a{2,1}").is_err());
        assert!(Pattern::parse("(unclosed").is_err());
        assert!(Pattern::parse("[unclosed").is_err());
        assert!(Pattern::parse("}stray").is_err());
    }
}
