//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the pieces the workspace uses: `SeedableRng`,
//! `rngs::StdRng`, and the `Rng` extension trait with `gen`, `gen_bool`
//! and `gen_range` over integer ranges. The generator is xoshiro256**
//! seeded via splitmix64 — deterministic for a given seed, which is all
//! the workload generators and experiments require (they fix seeds; none
//! assert on the exact stream of the upstream crate).

/// Core random source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256** here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9, 0x7F4A_7C15, 0xBF58_476D, 0x1CE4_E5B9];
            }
            StdRng { s }
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[low, high)`. Panics if `low >= high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(unused_comparisons)]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64
                // per sample, irrelevant for workload generation.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                ((low as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + UpperInclusive> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.bump())
    }
}

/// Helper for inclusive upper bounds (`a..=b` → `a..b+1`).
pub trait UpperInclusive: Sized {
    /// `self + 1` (must not overflow at the call sites this crate serves).
    fn bump(self) -> Self;
}

macro_rules! impl_upper_inclusive {
    ($($t:ty),*) => {$(
        impl UpperInclusive for $t {
            fn bump(self) -> Self { self + 1 }
        }
    )*};
}

impl_upper_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Uniform sample over the type's standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Samples a value of `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let equal = (0..100).all(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000));
        assert!(!equal, "different seeds diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1i32..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
