#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full offline test suite.
# Run from anywhere; operates on the workspace that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (offline) =="
cargo test --workspace -q --offline

echo "== OK =="
