#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full offline test suite.
# Run from anywhere; operates on the workspace that contains this script.
# Each phase reports its wall-clock time; the summary repeats them all.
set -euo pipefail
cd "$(dirname "$0")/.."

PHASES=()
TIMES=()

run_phase() {
    local name="$1"
    shift
    echo "== $name =="
    local start end
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    PHASES+=("$name")
    TIMES+=("$((end - start))")
    echo "-- $name: $((end - start))s"
}

run_phase "cargo fmt --check" cargo fmt --all -- --check
run_phase "cargo clippy (warnings are errors)" \
    cargo clippy --workspace --all-targets --offline -- -D warnings
run_phase "cargo test (offline)" cargo test --workspace -q --offline

# Observability: the obs unit tests plus the cross-crate instrumentation
# test, then a smoke check that `txdb metrics --json` emits parseable JSON.
obs_tests() {
    cargo test -q --offline -p txdb-base obs::
    cargo test -q --offline -p temporal-xml --test observability
}
run_phase "observability tests" obs_tests

metrics_smoke() {
    local dir out
    dir=$(mktemp -d)
    echo '<g><r><n>Napoli</n><p>15</p></r></g>' > "$dir/v.xml"
    cargo run -q --offline -p txdb-cli -- \
        --db "$dir/db" put guide "$dir/v.xml" --at 01/01/2001 > /dev/null
    out="$dir/metrics.json"
    cargo run -q --offline -p txdb-cli -- --db "$dir/db" metrics --json > "$out"
    if command -v python3 > /dev/null 2>&1; then
        python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert 'counters' in d and 'histograms' in d, d.keys()" "$out"
    else
        grep -q '"counters"' "$out" && grep -q '"histograms"' "$out"
    fi
    rm -rf "$dir"
}
run_phase "txdb metrics --json smoke" metrics_smoke

# Crash robustness: the seeded checkpoint-interior sweep proves a crash at
# any file-system operation inside a checkpoint flush recovers the exact
# committed history, and a fault-injected open (torn WAL tail + unsealed
# journal residue) must expose the journal-replay counter in the metrics.
crash_sweep() {
    cargo test -q --offline --test crashpoints checkpoint_interior
    local dir out
    dir=$(mktemp -d)
    echo '<g><r><n>Napoli</n></r></g>' > "$dir/v.xml"
    cargo run -q --offline -p txdb-cli -- \
        --db "$dir/db" put guide "$dir/v.xml" --at 01/01/2001 > /dev/null
    printf 'torn-journal-residue' > "$dir/db/journal.db"
    printf '\xde\xad\xbe' >> "$dir/db/wal.log"
    out="$dir/metrics.json"
    cargo run -q --offline -p txdb-cli -- --db "$dir/db" metrics --json > "$out"
    if command -v python3 > /dev/null 2>&1; then
        python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert 'recovery.journal_replays' in d['counters'], sorted(d['counters'])" "$out"
    else
        grep -q '"recovery.journal_replays"' "$out"
    fi
    rm -rf "$dir"
}
run_phase "crash sweep + journal metrics" crash_sweep

# Streaming executor: the exec benchmark in quick mode drives the LIMIT
# early-exit path, the stream()/run() first-row agreement assertions and
# the exec.peak_rows_buffered gauge end to end, and must emit parseable
# JSON with the speedup and peak figures.
exec_bench_smoke() {
    local root dir out
    root=$(pwd)
    dir=$(mktemp -d)
    (cd "$dir" && EXEC_BENCH_QUICK=1 cargo run -q --offline \
        --manifest-path "$root/Cargo.toml" -p txdb-bench --bin exec_bench > /dev/null)
    out="$dir/BENCH_exec.json"
    if command -v python3 > /dev/null 2>&1; then
        python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['speedup'] > 1.0 and 'peak_rows_buffered' in d and \
d['limit1']['rows_scanned'] < d['full']['rows'], d" "$out"
    else
        grep -q '"speedup"' "$out" && grep -q '"peak_rows_buffered"' "$out"
    fi
    rm -rf "$dir"
}
run_phase "exec_bench smoke (streaming executor)" exec_bench_smoke

# Concurrency: the dedicated stress/differential suite (shared-handle
# readers vs serial replay, pinned snapshots fencing vacuum, racing
# writers + vacuum, durable group commit), then the concurrency
# benchmark in quick mode, whose JSON must carry a group-commit batch
# histogram accounting for every commit (sum == total puts at the
# 8-thread point) and per-thread-count throughput figures.
concurrency_stress() {
    cargo test -q --offline -p temporal-xml --test concurrency
}
run_phase "concurrency stress + differential" concurrency_stress

concurrency_bench_smoke() {
    local root dir out
    root=$(pwd)
    dir=$(mktemp -d)
    (cd "$dir" && CONCURRENCY_BENCH_QUICK=1 cargo run -q --offline \
        --manifest-path "$root/Cargo.toml" -p txdb-bench --bin concurrency_bench > /dev/null)
    out="$dir/BENCH_concurrency.json"
    if command -v python3 > /dev/null 2>&1; then
        python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
runs=d['commit']['runs']; \
assert all(r['batch_histogram']['sum'] == r['puts'] for r in runs), runs; \
assert runs[-1]['threads'] == 8 and runs[-1]['batch_histogram']['max'] >= 1, runs; \
assert all(r['queries_per_sec'] > 0 for r in d['readers']['runs']), d['readers']" "$out"
    else
        grep -q '"batch_histogram"' "$out" && grep -q '"queries_per_sec"' "$out"
    fi
    rm -rf "$dir"
}
run_phase "concurrency_bench smoke (group commit)" concurrency_bench_smoke

# Server: boot `txdb serve` on an ephemeral port with stdin held open
# (stdin EOF is the host-side drain trigger), drive one scripted wire
# session end to end — PUT, temporal QUERY, EXPLAIN ANALYZE, PIN/UNPIN,
# METRICS, an error probe, SHUTDOWN — then require a graceful drain and
# a clean fsck with no WAL tail left behind.
server_smoke() {
    if ! command -v python3 > /dev/null 2>&1; then
        echo "  (python3 not found; skipping the wire session)"
        return 0
    fi
    local dir log addr srv holder
    dir=$(mktemp -d)
    log="$dir/serve.log"
    mkfifo "$dir/stdin"
    # Keep the fifo's write end open so serve only drains on SHUTDOWN.
    sleep 600 > "$dir/stdin" &
    holder=$!
    cargo run -q --offline -p txdb-cli -- \
        serve "$dir/db" --addr 127.0.0.1:0 < "$dir/stdin" > "$log" &
    srv=$!
    for _ in $(seq 1 300); do
        grep -q 'listening on' "$log" 2> /dev/null && break
        sleep 0.1
    done
    addr=$(grep -o 'listening on [0-9.:]*' "$log" | awk '{print $3}')
    test -n "$addr"
    python3 - "$addr" <<'PYEOF'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=20)
f = s.makefile("rw", encoding="utf-8", newline="\n")

def send(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()

def recv():
    line = f.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)

send({"cmd": "PING"})
r = recv(); assert r["ok"] and r["pong"], r
send({"cmd": "PUT", "doc": "guide",
      "xml": "<g><r><n>Napoli</n><p>15</p></r></g>", "at": 1000000})
r = recv(); assert r["ok"] and r["changed"] and r["version"] == 0, r
send({"cmd": "PUT", "doc": "guide",
      "xml": "<g><r><n>Napoli</n><p>18</p></r></g>", "at": 2000000})
r = recv(); assert r["ok"] and r["version"] == 1, r
send({"cmd": "PIN", "at": 1000000})
r = recv(); assert r["ok"], r
pin = r["pin"]
send({"cmd": "QUERY",
      "q": 'SELECT TIME(R), R/p FROM doc("guide")[EVERY]//r R',
      "at": 2000000})
rows = []
while True:
    r = recv()
    if "ok" in r:
        break
    rows.append(r["row"])
assert r["ok"] and r["rows"] == 2 and len(rows) == 2, (r, rows)
assert "<p>15</p>" in "".join(rows[0]), rows
send({"cmd": "QUERY", "q": 'EXPLAIN ANALYZE SELECT R/p FROM doc("guide")//r R'})
saw_explain = False
while True:
    r = recv()
    saw_explain = saw_explain or "explain" in r
    if "ok" in r:
        break
assert r["ok"] and saw_explain, r
send({"cmd": "UNPIN", "pin": pin})
r = recv(); assert r["ok"] and r["released"], r
send({"cmd": "METRICS"})
r = recv()
assert r["ok"] and "server.requests" in r["metrics"]["counters"], \
    sorted(r["metrics"]["counters"])
send({"cmd": "nope"})
r = recv(); assert not r["ok"] and r["error"]["code"] == "bad_request", r
send({"cmd": "SHUTDOWN"})
r = recv(); assert r["ok"] and r["draining"], r
s.close()
PYEOF
    wait "$srv"
    kill "$holder" 2> /dev/null || true
    grep -q 'drained' "$log"
    cargo run -q --offline -p txdb-cli -- --db "$dir/db" fsck > "$dir/fsck.out"
    grep -q 'bad pages:        0' "$dir/fsck.out"
    grep -q 'wal records:      0' "$dir/fsck.out"
    rm -rf "$dir"
}
run_phase "server smoke (wire session + drain)" server_smoke

# Observability over the wire: serve with `--slow-ms 0` so every query
# crosses the slow threshold, issue a traced QUERY, and require (a) a
# span tree in the done frame rooted at the request span in which no
# child ever outlasts its parent, (b) the query in SLOWLOG with its
# EXPLAIN ANALYZE plan attached and the matching trace id, (c) the trace
# in TRACES, and (d) a METRICS delta window via the since-cursor; then a
# graceful drain and a clean fsck.
obs_trace_smoke() {
    if ! command -v python3 > /dev/null 2>&1; then
        echo "  (python3 not found; skipping the traced wire session)"
        return 0
    fi
    local dir log addr srv holder
    dir=$(mktemp -d)
    log="$dir/serve.log"
    mkfifo "$dir/stdin"
    sleep 600 > "$dir/stdin" &
    holder=$!
    cargo run -q --offline -p txdb-cli -- \
        serve "$dir/db" --addr 127.0.0.1:0 --slow-ms 0 < "$dir/stdin" > "$log" &
    srv=$!
    for _ in $(seq 1 300); do
        grep -q 'listening on' "$log" 2> /dev/null && break
        sleep 0.1
    done
    addr=$(grep -o 'listening on [0-9.:]*' "$log" | awk '{print $3}')
    test -n "$addr"
    python3 - "$addr" <<'PYEOF'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=20)
f = s.makefile("rw", encoding="utf-8", newline="\n")

def send(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()

def recv():
    line = f.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)

send({"cmd": "PUT", "doc": "guide",
      "xml": "<g><r><n>Napoli</n><p>15</p></r></g>", "at": 1000000})
r = recv(); assert r["ok"], r
send({"cmd": "QUERY", "q": 'SELECT R/p FROM doc("guide")[EVERY]//r R',
      "at": 2000000, "trace": True})
rows = []
while True:
    r = recv()
    if "ok" in r:
        break
    rows.append(r["row"])
assert r["ok"] and r["rows"] == 1, r
trace = r.get("trace")
assert trace and trace.get("spans"), r

def check(span, parent_us=None):
    us = span["us"]
    if parent_us is not None:
        assert us <= parent_us, (span["name"], us, parent_us)
    return 1 + sum(check(c, us) for c in span.get("children", []))

assert len(trace["spans"]) == 1, trace
root = trace["spans"][0]
assert root["name"] == "server.cmd.query_us", root
assert check(root) >= 3, trace
assert trace["fields"]["cmd"] == "query", trace

send({"cmd": "SLOWLOG"})
r = recv()
assert r["ok"] and r["slow_us"] == 0, r
entries = r["entries"]
assert entries and "SELECT" in entries[0]["q"], entries
assert "scan" in entries[0]["explain"], entries[0]
assert entries[0]["trace_id"] == trace["trace_id"], (entries[0], trace)

send({"cmd": "TRACES", "limit": 5})
r = recv()
assert r["ok"] and r["traces"], r
assert r["traces"][0]["trace"]["trace_id"] == trace["trace_id"], r

send({"cmd": "METRICS"})
r = recv(); assert r["ok"] and "cursor" in r and "delta" not in r, r
cur = r["cursor"]
send({"cmd": "METRICS", "since": cur})
r = recv()
assert r["ok"] and r["window_us"] > 0, r
assert r["delta"]["counters"].get("server.requests", 0) >= 1, r["delta"]
assert "server.cmd.metrics_us" in r["delta"]["histograms"], r["delta"]

send({"cmd": "SHUTDOWN"})
r = recv(); assert r["ok"] and r["draining"], r
s.close()
PYEOF
    wait "$srv"
    kill "$holder" 2> /dev/null || true
    grep -q 'drained' "$log"
    cargo run -q --offline -p txdb-cli -- --db "$dir/db" fsck > "$dir/fsck.out"
    grep -q 'bad pages:        0' "$dir/fsck.out"
    grep -q 'wal records:      0' "$dir/fsck.out"
    rm -rf "$dir"
}
run_phase "obs trace smoke (slow log + span tree)" obs_trace_smoke

# Over-the-wire benchmark in quick mode: durable PUTs and streamed
# QUERYs across 1/2/4/8 wire clients. The binary itself asserts the
# group-commit histogram accounts for every wire commit and that no
# pins leak past the drain; the JSON must carry per-client-count rates
# and the in-process baseline.
server_bench_smoke() {
    local root dir out
    root=$(pwd)
    dir=$(mktemp -d)
    (cd "$dir" && SERVER_BENCH_QUICK=1 cargo run -q --offline \
        --manifest-path "$root/Cargo.toml" -p txdb-bench --bin server_bench > /dev/null)
    out="$dir/BENCH_server.json"
    if command -v python3 > /dev/null 2>&1; then
        python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
runs=d['puts']['runs']; \
assert [r['clients'] for r in runs] == [1, 2, 4, 8], runs; \
assert all(r['puts_per_sec'] > 0 and 0 < r['fsyncs'] <= r['puts'] for r in runs), runs; \
assert d['queries']['inprocess_serial_qps'] > 0, d['queries']; \
assert all(r['queries_per_sec'] > 0 for r in d['queries']['runs']), d['queries']; \
assert d['latency']['query_us']['count'] > 0, d['latency']; \
assert all(r['latency_us']['p99'] >= r['latency_us']['p50'] for r in runs), runs; \
assert d['tracing']['traced_1c_qps'] > 0, d['tracing']" "$out"
    else
        grep -q '"puts_per_sec"' "$out" && grep -q '"inprocess_serial_qps"' "$out"
    fi
    rm -rf "$dir"
}
run_phase "server_bench smoke (over the wire)" server_bench_smoke

echo "== OK =="
for i in "${!PHASES[@]}"; do
    printf '  %-38s %ss\n' "${PHASES[$i]}" "${TIMES[$i]}"
done
