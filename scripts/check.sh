#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full offline test suite.
# Run from anywhere; operates on the workspace that contains this script.
# Each phase reports its wall-clock time; the summary repeats them all.
set -euo pipefail
cd "$(dirname "$0")/.."

PHASES=()
TIMES=()

run_phase() {
    local name="$1"
    shift
    echo "== $name =="
    local start end
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    PHASES+=("$name")
    TIMES+=("$((end - start))")
    echo "-- $name: $((end - start))s"
}

run_phase "cargo fmt --check" cargo fmt --all -- --check
run_phase "cargo clippy (warnings are errors)" \
    cargo clippy --workspace --all-targets --offline -- -D warnings
run_phase "cargo test (offline)" cargo test --workspace -q --offline

echo "== OK =="
for i in "${!PHASES[@]}"; do
    printf '  %-38s %ss\n' "${PHASES[$i]}" "${TIMES[$i]}"
done
