//! # temporal-xml — a temporal XML database
//!
//! A from-scratch Rust implementation of the system described in Kjetil
//! Nørvåg, *"Algorithms for Temporal Query Operators in XML Databases"*
//! (EDBT 2002 workshop): a transaction-time temporal XML database with
//! persistent element identity (XIDs/EIDs/TEIDs), completed-delta version
//! storage, a temporal full-text index, the full set of temporal query
//! operators (`TPatternScan`, `TPatternScanAll`, `DocHistory`,
//! `ElementHistory`, `CreTime`, `DelTime`, `PreviousTS`/`NextTS`/
//! `CurrentTS`, `Reconstruct`, `Diff`) and a concrete temporal query
//! language.
//!
//! This umbrella crate re-exports the workspace and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! ## Quick start
//!
//! ```
//! use temporal_xml::{Database, QueryExt, Timestamp};
//!
//! let db = Database::in_memory();
//! let jan = |d| Timestamp::from_date(2001, 1, d);
//! db.put("guide.com/restaurants",
//!        "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>",
//!        jan(1)).unwrap();
//! db.put("guide.com/restaurants",
//!        "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>",
//!        jan(31)).unwrap();
//!
//! // Q3-style price history:
//! let r = db.query(
//!     r#"SELECT TIME(R), R/price
//!        FROM doc("guide.com/restaurants")[EVERY]//restaurant R
//!        WHERE R/name = "Napoli""#)
//!     .at(jan(31))
//!     .run().unwrap();
//! assert_eq!(r.len(), 2);
//! ```
//!
//! On-disk databases open through the [`DbOptions`] builder:
//!
//! ```no_run
//! use temporal_xml::{Database, DbOptions};
//!
//! let db = DbOptions::at("/var/lib/txdb")
//!     .snapshot_every(16)
//!     .cache_bytes(32 << 20)
//!     .open()
//!     .unwrap();
//! println!("recovered: {:?}", db.recovery_report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use txdb_base::{
    self as base, DocId, Duration, Eid, Interval, Teid, Timestamp, VersionId, Xid,
};
pub use txdb_client::{self as client, Client};
pub use txdb_core::{self as core, Database, DbOptions};
pub use txdb_delta as delta;
pub use txdb_index as index;
pub use txdb_query::{
    self as query, parse_query, ExecStats, ExplainNode, QueryExt, QueryRequest, QueryResult,
    RowStream,
};
pub use txdb_server::{self as server, Server, ServerConfig};
pub use txdb_storage::{self as storage, StoreOptions};
pub use txdb_stratum as stratum;
pub use txdb_wgen as wgen;
pub use txdb_xml as xml;
