//! # txdb-stratum — the stratum baseline the paper argues against
//!
//! §1: "The easiest way to realize this is to store all versions of all
//! documents in the database, and use a middleware layer to convert
//! temporal query language statements into conventional statements,
//! executed by an underlying database system (also called a *stratum*
//! approach). Although this approach makes the introduction of temporal
//! support easier, it can be difficult to achieve good performance:
//! temporal query processing is in general costly, and the cost of storing
//! the complete document versions can be too high."
//!
//! This crate is that system, kept deliberately honest:
//!
//! * every version of every document is stored **complete** (the space
//!   cost E8 measures against the delta chain);
//! * there are **no persistent element ids** — elements have no identity
//!   across versions (§3.2's observation), so `CreTime`, `DelTime`,
//!   `ElementHistory`, `PREVIOUS(R)` and identity joins are simply not
//!   expressible; the middleware offers only what a conventional engine
//!   can: version scans, snapshot selection and in-memory tree matching;
//! * queries translate to scans: a snapshot query picks the version valid
//!   at *t* per document and pattern-matches its tree; an all-versions
//!   query scans everything (the costs E2/E3/E6 measure against the
//!   temporal FTI).
//!
//! To keep the comparison conservative (i.e. biased *in favour* of the
//! stratum), stored versions keep their parsed trees in memory — the
//! baseline never pays parsing during queries, only scanning and matching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use txdb_base::{Error, Interval, Result, Timestamp};
use txdb_xml::pattern::{match_tree, PatternTree};
use txdb_xml::tree::Tree;

/// One stored (complete) version.
#[derive(Debug)]
pub struct StoredVersion {
    /// Transaction time the version was stored.
    pub ts: Timestamp,
    /// The complete version (parsed once at store time).
    pub tree: Tree,
    /// Serialized size in bytes (space accounting).
    pub bytes: usize,
}

#[derive(Debug, Default)]
struct DocRow {
    versions: Vec<StoredVersion>,
    deleted_at: Vec<Timestamp>,
}

impl DocRow {
    /// The version valid at `t`, if any.
    fn valid_at(&self, t: Timestamp) -> Option<&StoredVersion> {
        let v = self.versions.iter().rev().find(|v| v.ts <= t)?;
        // Deleted between that version and t?
        let deleted = self.deleted_at.iter().any(|&d| v.ts < d && d <= t);
        if deleted {
            None
        } else {
            Some(v)
        }
    }

    fn is_deleted(&self) -> bool {
        match (self.versions.last(), self.deleted_at.last()) {
            (Some(v), Some(&d)) => d > v.ts,
            (None, _) => true,
            _ => false,
        }
    }
}

/// A match from the stratum: the document, version timestamp and the
/// matched element count (no identity — elements cannot be referenced
/// across versions, so the middleware returns materialised subtrees).
#[derive(Debug)]
pub struct StratumMatch {
    /// Document name.
    pub url: String,
    /// Timestamp of the version the match comes from.
    pub ts: Timestamp,
    /// The matched (projected) subtrees, serialized on demand by the
    /// caller; kept as extracted trees.
    pub subtrees: Vec<Tree>,
}

/// Statistics of one stratum query (the baseline's cost metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct StratumStats {
    /// Versions inspected.
    pub versions_scanned: usize,
    /// Tree nodes visited by the pattern matcher.
    pub nodes_visited: usize,
}

/// The stratum database: a conventional (name, version) → document store
/// plus middleware.
#[derive(Default)]
pub struct StratumDb {
    docs: BTreeMap<String, DocRow>,
}

impl StratumDb {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a new complete version of `name`.
    pub fn put(&mut self, name: &str, xml: &str, ts: Timestamp) -> Result<()> {
        let tree = txdb_xml::parse::parse_document(xml)?;
        self.put_tree(name, tree, xml.len(), ts)
    }

    /// Stores a new complete version from a parsed tree. A version
    /// identical to the current one is skipped (a re-crawl of an unchanged
    /// page stores nothing, mirroring the temporal engine's empty-delta
    /// rule).
    pub fn put_tree(&mut self, name: &str, tree: Tree, bytes: usize, ts: Timestamp) -> Result<()> {
        let row = self.docs.entry(name.to_string()).or_default();
        if let Some(last) = row.versions.last() {
            if ts <= last.ts {
                return Err(Error::QueryInvalid(format!("non-monotonic put at {ts}")));
            }
            let unchanged = !row.is_deleted()
                && txdb_xml::serialize::to_string(&last.tree)
                    == txdb_xml::serialize::to_string(&tree);
            if unchanged {
                return Ok(());
            }
        }
        row.versions.push(StoredVersion { ts, tree, bytes });
        Ok(())
    }

    /// Marks `name` deleted at `ts`.
    pub fn delete(&mut self, name: &str, ts: Timestamp) -> Result<()> {
        let row = self.docs.get_mut(name).ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
        row.deleted_at.push(ts);
        Ok(())
    }

    /// Snapshot pattern query: matches in the version of each document
    /// valid at `t` (the middleware translation of `TPatternScan`).
    pub fn pattern_at(
        &self,
        pattern: &PatternTree,
        t: Timestamp,
    ) -> (Vec<StratumMatch>, StratumStats) {
        let mut out = Vec::new();
        let mut stats = StratumStats::default();
        for (url, row) in &self.docs {
            let Some(v) = row.valid_at(t) else { continue };
            stats.versions_scanned += 1;
            stats.nodes_visited += v.tree.len();
            let matches = match_tree(&v.tree, pattern);
            if matches.is_empty() {
                continue;
            }
            let proj = pattern.projected();
            let mut subtrees = Vec::new();
            for m in &matches {
                for &i in &proj {
                    subtrees.push(v.tree.extract_subtree(m[i]));
                }
            }
            out.push(StratumMatch { url: url.clone(), ts: v.ts, subtrees });
        }
        (out, stats)
    }

    /// Current-version pattern query.
    pub fn pattern_current(&self, pattern: &PatternTree) -> (Vec<StratumMatch>, StratumStats) {
        let mut out = Vec::new();
        let mut stats = StratumStats::default();
        for (url, row) in &self.docs {
            if row.is_deleted() {
                continue;
            }
            let Some(v) = row.versions.last() else { continue };
            stats.versions_scanned += 1;
            stats.nodes_visited += v.tree.len();
            let matches = match_tree(&v.tree, pattern);
            if matches.is_empty() {
                continue;
            }
            let proj = pattern.projected();
            let mut subtrees = Vec::new();
            for m in &matches {
                for &i in &proj {
                    subtrees.push(v.tree.extract_subtree(m[i]));
                }
            }
            out.push(StratumMatch { url: url.clone(), ts: v.ts, subtrees });
        }
        (out, stats)
    }

    /// All-versions pattern query (the middleware translation of
    /// `TPatternScanAll`): a full scan of every stored version.
    pub fn pattern_all(&self, pattern: &PatternTree) -> (Vec<StratumMatch>, StratumStats) {
        let mut out = Vec::new();
        let mut stats = StratumStats::default();
        for (url, row) in &self.docs {
            for v in &row.versions {
                stats.versions_scanned += 1;
                stats.nodes_visited += v.tree.len();
                let matches = match_tree(&v.tree, pattern);
                if matches.is_empty() {
                    continue;
                }
                let proj = pattern.projected();
                let mut subtrees = Vec::new();
                for m in &matches {
                    for &i in &proj {
                        subtrees.push(v.tree.extract_subtree(m[i]));
                    }
                }
                out.push(StratumMatch { url: url.clone(), ts: v.ts, subtrees });
            }
        }
        (out, stats)
    }

    /// Counts matches at `t` without materialising subtrees (the fairest
    /// possible stratum answer to the paper's Q2).
    pub fn count_at(&self, pattern: &PatternTree, t: Timestamp) -> (usize, StratumStats) {
        let mut n = 0;
        let mut stats = StratumStats::default();
        for row in self.docs.values() {
            let Some(v) = row.valid_at(t) else { continue };
            stats.versions_scanned += 1;
            stats.nodes_visited += v.tree.len();
            n += match_tree(&v.tree, pattern).len();
        }
        (n, stats)
    }

    /// All versions of one document valid in `[t1, t2)` — the stratum's
    /// `DocHistory` is a simple selection (no reconstruction; versions are
    /// complete). Most recent first, mirroring the temporal engine.
    pub fn doc_history(&self, name: &str, interval: Interval) -> Vec<&StoredVersion> {
        let Some(row) = self.docs.get(name) else { return Vec::new() };
        let mut out: Vec<&StoredVersion> = Vec::new();
        for (i, v) in row.versions.iter().enumerate() {
            let end = row
                .versions
                .get(i + 1)
                .map(|n| n.ts)
                .or_else(|| row.deleted_at.iter().find(|&&d| d > v.ts).copied())
                .unwrap_or(Timestamp::FOREVER);
            if Interval::new(v.ts, end).overlaps(interval) {
                out.push(v);
            }
        }
        out.reverse();
        out
    }

    /// Total bytes of stored complete versions (the E8 space metric).
    pub fn space_bytes(&self) -> usize {
        self.docs.values().flat_map(|r| r.versions.iter()).map(|v| v.bytes).sum()
    }

    /// Number of stored versions.
    pub fn version_count(&self) -> usize {
        self.docs.values().map(|r| r.versions.len()).sum()
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::pattern::PatternNode;
    use txdb_xml::serialize::to_string;

    fn jan(d: u32) -> Timestamp {
        Timestamp::from_date(2001, 1, d)
    }

    fn figure1() -> StratumDb {
        let mut db = StratumDb::new();
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>",
            jan(1),
        )
        .unwrap();
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
             <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>",
            jan(15),
        )
        .unwrap();
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>",
            jan(31),
        )
        .unwrap();
        db
    }

    fn restaurants() -> PatternTree {
        PatternTree::new(PatternNode::tag("restaurant").project())
    }

    #[test]
    fn q1_snapshot() {
        let db = figure1();
        let (m, stats) = db.pattern_at(&restaurants(), jan(26));
        assert_eq!(m.len(), 1, "one document matched");
        assert_eq!(m[0].subtrees.len(), 2, "two restaurants at 26/01");
        assert_eq!(stats.versions_scanned, 1);
    }

    #[test]
    fn q2_count() {
        let db = figure1();
        assert_eq!(db.count_at(&restaurants(), jan(26)).0, 2);
        assert_eq!(db.count_at(&restaurants(), jan(2)).0, 1);
        assert_eq!(db.count_at(&restaurants(), Timestamp::from_date(2000, 1, 1)).0, 0);
    }

    #[test]
    fn q3_all_versions() {
        let db = figure1();
        let napoli = PatternTree::new(
            PatternNode::tag("restaurant").project().child(PatternNode::tag("name").word("napoli")),
        );
        let (m, stats) = db.pattern_all(&napoli);
        assert_eq!(m.len(), 3, "Napoli in all three versions");
        assert_eq!(stats.versions_scanned, 3, "full scan");
    }

    #[test]
    fn current_skips_deleted() {
        let mut db = figure1();
        assert_eq!(db.pattern_current(&restaurants()).0.len(), 1);
        db.delete("guide.com/restaurants", Timestamp::from_date(2001, 2, 9)).unwrap();
        assert!(db.pattern_current(&restaurants()).0.is_empty());
        // Snapshot before deletion still works.
        assert_eq!(db.pattern_at(&restaurants(), jan(26)).0.len(), 1);
        // After deletion: nothing.
        assert!(db.pattern_at(&restaurants(), Timestamp::from_date(2001, 2, 10)).0.is_empty());
    }

    #[test]
    fn history_selection() {
        let db = figure1();
        let h = db.doc_history("guide.com/restaurants", Interval::new(jan(10), jan(20)));
        assert_eq!(h.len(), 2, "v0 (valid into the interval) and v1");
        assert!(h[0].ts > h[1].ts, "most recent first");
        assert!(to_string(&h[0].tree).contains("Akropolis"));
    }

    #[test]
    fn space_grows_with_complete_versions() {
        let db = figure1();
        assert_eq!(db.version_count(), 3);
        assert_eq!(db.doc_count(), 1);
        // Complete copies: space ≥ 3 × the smallest version.
        assert!(db.space_bytes() > 3 * 70);
    }

    #[test]
    fn monotonicity_enforced() {
        let mut db = figure1();
        assert!(db.put("guide.com/restaurants", "<g/>", jan(5)).is_err());
        assert!(db.delete("never-stored", jan(5)).is_err());
    }
}
