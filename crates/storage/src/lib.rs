//! # txdb-storage — page-based storage engine and versioned document store
//!
//! The paper assumes a database system underneath its operators: documents
//! live in a repository, previous versions are chains of completed deltas,
//! "the delta documents are indexed in a delta index", versions are
//! numbered, and reads of unclustered deltas cost disk seeks (§7.1–7.2).
//! This crate is that database system, built from scratch:
//!
//! * [`pager`] — 8 KiB pages over a file or an in-memory vector, with a
//!   persistent free list and a header page holding component roots;
//! * [`buffer`] — an LRU buffer pool with shared `Arc` frames and
//!   read/write statistics (the experiments report "delta reads" through
//!   these counters, standing in for the paper's disk-seek accounting);
//! * [`heap`] — a slotted-page record heap with overflow chains for records
//!   larger than a page (complete document versions);
//! * [`btree`] — a B+-tree with byte-string keys, used for the document
//!   catalog and by `txdb-index` for the persistent EID-time index;
//! * [`vfs`] — the virtual file system every byte of file I/O goes
//!   through: a real-disk implementation and a deterministic
//!   fault-injecting one (torn writes, fsync-gate, transient EIO,
//!   disk-full) for the crash-point recovery harness;
//! * [`wal`] — a logical write-ahead log with CRC-protected records,
//!   checkpointing and torn-tail-tolerant recovery;
//! * [`journal`] — the double-write checkpoint journal: page flushes are
//!   staged in a sealed, CRC-guarded batch before any home location is
//!   overwritten, so a torn page at a checkpoint crash point is always
//!   recoverable (old image or journaled new image);
//! * [`snapshot`] — refcounted snapshot pins: readers pin a commit
//!   timestamp and vacuum's purge horizon is clamped below the oldest
//!   live pin, so a pinned snapshot can never lose versions under a
//!   concurrent reader;
//! * [`ckpt`] — durable storage for serialized index checkpoints (a
//!   CRC-guarded page chain), which turns index rebuild at open from
//!   O(history) into O(index) + a tail replay;
//! * [`repo`] — the §7.1 document organisation: one complete current
//!   version per document, previous versions as backward completed deltas
//!   stored as XML documents, a per-document delta index mapping version
//!   numbers to timestamps and record locations, and an optional
//!   every-*k*-versions snapshot policy that bounds reconstruction cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The storage engine must surface every failure as a structured error —
// an `unwrap` here turns a detectable fault into a panic. Tests may still
// unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod btree;
pub mod buffer;
pub mod ckpt;
pub mod heap;
pub mod journal;
pub mod pager;
pub mod repo;
pub mod snapshot;
pub mod vcache;
pub mod vfs;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use ckpt::{CheckpointInfo, CheckpointStore};
pub use journal::JournalState;
pub use pager::{PageId, Pager, PAGE_SIZE, PHYS_PAGE_SIZE};
pub use repo::{
    DocumentStore, FsckReport, IndexCheckpointReport, IndexCheckpointState, StoreOptions,
    VersionEntry, VersionKind,
};
pub use snapshot::{SnapshotPin, SnapshotRegistry};
pub use vcache::{VersionCache, VersionCacheStats};
pub use vfs::{FaultyVfs, RealVfs, Vfs, VfsFile};
pub use wal::{Wal, WalMetrics};
