//! Page allocation and raw page I/O.
//!
//! The pager owns a linear array of pages backed either by a file (via a
//! [`Vfs`]) or by memory (tests and benchmarks use the memory backend;
//! the durability tests use files — real or fault-injecting). Every
//! on-disk page is a [`PHYS_PAGE_SIZE`] (8 KiB) unit whose last
//! [`PAGE_TRAILER`] bytes hold a CRC32 of the logical payload:
//!
//! ```text
//! [payload: PAGE_SIZE bytes][crc32 u32][reserved u32]
//! ```
//!
//! The checksum is written on every physical write and verified on every
//! physical read; a mismatch surfaces as [`Error::Corruption`] with the
//! page number and both CRC values. The memory backend stores logical
//! pages directly (no I/O boundary to protect).
//!
//! Page 0 is the **header page**:
//!
//! ```text
//! [magic u32][format u32][free_head u64][page_count u64][roots u64 × 16]
//! ```
//!
//! * `free_head` — head of the free-page list; each free page stores the
//!   next free page id in its first 8 bytes, so the list survives reopen.
//! * `roots` — sixteen named slots in which components (catalog B+-tree,
//!   record heap, indexes, repo metadata) persist their root page ids.
//!
//! All I/O goes through [`Pager::read_page`] / [`Pager::write_page`]; the
//! buffer pool layers caching and statistics on top. File reads and
//! writes are wrapped in [`with_retry`], so a transient EIO from the
//! device is absorbed by a bounded retry; fsync failures are **not**
//! retried (a failed fsync means the data may not be durable, and the
//! caller must see that).

use std::path::Path;

use parking_lot::Mutex;
use txdb_base::{Error, Result};

use crate::vfs::{with_retry, RealVfs, Vfs, VfsFile};
use crate::wal::crc32;

/// Logical size of every page in bytes (the payload available to the
/// heap, B+-tree and header layers).
pub const PAGE_SIZE: usize = PHYS_PAGE_SIZE - PAGE_TRAILER;

/// Physical (on-disk) size of every page in bytes.
pub const PHYS_PAGE_SIZE: usize = 8192;

/// Bytes of per-page trailer: `[crc32 u32][reserved u32]`.
pub const PAGE_TRAILER: usize = 8;

/// Number of named root slots in the header.
pub const NUM_ROOTS: usize = 16;

const MAGIC: u32 = 0x7478_4442; // "txDB"
const FORMAT: u32 = 2; // 1 = no page checksums, 2 = CRC32 page trailer

/// Identifier of a page. Page 0 is the header; [`PageId::NULL`] (= 0) is
/// used as "no page" in on-disk pointers, which is unambiguous because the
/// header is never pointed at.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// The "no page" sentinel (the header page can never be a target).
    pub const NULL: PageId = PageId(0);

    /// True for the sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A (logical) page-sized byte buffer.
pub type PageBuf = Box<[u8]>;

/// Allocates a zeroed logical page buffer.
pub fn new_page() -> PageBuf {
    vec![0u8; PAGE_SIZE].into_boxed_slice()
}

/// Reads one physical page from `file`, verifies the CRC trailer, and
/// returns the logical payload.
fn read_phys(file: &mut dyn VfsFile, id: PageId) -> Result<PageBuf> {
    let mut phys = [0u8; PHYS_PAGE_SIZE];
    with_retry(|| file.read_at(id.0 * PHYS_PAGE_SIZE as u64, &mut phys))?;
    let expected =
        u32::from_le_bytes(phys[PAGE_SIZE..PAGE_SIZE + 4].try_into().expect("fixed-width slice"));
    let actual = crc32(&phys[..PAGE_SIZE]);
    if expected != actual {
        return Err(Error::Corruption { page: id.0, expected, actual });
    }
    Ok(phys[..PAGE_SIZE].to_vec().into_boxed_slice())
}

/// Writes one logical page to `file` with a freshly computed CRC trailer.
fn write_phys(file: &mut dyn VfsFile, id: PageId, data: &[u8]) -> Result<()> {
    debug_assert_eq!(data.len(), PAGE_SIZE);
    let mut phys = [0u8; PHYS_PAGE_SIZE];
    phys[..PAGE_SIZE].copy_from_slice(data);
    phys[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc32(data).to_le_bytes());
    with_retry(|| file.write_at(id.0 * PHYS_PAGE_SIZE as u64, &phys))?;
    Ok(())
}

enum Backend {
    Memory(Vec<PageBuf>),
    File { file: Box<dyn VfsFile>, page_count: u64 },
}

struct Header {
    free_head: u64,
    page_count: u64,
    roots: [u64; NUM_ROOTS],
}

/// The pager: raw page allocation, reads and writes.
pub struct Pager {
    inner: Mutex<Inner>,
}

struct Inner {
    backend: Backend,
    header: Header,
    header_dirty: bool,
}

impl Pager {
    /// Creates a fresh in-memory pager.
    pub fn memory() -> Pager {
        let header = Header { free_head: 0, page_count: 1, roots: [0; NUM_ROOTS] };
        Pager {
            inner: Mutex::new(Inner {
                backend: Backend::Memory(vec![new_page()]),
                header,
                header_dirty: true,
            }),
        }
    }

    /// Opens (or creates) a file-backed pager on the real file system.
    pub fn open(path: &Path) -> Result<Pager> {
        Pager::open_with(&RealVfs, path)
    }

    /// Opens (or creates) a file-backed pager through the given [`Vfs`].
    pub fn open_with(vfs: &dyn Vfs, path: &Path) -> Result<Pager> {
        let mut file = vfs.open(path)?;
        let mut len = file.len()?;
        if len % PHYS_PAGE_SIZE as u64 != 0 {
            // A torn tail-extend write — an allocation that never reached
            // a checkpoint — leaves a partial trailing page. Nothing in it
            // is committed (committed pages are covered by the durable
            // header's page_count, flushed under journal protection), so
            // trim it rather than refuse to open.
            len -= len % PHYS_PAGE_SIZE as u64;
            with_retry(|| file.set_len(len))?;
        }
        if len == 0 {
            // Fresh database file.
            let header = Header { free_head: 0, page_count: 1, roots: [0; NUM_ROOTS] };
            let mut pager = Inner {
                backend: Backend::File { file, page_count: 1 },
                header,
                header_dirty: true,
            };
            pager.flush_header()?;
            return Ok(Pager { inner: Mutex::new(pager) });
        }
        let buf = read_phys(file.as_mut(), PageId(0))?;
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("fixed-width slice"));
        let format = u32::from_le_bytes(buf[4..8].try_into().expect("fixed-width slice"));
        if magic != MAGIC {
            return Err(Error::Corrupt("bad database magic".into()));
        }
        if format != FORMAT {
            return Err(Error::Corrupt(format!("unsupported format version {format}")));
        }
        let free_head = u64::from_le_bytes(buf[8..16].try_into().expect("fixed-width slice"));
        let page_count = u64::from_le_bytes(buf[16..24].try_into().expect("fixed-width slice"));
        if page_count > len / PHYS_PAGE_SIZE as u64 {
            return Err(Error::Corrupt("header page_count exceeds file length".into()));
        }
        let mut roots = [0u64; NUM_ROOTS];
        for (i, r) in roots.iter_mut().enumerate() {
            let off = 24 + i * 8;
            *r = u64::from_le_bytes(buf[off..off + 8].try_into().expect("fixed-width slice"));
        }
        Ok(Pager {
            inner: Mutex::new(Inner {
                backend: Backend::File { file, page_count },
                header: Header { free_head, page_count, roots },
                header_dirty: false,
            }),
        })
    }

    /// Reads a page into a fresh buffer, verifying its checksum on the
    /// file backend.
    pub fn read_page(&self, id: PageId) -> Result<PageBuf> {
        let mut inner = self.inner.lock();
        if id.0 >= inner.header.page_count {
            return Err(Error::InvalidRef(format!("read of unallocated page {id}")));
        }
        match &mut inner.backend {
            Backend::Memory(pages) => Ok(pages[id.0 as usize].clone()),
            Backend::File { file, .. } => read_phys(file.as_mut(), id),
        }
    }

    /// Writes a page (checksummed on the file backend).
    pub fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let mut inner = self.inner.lock();
        if id.0 >= inner.header.page_count {
            return Err(Error::InvalidRef(format!("write of unallocated page {id}")));
        }
        if id.is_null() {
            return Err(Error::InvalidRef("direct write to header page".into()));
        }
        match &mut inner.backend {
            Backend::Memory(pages) => {
                pages[id.0 as usize].copy_from_slice(data);
                Ok(())
            }
            Backend::File { file, .. } => write_phys(file.as_mut(), id, data),
        }
    }

    /// Allocates a page (reusing the free list when possible). The returned
    /// page's previous contents are unspecified; callers must fully
    /// initialize it.
    pub fn allocate(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        if inner.header.free_head != 0 {
            let id = PageId(inner.header.free_head);
            // The free page stores the next free head in its first 8 bytes.
            let next = match &mut inner.backend {
                Backend::Memory(pages) => u64::from_le_bytes(
                    pages[id.0 as usize][0..8].try_into().expect("fixed-width slice"),
                ),
                Backend::File { file, .. } => {
                    let buf = read_phys(file.as_mut(), id)?;
                    u64::from_le_bytes(buf[0..8].try_into().expect("fixed-width slice"))
                }
            };
            inner.header.free_head = next;
            inner.header_dirty = true;
            return Ok(id);
        }
        let id = PageId(inner.header.page_count);
        inner.header.page_count += 1;
        inner.header_dirty = true;
        match &mut inner.backend {
            Backend::Memory(pages) => pages.push(new_page()),
            Backend::File { file, page_count } => {
                *page_count += 1;
                write_phys(file.as_mut(), id, &new_page())?;
            }
        }
        Ok(id)
    }

    /// Returns a page to the free list. The page is rewritten in full
    /// (zeroed, with the next-free pointer in its first 8 bytes), which
    /// both keeps its checksum valid and scrubs the freed contents.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if id.is_null() || id.0 >= inner.header.page_count {
            return Err(Error::InvalidRef(format!("free of invalid page {id}")));
        }
        let mut page = new_page();
        page[0..8].copy_from_slice(&inner.header.free_head.to_le_bytes());
        match &mut inner.backend {
            Backend::Memory(pages) => pages[id.0 as usize].copy_from_slice(&page),
            Backend::File { file, .. } => write_phys(file.as_mut(), id, &page)?,
        }
        inner.header.free_head = id.0;
        inner.header_dirty = true;
        Ok(())
    }

    /// Head of the free-page list (`0` when empty). The buffer pool uses
    /// this with [`Pager::pop_free`] so the next-free pointer is read
    /// *through the pool* — where an unflushed free image may still live.
    pub(crate) fn free_head(&self) -> u64 {
        self.inner.lock().header.free_head
    }

    /// Pops the current free-list head, advancing the head to `next`
    /// (which the caller read from the page through the buffer pool).
    pub(crate) fn pop_free(&self, next: u64) -> PageId {
        let mut inner = self.inner.lock();
        let id = PageId(inner.header.free_head);
        inner.header.free_head = next;
        inner.header_dirty = true;
        id
    }

    /// Pushes `id` onto the free list and returns the free-page image
    /// (zeroed, next-free pointer in the first 8 bytes) that the caller
    /// must write back through the buffer pool. Unlike [`Pager::free`],
    /// nothing touches the file here: the image reaches disk with the
    /// next checkpoint flush, under journal protection.
    pub(crate) fn free_deferred(&self, id: PageId) -> Result<PageBuf> {
        let mut inner = self.inner.lock();
        if id.is_null() || id.0 >= inner.header.page_count {
            return Err(Error::InvalidRef(format!("free of invalid page {id}")));
        }
        let mut page = new_page();
        page[0..8].copy_from_slice(&inner.header.free_head.to_le_bytes());
        inner.header.free_head = id.0;
        inner.header_dirty = true;
        Ok(page)
    }

    /// Gets a named root slot.
    pub fn root(&self, slot: usize) -> PageId {
        PageId(self.inner.lock().header.roots[slot])
    }

    /// Sets a named root slot (persisted at the next [`Pager::sync`]).
    pub fn set_root(&self, slot: usize, id: PageId) {
        let mut inner = self.inner.lock();
        inner.header.roots[slot] = id.0;
        inner.header_dirty = true;
    }

    /// Total pages (including header and free pages) — the file size metric
    /// for the space experiments.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().header.page_count
    }

    /// True when header state (free list, page count, roots) has changed
    /// since the last flush — i.e. the next [`Pager::sync`] will rewrite
    /// page 0. The checkpoint path uses this to decide whether a journal
    /// batch is needed at all.
    pub fn header_dirty(&self) -> bool {
        self.inner.lock().header_dirty
    }

    /// The header page (page 0) as it would be written right now —
    /// encoded from the in-memory header, without touching the backend.
    /// The checkpoint path journals this image before [`Pager::sync`]
    /// overwrites the live header.
    pub fn header_image(&self) -> PageBuf {
        self.inner.lock().header_image()
    }

    /// Flushes the header and fsyncs the file backend. An fsync failure is
    /// not retried: the data may not be durable and callers must see it.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.header_dirty {
            inner.flush_header()?;
        }
        if let Backend::File { file, .. } = &mut inner.backend {
            file.sync()?;
        }
        Ok(())
    }

    /// Verifies the checksum of every allocated page (file backend);
    /// returns the page ids that failed. The memory backend trivially
    /// passes. Used by `fsck`.
    pub fn verify_checksums(&self) -> Result<Vec<u64>> {
        let mut inner = self.inner.lock();
        let count = inner.header.page_count;
        let mut bad = Vec::new();
        if let Backend::File { file, .. } = &mut inner.backend {
            for p in 0..count {
                match read_phys(file.as_mut(), PageId(p)) {
                    Ok(_) => {}
                    Err(Error::Corruption { page, .. }) => bad.push(page),
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(bad)
    }
}

impl Inner {
    fn header_image(&self) -> PageBuf {
        let mut buf = new_page();
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&FORMAT.to_le_bytes());
        buf[8..16].copy_from_slice(&self.header.free_head.to_le_bytes());
        buf[16..24].copy_from_slice(&self.header.page_count.to_le_bytes());
        for (i, r) in self.header.roots.iter().enumerate() {
            let off = 24 + i * 8;
            buf[off..off + 8].copy_from_slice(&r.to_le_bytes());
        }
        buf
    }

    fn flush_header(&mut self) -> Result<()> {
        let buf = self.header_image();
        match &mut self.backend {
            Backend::Memory(pages) => pages[0].copy_from_slice(&buf),
            Backend::File { file, .. } => write_phys(file.as_mut(), PageId(0), &buf)?,
        }
        self.header_dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "txdb-pager-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.db")
    }

    #[test]
    fn memory_allocate_write_read() {
        let p = Pager::memory();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
        assert!(!a.is_null());
        let mut buf = new_page();
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        p.write_page(a, &buf).unwrap();
        let back = p.read_page(a).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);
        // b untouched.
        assert_eq!(p.read_page(b).unwrap()[0], 0);
    }

    #[test]
    fn free_list_reuses_pages() {
        let p = Pager::memory();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let count = p.page_count();
        p.free(a).unwrap();
        p.free(b).unwrap();
        let c = p.allocate().unwrap();
        let d = p.allocate().unwrap();
        assert_eq!(p.page_count(), count, "no growth after reuse");
        let mut got = [c, d];
        got.sort();
        let mut want = [a, b];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn invalid_refs_rejected() {
        let p = Pager::memory();
        assert!(p.read_page(PageId(99)).is_err());
        assert!(p.write_page(PageId(99), &new_page()).is_err());
        assert!(p.write_page(PageId::NULL, &new_page()).is_err());
        assert!(p.free(PageId::NULL).is_err());
    }

    #[test]
    fn roots_stored() {
        let p = Pager::memory();
        assert!(p.root(3).is_null());
        p.set_root(3, PageId(7));
        assert_eq!(p.root(3), PageId(7));
    }

    #[test]
    fn file_backend_persists() {
        let path = tmpfile("persist");
        let (a, b);
        {
            let p = Pager::open(&path).unwrap();
            a = p.allocate().unwrap();
            b = p.allocate().unwrap();
            let mut buf = new_page();
            buf[100] = 42;
            p.write_page(a, &buf).unwrap();
            p.set_root(0, a);
            p.free(b).unwrap();
            p.sync().unwrap();
        }
        {
            let p = Pager::open(&path).unwrap();
            assert_eq!(p.root(0), a);
            assert_eq!(p.read_page(a).unwrap()[100], 42);
            // Free list survived: allocation reuses b.
            assert_eq!(p.allocate().unwrap(), b);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage_file() {
        let path = tmpfile("bad");
        std::fs::write(&path, vec![0xFFu8; PHYS_PAGE_SIZE]).unwrap();
        assert!(Pager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_trims_partial_trailing_page() {
        let path = tmpfile("partial");
        {
            let p = Pager::open(&path).unwrap();
            let a = p.allocate().unwrap();
            let mut buf = new_page();
            buf[7] = 0x77;
            p.write_page(a, &buf).unwrap();
            p.sync().unwrap();
        }
        // A torn tail-extend write: append a partial page of garbage.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&vec![0xEEu8; 3000]).unwrap();
        }
        let p = Pager::open(&path).unwrap();
        assert_eq!(p.read_page(PageId(1)).unwrap()[7], 0x77);
        assert_eq!(std::fs::metadata(&path).unwrap().len() % PHYS_PAGE_SIZE as u64, 0);
        // A file shorter than one page (torn fresh-header write) holds
        // nothing committed: re-initialized, not rejected.
        std::fs::write(&path, b"short").unwrap();
        let p = Pager::open(&path).unwrap();
        assert_eq!(p.page_count(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_detected_as_corruption() {
        let path = tmpfile("flip");
        let a;
        {
            let p = Pager::open(&path).unwrap();
            a = p.allocate().unwrap();
            let mut buf = new_page();
            buf[17] = 0x5A;
            p.write_page(a, &buf).unwrap();
            p.sync().unwrap();
        }
        // Flip one payload byte of page `a` on disk.
        {
            let mut data = std::fs::read(&path).unwrap();
            let off = a.0 as usize * PHYS_PAGE_SIZE + 1234;
            data[off] ^= 0x01;
            std::fs::write(&path, data).unwrap();
        }
        let p = Pager::open(&path).unwrap();
        match p.read_page(a) {
            Err(Error::Corruption { page, expected, actual }) => {
                assert_eq!(page, a.0);
                assert_ne!(expected, actual);
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
        assert_eq!(p.verify_checksums().unwrap(), vec![a.0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_checksums_clean_on_fresh_store() {
        let path = tmpfile("verify");
        let p = Pager::open(&path).unwrap();
        for _ in 0..5 {
            let id = p.allocate().unwrap();
            p.write_page(id, &new_page()).unwrap();
        }
        p.sync().unwrap();
        assert!(p.verify_checksums().unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn faulty_vfs_transient_eio_absorbed() {
        let vfs = crate::vfs::FaultyVfs::new(42);
        vfs.fail_io_every(5);
        let path = std::path::PathBuf::from("/db/data.db");
        let p = Pager::open_with(&vfs, &path).unwrap();
        for i in 0..20u8 {
            let id = p.allocate().unwrap();
            let mut buf = new_page();
            buf[0] = i;
            p.write_page(id, &buf).unwrap();
            assert_eq!(p.read_page(id).unwrap()[0], i);
        }
    }
}
