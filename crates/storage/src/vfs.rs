//! Virtual file system: the storage engine's only route to disk.
//!
//! The pager and WAL perform all file I/O through the [`Vfs`] /
//! [`VfsFile`] traits. Two implementations exist:
//!
//! * [`RealVfs`] — the real file system (`std::fs`), used by default;
//! * [`FaultyVfs`] — a deterministic fault-injecting, fully in-memory
//!   implementation used by the crash-point recovery harness.
//!
//! # Fault model
//!
//! `FaultyVfs` models a disk with a volatile write cache behind an fsync
//! barrier, which is the model the engine's durability contract is
//! written against:
//!
//! * every write lands in the *shadow* image (the OS page cache): reads
//!   through any handle observe it immediately;
//! * `sync` promotes the shadow image to the *durable* image — only
//!   durable bytes are guaranteed to survive a crash;
//! * a **crash** replays the pending (unsynced) writes — a single queue
//!   across *all* files, in issue order but with seeded cross-file
//!   reordering (a write cache may retire writes to different files out
//!   of order; per-file order is preserved) — against the durable
//!   images, but only a prefix of the queue survives, and the last
//!   surviving write may itself be **torn**: cut either at a 4 KiB
//!   sector boundary or at an arbitrary byte offset inside a sector
//!   (power loss mid-sector). Everything after the cut is lost.
//!
//! On top of the crash model, the seeded schedule can inject transient
//! EIO (the next retry succeeds — the pager and WAL wrap their I/O in
//! [`with_retry`]), scheduled fsync failures (the fsync-gate: data that
//! failed to sync stays volatile and may be dropped by a later crash),
//! and disk-full (`ENOSPC`) once a byte budget is exhausted.
//!
//! All decisions derive from a caller-provided seed, so a failing crash
//! point reproduces exactly.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// One open file, as seen by the pager or WAL. Implementations are
/// stored behind the storage engine's own locks, hence `&mut self`.
pub trait VfsFile: Send {
    /// Reads exactly `buf.len()` bytes at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes all of `data` at `offset`, extending the file if needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Writes all of `data` at the current end of the file.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Current length in bytes.
    fn len(&mut self) -> io::Result<u64>;

    /// True when the file is empty.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Truncates (or zero-extends) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Durability barrier: all prior writes survive a crash iff this
    /// returns `Ok`.
    fn sync(&mut self) -> io::Result<()>;
}

/// A file-system namespace that can open files.
pub trait Vfs: Send + Sync {
    /// Opens (creating if absent) the file at `path` for read/write.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
}

/// True for errors worth a bounded retry (transient device hiccups).
pub fn is_transient(e: &io::Error) -> bool {
    e.raw_os_error() == Some(5 /* EIO */) || e.kind() == io::ErrorKind::Interrupted
}

/// Runs `op`, retrying up to twice on transient errors with a short
/// exponential backoff. Non-transient errors and the final transient
/// error propagate unchanged.
pub fn with_retry<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = Duration::from_micros(50);
    for attempt in 0.. {
        match op() {
            Err(e) if is_transient(&e) && attempt < 2 => {
                std::thread::sleep(delay);
                delay *= 10;
            }
            other => return other,
        }
    }
    unreachable!("loop returns within 3 attempts")
}

// ------------------------------------------------------------- real VFS

/// The production VFS: plain `std::fs` files.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
}

struct RealFile(File);

impl VfsFile for RealFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.read_exact(buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.write_all(data)
    }

    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::End(0))?;
        self.0.write_all(data)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

// ----------------------------------------------------------- faulty VFS

/// Write granularity at which a torn write may be cut: a file-system
/// sector/page, deliberately smaller than the engine's 8 KiB pages so a
/// torn page write leaves a half-old/half-new image.
const TORN_UNIT: usize = 4096;

#[derive(Clone, Debug)]
enum PendingOp {
    Write { offset: u64, data: Vec<u8> },
    SetLen(u64),
}

#[derive(Default)]
struct FileState {
    /// Survives crashes (everything up to the last successful sync).
    durable: Vec<u8>,
    /// What reads observe (durable + all unsynced writes).
    shadow: Vec<u8>,
    /// Unsynced operations tagged with their global issue sequence, for
    /// crash replay across files.
    pending: Vec<(u64, PendingOp)>,
}

struct FaultState {
    rng: u64,
    ops: u64,
    /// Global issue-order stamp for pending ops (crash replay interleaves
    /// the per-file queues by this).
    seq: u64,
    /// Crash once `ops` reaches this value.
    crash_at: Option<u64>,
    /// Every k-th op fails with a transient EIO.
    eio_every: Option<u64>,
    /// Remaining bytes before writes fail with ENOSPC.
    disk_budget: Option<u64>,
    /// Upcoming sync calls to fail (fsync-gate).
    fail_syncs: u32,
    /// Bumped on every crash; stale handles return errors.
    generation: u64,
    crash_count: u64,
    files: HashMap<PathBuf, FileState>,
}

impl FaultState {
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Applies the crash model: the pending (unsynced) ops of *all*
    /// files form one queue in global issue order; seeded adjacent
    /// transpositions reorder ops of different files against each other
    /// (per-file order is what the cache guarantees and is preserved);
    /// then a prefix of the queue survives, the last surviving write
    /// possibly torn — cut at a sector boundary or at an arbitrary byte
    /// offset inside a sector. Invalidates all handles.
    fn crash(&mut self) {
        let mut paths: Vec<PathBuf> = self.files.keys().cloned().collect();
        paths.sort(); // deterministic order regardless of hash state
        let mut queue: Vec<(u64, PathBuf, PendingOp)> = Vec::new();
        for path in &paths {
            for (seq, op) in &self.files[path].pending {
                queue.push((*seq, path.clone(), op.clone()));
            }
        }
        queue.sort_by_key(|(seq, ..)| *seq);
        // Cross-file reordering: two passes of seeded adjacent swaps,
        // never between two ops on the same file.
        for _ in 0..2 {
            for i in 1..queue.len() {
                if queue[i - 1].1 != queue[i].1 && self.next_rand() % 2 == 1 {
                    queue.swap(i - 1, i);
                }
            }
        }
        let mut images: HashMap<PathBuf, Vec<u8>> =
            self.files.iter().map(|(p, f)| (p.clone(), f.durable.clone())).collect();
        let decisions: Vec<u64> = (0..queue.len()).map(|_| self.next_rand()).collect();
        for ((_, path, op), roll) in queue.iter().zip(decisions) {
            let image = images.get_mut(path).expect("file exists");
            match roll % 4 {
                // Lost: this op and everything after it in the (reordered)
                // queue never hit the platter.
                0 => break,
                // Torn: a prefix of this write survives, nothing after it
                // does.
                1 => {
                    if let PendingOp::Write { offset, data } = op {
                        let cut = if data.is_empty() {
                            0
                        } else if data.len() > TORN_UNIT && (roll >> 2) % 2 == 0 {
                            // Cut at a sector boundary strictly inside
                            // the write (the classic multi-sector tear).
                            let units = data.len().div_ceil(TORN_UNIT);
                            (1 + (roll >> 3) as usize % (units - 1)) * TORN_UNIT
                        } else {
                            // Arbitrary byte offset: power loss
                            // mid-sector leaves a partial sector.
                            (roll >> 3) as usize % data.len()
                        };
                        apply_write(image, *offset, &data[..cut.min(data.len())]);
                    }
                    break;
                }
                // Survived intact.
                _ => apply_pending(image, op),
            }
        }
        for (path, image) in images {
            let file = self.files.get_mut(&path).expect("file exists");
            file.durable = image;
            file.shadow = file.durable.clone();
            file.pending.clear();
        }
        self.generation += 1;
        self.crash_count += 1;
        // A crash disarms the schedule: the harness reopens against the
        // post-crash image without further faults unless it re-arms.
        self.crash_at = None;
        self.eio_every = None;
        self.disk_budget = None;
        self.fail_syncs = 0;
    }
}

fn apply_write(image: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let end = offset as usize + data.len();
    if image.len() < end {
        image.resize(end, 0);
    }
    image[offset as usize..end].copy_from_slice(data);
}

fn apply_pending(image: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Write { offset, data } => apply_write(image, *offset, data),
        PendingOp::SetLen(len) => image.resize(*len as usize, 0),
    }
}

/// Deterministic fault-injecting in-memory VFS (see module docs).
/// Clones share state: keep one clone outside the store to trigger
/// crashes and inspect the schedule while the store uses another.
#[derive(Clone)]
pub struct FaultyVfs {
    state: Arc<Mutex<FaultState>>,
}

impl std::fmt::Debug for FaultyVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("FaultyVfs")
            .field("ops", &s.ops)
            .field("crash_at", &s.crash_at)
            .field("crash_count", &s.crash_count)
            .finish()
    }
}

impl FaultyVfs {
    /// A fresh faulty VFS with an empty namespace and no armed faults.
    pub fn new(seed: u64) -> FaultyVfs {
        FaultyVfs {
            state: Arc::new(Mutex::new(FaultState {
                rng: seed ^ 0xD1B5_4A32_D192_ED03,
                ops: 0,
                seq: 0,
                crash_at: None,
                eio_every: None,
                disk_budget: None,
                fail_syncs: 0,
                generation: 0,
                crash_count: 0,
                files: HashMap::new(),
            })),
        }
    }

    /// Arms a crash `n` ops from now: the op that hits the limit (and
    /// every later one) fails, and the crash model is applied to all
    /// unsynced data at that moment.
    pub fn crash_after_ops(&self, n: u64) {
        let mut s = self.state.lock();
        s.crash_at = Some(s.ops + n);
    }

    /// Makes every `k`-th VFS op fail once with a transient EIO.
    pub fn fail_io_every(&self, k: u64) {
        self.state.lock().eio_every = Some(k.max(2));
    }

    /// Fails the next `n` sync calls (data stays volatile).
    pub fn fail_next_syncs(&self, n: u32) {
        self.state.lock().fail_syncs = n;
    }

    /// Limits further writes to `bytes` before ENOSPC.
    pub fn set_disk_budget(&self, bytes: u64) {
        self.state.lock().disk_budget = Some(bytes);
    }

    /// Disarms every scheduled fault (does not undo a crash).
    pub fn clear_faults(&self) {
        let mut s = self.state.lock();
        s.crash_at = None;
        s.eio_every = None;
        s.disk_budget = None;
        s.fail_syncs = 0;
    }

    /// Crashes immediately (applies the crash model to unsynced data and
    /// invalidates all open handles).
    pub fn crash_now(&self) {
        self.state.lock().crash();
    }

    /// Total VFS ops performed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Crashes triggered so far.
    pub fn crash_count(&self) -> u64 {
        self.state.lock().crash_count
    }

    /// Flips one bit of the *durable* image of `path` at byte `offset`
    /// (out-of-band corruption, for checksum tests).
    pub fn corrupt_byte(&self, path: &Path, offset: u64, xor: u8) {
        let mut s = self.state.lock();
        if let Some(f) = s.files.get_mut(path) {
            if let Some(b) = f.durable.get_mut(offset as usize) {
                *b ^= xor;
            }
            if let Some(b) = f.shadow.get_mut(offset as usize) {
                *b ^= xor;
            }
        }
    }

    /// Size of the durable image of `path` (0 if never written).
    pub fn durable_len(&self, path: &Path) -> u64 {
        self.state.lock().files.get(path).map_or(0, |f| f.durable.len() as u64)
    }
}

impl Vfs for FaultyVfs {
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.state.lock();
        let generation = s.generation;
        s.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultyFile { state: self.state.clone(), path: path.to_path_buf(), generation }))
    }
}

struct FaultyFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
    generation: u64,
}

enum OpKind {
    Read,
    Write { bytes: u64 },
    Sync,
}

impl FaultyFile {
    /// The common fault prologue: handle-validity, op accounting, the
    /// crash schedule, transient EIO, disk budget, fsync-gate.
    fn begin_op(s: &mut FaultState, generation: u64, kind: &OpKind) -> io::Result<()> {
        if generation != s.generation {
            return Err(io::Error::other("simulated crash: stale file handle"));
        }
        s.ops += 1;
        if let Some(limit) = s.crash_at {
            if s.ops >= limit {
                s.crash();
                return Err(io::Error::other("simulated crash"));
            }
        }
        if let Some(k) = s.eio_every {
            if s.ops.is_multiple_of(k) {
                return Err(io::Error::from_raw_os_error(5 /* EIO */));
            }
        }
        match kind {
            OpKind::Write { bytes } => {
                if let Some(budget) = s.disk_budget.as_mut() {
                    if *budget < *bytes {
                        return Err(io::Error::from_raw_os_error(28 /* ENOSPC */));
                    }
                    *budget -= bytes;
                }
            }
            OpKind::Sync => {
                if s.fail_syncs > 0 {
                    s.fail_syncs -= 1;
                    return Err(io::Error::from_raw_os_error(5 /* EIO */));
                }
            }
            OpKind::Read => {}
        }
        Ok(())
    }
}

impl VfsFile for FaultyFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        Self::begin_op(&mut s, self.generation, &OpKind::Read)?;
        let f = s.files.get(&self.path).expect("opened file exists");
        let end = offset as usize + buf.len();
        if end > f.shadow.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("read past end: {} > {}", end, f.shadow.len()),
            ));
        }
        buf.copy_from_slice(&f.shadow[offset as usize..end]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        Self::begin_op(&mut s, self.generation, &OpKind::Write { bytes: data.len() as u64 })?;
        s.seq += 1;
        let seq = s.seq;
        let f = s.files.get_mut(&self.path).expect("opened file exists");
        apply_write(&mut f.shadow, offset, data);
        f.pending.push((seq, PendingOp::Write { offset, data: data.to_vec() }));
        Ok(())
    }

    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        Self::begin_op(&mut s, self.generation, &OpKind::Write { bytes: data.len() as u64 })?;
        s.seq += 1;
        let seq = s.seq;
        let f = s.files.get_mut(&self.path).expect("opened file exists");
        let offset = f.shadow.len() as u64;
        apply_write(&mut f.shadow, offset, data);
        f.pending.push((seq, PendingOp::Write { offset, data: data.to_vec() }));
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        let mut s = self.state.lock();
        Self::begin_op(&mut s, self.generation, &OpKind::Read)?;
        Ok(s.files.get(&self.path).expect("opened file exists").shadow.len() as u64)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        Self::begin_op(&mut s, self.generation, &OpKind::Write { bytes: 0 })?;
        s.seq += 1;
        let seq = s.seq;
        let f = s.files.get_mut(&self.path).expect("opened file exists");
        f.shadow.resize(len as usize, 0);
        f.pending.push((seq, PendingOp::SetLen(len)));
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut s = self.state.lock();
        Self::begin_op(&mut s, self.generation, &OpKind::Sync)?;
        let f = s.files.get_mut(&self.path).expect("opened file exists");
        f.durable = f.shadow.clone();
        f.pending.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn shadow_reads_and_sync_promote() {
        let vfs = FaultyVfs::new(1);
        let mut f = vfs.open(&p("/a")).unwrap();
        f.append(b"hello").unwrap();
        let mut buf = [0u8; 5];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(vfs.durable_len(&p("/a")), 0, "unsynced data is volatile");
        f.sync().unwrap();
        assert_eq!(vfs.durable_len(&p("/a")), 5);
    }

    #[test]
    fn crash_preserves_synced_loses_some_unsynced() {
        for seed in 0..32u64 {
            let vfs = FaultyVfs::new(seed);
            let mut f = vfs.open(&p("/a")).unwrap();
            f.append(b"durable!").unwrap();
            f.sync().unwrap();
            f.append(b"volatile").unwrap();
            vfs.crash_now();
            assert!(f.append(b"x").is_err(), "stale handle fails");
            let mut f2 = vfs.open(&p("/a")).unwrap();
            let n = f2.len().unwrap();
            assert!(n >= 8, "synced prefix survives (seed {seed}, len {n})");
            let mut buf = vec![0u8; 8];
            f2.read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"durable!");
        }
    }

    #[test]
    fn torn_large_write_cut_at_sector_or_mid_sector() {
        // Across enough seeds, a crashed unsynced 12 KiB write is seen
        // cut both at a 4 KiB sector boundary (the classic multi-sector
        // tear) and at an arbitrary byte offset inside a sector (power
        // loss mid-sector). Never more than what was written survives.
        let (mut saw_sector_cut, mut saw_sub_sector_cut) = (false, false);
        for seed in 0..256u64 {
            let vfs = FaultyVfs::new(seed);
            let mut f = vfs.open(&p("/a")).unwrap();
            f.write_at(0, &vec![0xABu8; 3 * TORN_UNIT]).unwrap();
            vfs.crash_now();
            let n = vfs.durable_len(&p("/a"));
            assert!(n <= 3 * TORN_UNIT as u64);
            if n > 0 && n < 3 * TORN_UNIT as u64 {
                if n.is_multiple_of(TORN_UNIT as u64) {
                    saw_sector_cut = true;
                } else {
                    saw_sub_sector_cut = true;
                }
            }
        }
        assert!(saw_sector_cut, "sector-boundary tears occur across seeds");
        assert!(saw_sub_sector_cut, "mid-sector tears occur across seeds");
    }

    #[test]
    fn crash_reorders_unsynced_writes_across_files() {
        // The write to /b is issued *after* the write to /a; a cache that
        // retires out of order can persist /b while losing /a. Per-file
        // order must hold: /a's second write never survives without its
        // first.
        let mut saw_reorder = false;
        for seed in 0..256u64 {
            let vfs = FaultyVfs::new(seed);
            let mut fa = vfs.open(&p("/a")).unwrap();
            let mut fb = vfs.open(&p("/b")).unwrap();
            fa.write_at(0, b"a1").unwrap();
            fb.write_at(0, b"b1").unwrap();
            fa.write_at(2, b"a2").unwrap();
            vfs.crash_now();
            let a = vfs.durable_len(&p("/a"));
            let b = vfs.durable_len(&p("/b"));
            if b == 2 && a == 0 {
                saw_reorder = true; // /b survived though issued later
            }
            assert!(
                !(a == 4 && {
                    let mut f = vfs.open(&p("/a")).unwrap();
                    let mut buf = [0u8; 2];
                    f.read_at(0, &mut buf).unwrap();
                    &buf != b"a1"
                }),
                "per-file order violated (seed {seed})"
            );
        }
        assert!(saw_reorder, "cross-file reordering occurs across seeds");
    }

    #[test]
    fn eio_is_transient_and_retry_recovers() {
        let vfs = FaultyVfs::new(7);
        vfs.fail_io_every(3);
        let mut f = vfs.open(&p("/a")).unwrap();
        let mut failures = 0;
        for i in 0..30u8 {
            match with_retry(|| f.append(&[i])) {
                Ok(()) => {}
                Err(e) => {
                    failures += 1;
                    assert!(is_transient(&e) || e.kind() == io::ErrorKind::Other, "{e}");
                }
            }
        }
        assert_eq!(failures, 0, "bounded retry absorbs scheduled EIO");
        // `len` is itself a faultable op: disarm before the final check.
        vfs.clear_faults();
        assert_eq!(f.len().unwrap(), 30);
    }

    #[test]
    fn disk_budget_enospc() {
        let vfs = FaultyVfs::new(3);
        vfs.set_disk_budget(10);
        let mut f = vfs.open(&p("/a")).unwrap();
        f.append(b"12345").unwrap();
        f.append(b"1234").unwrap();
        let e = f.append(b"56").unwrap_err();
        assert_eq!(e.raw_os_error(), Some(28));
        // Reads still work on a full disk.
        assert_eq!(f.len().unwrap(), 9);
    }

    #[test]
    fn failed_sync_keeps_data_volatile() {
        let vfs = FaultyVfs::new(9);
        let mut f = vfs.open(&p("/a")).unwrap();
        f.append(b"abc").unwrap();
        vfs.fail_next_syncs(1);
        assert!(f.sync().is_err());
        assert_eq!(vfs.durable_len(&p("/a")), 0, "failed fsync promoted nothing");
        // Reads still see the data (page cache semantics).
        let mut b = [0u8; 3];
        f.read_at(0, &mut b).unwrap();
        assert_eq!(&b, b"abc");
        // Second sync succeeds and promotes.
        f.sync().unwrap();
        assert_eq!(vfs.durable_len(&p("/a")), 3);
    }

    #[test]
    fn crash_after_ops_fires_and_disarms() {
        let vfs = FaultyVfs::new(11);
        let mut f = vfs.open(&p("/a")).unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        vfs.crash_after_ops(3);
        let mut failed = false;
        for _ in 0..10 {
            if f.append(b"y").is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "crash point reached");
        assert_eq!(vfs.crash_count(), 1);
        // Post-crash reopen works with faults disarmed.
        let mut f2 = vfs.open(&p("/a")).unwrap();
        for _ in 0..10 {
            f2.append(b"z").unwrap();
        }
    }

    #[test]
    fn real_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("txdb-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("real.bin");
        let _ = std::fs::remove_file(&path);
        let vfs = RealVfs;
        let mut f = vfs.open(&path).unwrap();
        f.write_at(0, b"0123456789").unwrap();
        f.append(b"ab").unwrap();
        assert_eq!(f.len().unwrap(), 12);
        let mut buf = [0u8; 4];
        f.read_at(8, &mut buf).unwrap();
        assert_eq!(&buf, b"89ab");
        f.set_len(10).unwrap();
        assert_eq!(f.len().unwrap(), 10);
        f.sync().unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
