//! Materialized-version cache: sharded LRU over reconstructed trees.
//!
//! The paper's cost model (§7.3.3, E4) prices every temporal operator in
//! deltas applied per reconstruction. Without a cache, `Reconstruct`,
//! `DocHistory` and `TPatternScanAll`-driven reconstructions re-pay the
//! same backward delta chains on every call. This module keeps recently
//! materialized versions — keyed `(DocId, VersionId)`, which is immutable
//! content — in a byte-budgeted, sharded LRU so the *nearest cached
//! version* can seed a reconstruction instead of the nearest snapshot or
//! the current version.
//!
//! Sharding bounds lock contention: the parallel scan workers (see
//! `txdb-core`) hit the cache concurrently, and a single mutex would
//! serialise them. Each shard owns `budget / SHARDS` bytes and evicts its
//! own LRU tail independently.
//!
//! Invalidation is conservative: any mutation of a document (`put`,
//! `delete`, `vacuum`) drops every cached version of that document.
//! Strictly only `vacuum` destroys cached content (version payloads are
//! otherwise append-only), but the blanket rule keeps the invariant
//! trivially auditable: *a cache entry never outlives any change to its
//! document*.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use txdb_base::obs::{Counter, Registry};
use txdb_base::{DocId, VersionId};
use txdb_xml::tree::Tree;

/// Number of independent LRU shards.
const SHARDS: usize = 8;

/// Fixed per-node overhead assumed by the byte estimator (struct size,
/// child vector slot, allocator slack).
const NODE_OVERHEAD: usize = 96;

/// Counters exposed by the cache, mirroring [`crate::buffer::BufferStats`].
/// All values are cumulative. A cache built with
/// [`VersionCache::with_metrics`] registers these counters under
/// `vcache.*` in the store's [`Registry`] so query `ExecStats`, `txdb
/// stats` and `txdb metrics` all read the same atomics.
#[derive(Debug, Default)]
pub struct VersionCacheStats {
    /// Lookups that found their version.
    pub hits: Counter,
    /// Lookups that did not.
    pub misses: Counter,
    /// Trees inserted.
    pub inserts: Counter,
    /// Entries evicted to stay inside the byte budget.
    pub evictions: Counter,
    /// Entries dropped by document invalidation (put/delete/vacuum).
    pub invalidations: Counter,
}

impl VersionCacheStats {
    /// Stats whose counters are registered in `reg` under `vcache.*`.
    pub fn registered(reg: &Registry) -> VersionCacheStats {
        VersionCacheStats {
            hits: reg.counter("vcache.hits"),
            misses: reg.counter("vcache.misses"),
            inserts: reg.counter("vcache.inserts"),
            evictions: reg.counter("vcache.evictions"),
            invalidations: reg.counter("vcache.invalidations"),
        }
    }

    /// Snapshot of (hits, misses, inserts, evictions, invalidations).
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.inserts.get(),
            self.evictions.get(),
            self.invalidations.get(),
        )
    }

    /// Resets all counters (used between experiment phases).
    pub fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.inserts.reset();
        self.evictions.reset();
        self.invalidations.reset();
    }
}

struct Entry {
    tree: Arc<Tree>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<(DocId, VersionId), Entry>,
    bytes: usize,
}

/// The sharded LRU materialized-version cache.
pub struct VersionCache {
    shards: Vec<Mutex<Shard>>,
    /// Byte budget per shard (total budget / shard count); 0 disables.
    shard_budget: usize,
    tick: AtomicU64,
    /// Hit/miss/eviction counters.
    pub stats: VersionCacheStats,
}

/// Rough heap footprint of a tree: per-node overhead plus owned strings.
/// Exact accounting is not the point — the budget only has to keep the
/// cache from growing without bound, and relative sizes are right.
pub fn tree_bytes(tree: &Tree) -> usize {
    let mut total = tree.len() * NODE_OVERHEAD;
    for id in tree.iter() {
        let node = tree.node(id);
        if let Some(name) = node.name() {
            total += name.len();
        }
        if let Some(text) = node.text() {
            total += text.len();
        }
        total += node.children().len() * std::mem::size_of::<u32>();
    }
    total
}

impl VersionCache {
    /// A cache with a total byte budget; `0` disables caching entirely
    /// (every lookup misses, inserts are dropped). Counters are
    /// standalone (unregistered).
    pub fn new(budget_bytes: usize) -> VersionCache {
        VersionCache::with_stats(budget_bytes, VersionCacheStats::default())
    }

    /// Like [`VersionCache::new`] but with counters registered in `reg`
    /// under `vcache.*`.
    pub fn with_metrics(budget_bytes: usize, reg: &Registry) -> VersionCache {
        VersionCache::with_stats(budget_bytes, VersionCacheStats::registered(reg))
    }

    fn with_stats(budget_bytes: usize, stats: VersionCacheStats) -> VersionCache {
        VersionCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_bytes / SHARDS,
            tick: AtomicU64::new(0),
            stats,
        }
    }

    /// True when the cache has a zero budget and can never hold anything.
    pub fn is_disabled(&self) -> bool {
        self.shard_budget == 0
    }

    fn shard(&self, doc: DocId, v: VersionId) -> &Mutex<Shard> {
        // Cheap mix: documents spread across shards, consecutive versions
        // of one document spread too (parallel workers often walk one
        // document's versions together).
        let h = (doc.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (v.0 as u64);
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// The cached tree of `(doc, v)`, if present. Counts a hit or miss.
    pub fn get(&self, doc: DocId, v: VersionId) -> Option<Arc<Tree>> {
        if self.is_disabled() {
            self.stats.misses.inc();
            return None;
        }
        let mut shard = self.shard(doc, v).lock();
        match shard.map.get_mut(&(doc, v)) {
            Some(e) => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.inc();
                Some(e.tree.clone())
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Like [`VersionCache::get`] but without touching the counters or the
    /// LRU clock — used by probes that only ask "is it resident?" while
    /// choosing a reconstruction seed.
    pub fn peek(&self, doc: DocId, v: VersionId) -> Option<Arc<Tree>> {
        if self.is_disabled() {
            return None;
        }
        let shard = self.shard(doc, v).lock();
        shard.map.get(&(doc, v)).map(|e| e.tree.clone())
    }

    /// Inserts (or refreshes) a materialized version, evicting LRU entries
    /// from the target shard until it fits the budget. Trees larger than a
    /// whole shard budget are not cached at all.
    pub fn insert(&self, doc: DocId, v: VersionId, tree: Arc<Tree>) {
        if self.is_disabled() {
            return;
        }
        let bytes = tree_bytes(&tree);
        if bytes > self.shard_budget {
            return;
        }
        let mut shard = self.shard(doc, v).lock();
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(old) = shard.map.insert((doc, v), Entry { tree, bytes, last_used }) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        self.stats.inserts.inc();
        while shard.bytes > self.shard_budget {
            let victim = shard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = shard.map.remove(&k) {
                        shard.bytes -= e.bytes;
                    }
                    self.stats.evictions.inc();
                }
                None => break,
            }
        }
    }

    /// Drops every cached version of `doc` (writer-side invalidation).
    pub fn invalidate_doc(&self, doc: DocId) {
        if self.is_disabled() {
            return;
        }
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let keys: Vec<(DocId, VersionId)> =
                shard.map.keys().filter(|(d, _)| *d == doc).copied().collect();
            for k in keys {
                if let Some(e) = shard.map.remove(&k) {
                    shard.bytes -= e.bytes;
                    dropped += 1;
                }
            }
        }
        self.stats.invalidations.add(dropped);
    }

    /// Drops everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dropped = shard.map.len() as u64;
            shard.map.clear();
            shard.bytes = 0;
            self.stats.invalidations.add(dropped);
        }
    }

    /// Number of resident entries (for tests and `txdb stats`).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes resident across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::parse::parse_document;

    fn tree(text: &str) -> Arc<Tree> {
        Arc::new(parse_document(&format!("<a>{text}</a>")).unwrap())
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = VersionCache::new(1 << 20);
        assert!(c.get(DocId(1), VersionId(0)).is_none());
        c.insert(DocId(1), VersionId(0), tree("x"));
        assert!(c.get(DocId(1), VersionId(0)).is_some());
        let (hits, misses, inserts, ..) = c.stats.snapshot();
        assert_eq!((hits, misses, inserts), (1, 1, 1));
        assert_eq!(c.len(), 1);
        assert!(c.resident_bytes() > 0);
    }

    #[test]
    fn zero_budget_disables() {
        let c = VersionCache::new(0);
        assert!(c.is_disabled());
        c.insert(DocId(1), VersionId(0), tree("x"));
        assert!(c.get(DocId(1), VersionId(0)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn invalidate_doc_drops_only_that_doc() {
        let c = VersionCache::new(1 << 20);
        for v in 0..4 {
            c.insert(DocId(1), VersionId(v), tree("a"));
            c.insert(DocId(2), VersionId(v), tree("b"));
        }
        c.invalidate_doc(DocId(1));
        assert_eq!(c.len(), 4);
        assert!(c.get(DocId(1), VersionId(0)).is_none());
        assert!(c.get(DocId(2), VersionId(0)).is_some());
        let (.., invalidations) = c.stats.snapshot();
        assert_eq!(invalidations, 4);
    }

    #[test]
    fn budget_evicts_lru() {
        // Budget for roughly a few small trees per shard: force evictions
        // by hammering versions that map to the same shard.
        let one = tree_bytes(&tree("payload"));
        let c = VersionCache::new(one * SHARDS * 2);
        for v in 0..64 {
            c.insert(DocId(7), VersionId(v), tree("payload"));
        }
        let (.., _inserts, evictions, _) = {
            let s = c.stats.snapshot();
            (s.0, s.1, s.2, s.3, s.4)
        };
        assert!(evictions > 0, "evictions: {evictions}");
        assert!(c.resident_bytes() <= one * SHARDS * 2);
    }

    #[test]
    fn oversized_tree_not_cached() {
        let c = VersionCache::new(256);
        let big = "x".repeat(10_000);
        c.insert(DocId(1), VersionId(0), tree(&big));
        assert!(c.peek(DocId(1), VersionId(0)).is_none());
    }

    #[test]
    fn peek_does_not_count() {
        let c = VersionCache::new(1 << 20);
        c.insert(DocId(1), VersionId(0), tree("x"));
        assert!(c.peek(DocId(1), VersionId(0)).is_some());
        assert!(c.peek(DocId(1), VersionId(1)).is_none());
        let (hits, misses, ..) = c.stats.snapshot();
        assert_eq!((hits, misses), (0, 0));
    }
}
