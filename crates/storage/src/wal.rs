//! Logical write-ahead log.
//!
//! The document store logs every mutating operation *before* applying it to
//! pages (`put`, `delete`), and the buffer pool never steals dirty pages,
//! so the on-disk page image always reflects exactly the state as of some
//! checkpoint. Recovery therefore replays all WAL entries after the last
//! checkpoint against that image.
//!
//! Record format: `[len u32][crc32 u32][payload]`. A torn tail (partial
//! record after a crash) is detected by length/CRC and cleanly truncated —
//! the recovery report says how many bytes were dropped. A checkpoint
//! *resets* the log after flushing all pages.

use std::path::Path;
use std::time::Instant;

use parking_lot::Mutex;
use txdb_base::obs::{Counter, Histogram, Registry};
use txdb_base::Result;

use crate::vfs::{with_retry, RealVfs, Vfs, VfsFile};

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

enum Backend {
    Memory(Vec<u8>),
    File(Box<dyn VfsFile>),
}

/// Cached metric handles for the log's hot path. Default handles are
/// standalone; [`WalMetrics::registered`] shares them with a store's
/// registry under `wal.*`. Kept outside the backend mutex so recording
/// stays plain atomic increments.
#[derive(Clone, Debug, Default)]
pub struct WalMetrics {
    /// Records appended.
    pub appends: Counter,
    /// Framed bytes appended (header + payload).
    pub appended_bytes: Counter,
    /// Fsyncs issued (append-time and explicit).
    pub fsyncs: Counter,
    /// Fsync latency in microseconds.
    pub fsync_us: Histogram,
}

impl WalMetrics {
    /// Metrics registered in `reg` under `wal.*`.
    pub fn registered(reg: &Registry) -> WalMetrics {
        WalMetrics {
            appends: reg.counter("wal.appends"),
            appended_bytes: reg.counter("wal.appended_bytes"),
            fsyncs: reg.counter("wal.fsyncs"),
            fsync_us: reg.histogram("wal.fsync_us"),
        }
    }
}

/// The write-ahead log.
pub struct Wal {
    inner: Mutex<Backend>,
    sync_on_append: bool,
    metrics: WalMetrics,
}

/// What recovery found in the log.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Complete, CRC-valid records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail dropped (0 on a clean log).
    pub torn_bytes: u64,
}

impl Wal {
    /// In-memory log (tests, benchmarks).
    pub fn memory() -> Wal {
        Wal {
            inner: Mutex::new(Backend::Memory(Vec::new())),
            sync_on_append: false,
            metrics: WalMetrics::default(),
        }
    }

    /// File-backed log on the real file system. `sync_on_append` forces
    /// an fsync per record (durability at the cost of latency;
    /// experiments keep it off).
    pub fn open(path: &Path, sync_on_append: bool) -> Result<Wal> {
        Wal::open_with(&RealVfs, path, sync_on_append)
    }

    /// File-backed log through the given [`Vfs`].
    pub fn open_with(vfs: &dyn Vfs, path: &Path, sync_on_append: bool) -> Result<Wal> {
        let file = vfs.open(path)?;
        Ok(Wal {
            inner: Mutex::new(Backend::File(file)),
            sync_on_append,
            metrics: WalMetrics::default(),
        })
    }

    /// Replaces the metric handles (called once at store open, before the
    /// log is shared, to fold the counters into the store's registry).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// The log's metric handles.
    pub fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// Appends one record. A transient device error (EIO) is absorbed by
    /// a bounded retry; an fsync failure is surfaced unretried — the
    /// record may not be durable and the caller must know.
    pub fn append(&self, payload: &[u8]) -> Result<()> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        let mut inner = self.inner.lock();
        match &mut *inner {
            Backend::Memory(buf) => buf.extend_from_slice(&framed),
            Backend::File(f) => {
                with_retry(|| f.append(&framed))?;
                if self.sync_on_append {
                    let start = Instant::now();
                    f.sync()?;
                    self.metrics.fsyncs.inc();
                    self.metrics.fsync_us.record(start.elapsed().as_micros() as u64);
                }
            }
        }
        self.metrics.appends.inc();
        self.metrics.appended_bytes.add(framed.len() as u64);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        Ok(match &mut *inner {
            Backend::Memory(buf) => buf.clone(),
            Backend::File(f) => {
                let len = f.len()? as usize;
                let mut buf = vec![0u8; len];
                with_retry(|| f.read_at(0, &mut buf))?;
                buf
            }
        })
    }

    /// Reads every valid record from the start; tolerates (and reports) a
    /// torn tail.
    pub fn replay(&self) -> Result<ReplaySummary> {
        let data = self.read_all()?;
        let (records, valid_len) = scan(&data);
        Ok(ReplaySummary {
            records: records.into_iter().map(|r| r.to_vec()).collect(),
            torn_bytes: (data.len() - valid_len) as u64,
        })
    }

    /// Physically truncates a torn/corrupt tail, keeping every valid
    /// record. Returns the number of bytes removed (0 on a clean log).
    /// Used by `fsck --repair-tail`.
    pub fn repair_tail(&self) -> Result<u64> {
        let data = self.read_all()?;
        let (_, valid_len) = scan(&data);
        let torn = (data.len() - valid_len) as u64;
        if torn > 0 {
            let mut inner = self.inner.lock();
            match &mut *inner {
                Backend::Memory(buf) => buf.truncate(valid_len),
                Backend::File(f) => {
                    f.set_len(valid_len as u64)?;
                    f.sync()?;
                }
            }
        }
        Ok(torn)
    }

    /// Truncates the log (checkpoint completion).
    pub fn reset(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        match &mut *inner {
            Backend::Memory(buf) => buf.clear(),
            Backend::File(f) => {
                f.set_len(0)?;
                f.sync()?;
            }
        }
        Ok(())
    }

    /// Current size in bytes.
    pub fn size(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        Ok(match &mut *inner {
            Backend::Memory(buf) => buf.len() as u64,
            Backend::File(f) => f.len()?,
        })
    }

    /// Fsyncs the file backend.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Backend::File(f) = &mut *inner {
            let start = Instant::now();
            f.sync()?;
            self.metrics.fsyncs.inc();
            self.metrics.fsync_us.record(start.elapsed().as_micros() as u64);
        }
        Ok(())
    }
}

/// Scans framed records from the start of `data`; returns the complete,
/// CRC-valid records and the byte length of that valid prefix.
fn scan(data: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let len =
            u32::from_le_bytes(data[pos..pos + 4].try_into().expect("fixed-width slice")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("fixed-width slice"));
        if pos + 8 + len > data.len() {
            break; // torn tail
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // corrupt from here on: treat as torn
        }
        records.push(payload);
        pos += 8 + len;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_replay_roundtrip() {
        let w = Wal::memory();
        w.append(b"one").unwrap();
        w.append(b"").unwrap();
        w.append(b"three three three").unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"".to_vec(), b"three three three".to_vec()]);
        assert_eq!(r.torn_bytes, 0);
    }

    #[test]
    fn reset_clears() {
        let w = Wal::memory();
        w.append(b"x").unwrap();
        w.reset().unwrap();
        assert_eq!(w.replay().unwrap().records.len(), 0);
        assert_eq!(w.size().unwrap(), 0);
    }

    #[test]
    fn torn_tail_detected_file() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, false).unwrap();
            w.append(b"good one").unwrap();
            w.append(b"good two").unwrap();
            w.sync().unwrap();
        }
        // Simulate a crash mid-append: append garbage half-record.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap(); // len=200 but no data
        }
        let w = Wal::open(&path, false).unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.torn_bytes, 6);
        // repair_tail physically removes the torn bytes.
        assert_eq!(w.repair_tail().unwrap(), 6);
        assert_eq!(w.replay().unwrap().torn_bytes, 0);
        assert_eq!(w.repair_tail().unwrap(), 0, "idempotent");
        assert_eq!(w.replay().unwrap().records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, true).unwrap();
            w.append(b"first").unwrap();
            w.append(b"second").unwrap();
        }
        // Flip a payload byte of the second record.
        {
            let mut data = std::fs::read(&path).unwrap();
            let n = data.len();
            data[n - 1] ^= 0xFF;
            std::fs::write(&path, data).unwrap();
        }
        let w = Wal::open(&path, false).unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records, vec![b"first".to_vec()]);
        assert!(r.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-p-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, false).unwrap();
            w.append(b"persist").unwrap();
            w.sync().unwrap();
        }
        let w = Wal::open(&path, false).unwrap();
        assert_eq!(w.replay().unwrap().records, vec![b"persist".to_vec()]);
        w.append(b"more").unwrap();
        assert_eq!(w.replay().unwrap().records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

            /// Replaying an arbitrarily truncated and/or bit-flipped log
            /// never panics and never yields a record that was not fully
            /// appended: every returned record equals an appended payload
            /// (damage can only drop a suffix, not invent or alter data —
            /// modulo a CRC32 collision, which these inputs don't hit).
            #[test]
            fn damaged_log_never_yields_foreign_records(
                payloads in prop::collection::vec(
                    prop::collection::vec(any::<u8>(), 0..40), 0..12),
                cut in 0usize..600,
                flips in prop::collection::vec((0usize..600, 1u8..=255), 0..3),
            ) {
                let mut log = Vec::new();
                for p in &payloads {
                    log.extend_from_slice(&(p.len() as u32).to_le_bytes());
                    log.extend_from_slice(&crc32(p).to_le_bytes());
                    log.extend_from_slice(p);
                }
                let full_len = log.len();
                // Damage: truncate to `cut` bytes, then flip bits.
                log.truncate(cut.min(full_len));
                for (pos, xor) in &flips {
                    if let Some(b) = log.get_mut(*pos) {
                        *b ^= xor;
                    }
                }
                let (records, valid_len) = scan(&log);
                prop_assert!(valid_len <= log.len());
                // Every surviving record must literally be one of the
                // appended payloads.
                for r in &records {
                    prop_assert!(
                        payloads.iter().any(|p| p.as_slice() == *r),
                        "foreign record {:?}", r
                    );
                }
                // An undamaged log must replay every record in order.
                if flips.is_empty() && cut >= full_len {
                    let want: Vec<&[u8]> =
                        payloads.iter().map(|p| p.as_slice()).collect();
                    prop_assert_eq!(records, want);
                }
            }
        }
    }
}
