//! Logical write-ahead log.
//!
//! The document store logs every mutating operation *before* applying it to
//! pages (`put`, `delete`), and the buffer pool never steals dirty pages,
//! so the on-disk page image always reflects exactly the state as of some
//! checkpoint. Recovery therefore replays all WAL entries after the last
//! checkpoint against that image.
//!
//! Record format: `[len u32][crc32 u32][payload]`. A torn tail (partial
//! record after a crash) is detected by length/CRC and cleanly truncated —
//! the recovery report says how many bytes were dropped. A checkpoint
//! *resets* the log after flushing all pages.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;
use txdb_base::Result;

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

enum Backend {
    Memory(Vec<u8>),
    File(File),
}

/// The write-ahead log.
pub struct Wal {
    inner: Mutex<Backend>,
    sync_on_append: bool,
}

/// What recovery found in the log.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Complete, CRC-valid records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail dropped (0 on a clean log).
    pub torn_bytes: u64,
}

impl Wal {
    /// In-memory log (tests, benchmarks).
    pub fn memory() -> Wal {
        Wal { inner: Mutex::new(Backend::Memory(Vec::new())), sync_on_append: false }
    }

    /// File-backed log. `sync_on_append` forces an fsync per record
    /// (durability at the cost of latency; experiments keep it off).
    pub fn open(path: &Path, sync_on_append: bool) -> Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Wal { inner: Mutex::new(Backend::File(file)), sync_on_append })
    }

    /// Appends one record.
    pub fn append(&self, payload: &[u8]) -> Result<()> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        let mut inner = self.inner.lock();
        match &mut *inner {
            Backend::Memory(buf) => buf.extend_from_slice(&framed),
            Backend::File(f) => {
                f.seek(SeekFrom::End(0))?;
                f.write_all(&framed)?;
                if self.sync_on_append {
                    f.sync_data()?;
                }
            }
        }
        Ok(())
    }

    /// Reads every valid record from the start; tolerates (and reports) a
    /// torn tail.
    pub fn replay(&self) -> Result<ReplaySummary> {
        let data = {
            let mut inner = self.inner.lock();
            match &mut *inner {
                Backend::Memory(buf) => buf.clone(),
                Backend::File(f) => {
                    let mut buf = Vec::new();
                    f.seek(SeekFrom::Start(0))?;
                    f.read_to_end(&mut buf)?;
                    buf
                }
            }
        };
        let mut out = ReplaySummary::default();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            if pos + 8 + len > data.len() {
                break; // torn tail
            }
            let payload = &data[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break; // corrupt from here on: treat as torn
            }
            out.records.push(payload.to_vec());
            pos += 8 + len;
        }
        out.torn_bytes = (data.len() - pos) as u64;
        Ok(out)
    }

    /// Truncates the log (checkpoint completion).
    pub fn reset(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        match &mut *inner {
            Backend::Memory(buf) => buf.clear(),
            Backend::File(f) => {
                f.set_len(0)?;
                f.sync_data()?;
            }
        }
        Ok(())
    }

    /// Current size in bytes.
    pub fn size(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        Ok(match &mut *inner {
            Backend::Memory(buf) => buf.len() as u64,
            Backend::File(f) => f.metadata()?.len(),
        })
    }

    /// Fsyncs the file backend.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Backend::File(f) = &mut *inner {
            f.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_replay_roundtrip() {
        let w = Wal::memory();
        w.append(b"one").unwrap();
        w.append(b"").unwrap();
        w.append(b"three three three").unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"".to_vec(), b"three three three".to_vec()]);
        assert_eq!(r.torn_bytes, 0);
    }

    #[test]
    fn reset_clears() {
        let w = Wal::memory();
        w.append(b"x").unwrap();
        w.reset().unwrap();
        assert_eq!(w.replay().unwrap().records.len(), 0);
        assert_eq!(w.size().unwrap(), 0);
    }

    #[test]
    fn torn_tail_detected_file() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, false).unwrap();
            w.append(b"good one").unwrap();
            w.append(b"good two").unwrap();
            w.sync().unwrap();
        }
        // Simulate a crash mid-append: append garbage half-record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap(); // len=200 but no data
        }
        let w = Wal::open(&path, false).unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.torn_bytes, 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, true).unwrap();
            w.append(b"first").unwrap();
            w.append(b"second").unwrap();
        }
        // Flip a payload byte of the second record.
        {
            let mut data = std::fs::read(&path).unwrap();
            let n = data.len();
            data[n - 1] ^= 0xFF;
            std::fs::write(&path, data).unwrap();
        }
        let w = Wal::open(&path, false).unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records, vec![b"first".to_vec()]);
        assert!(r.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-p-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, false).unwrap();
            w.append(b"persist").unwrap();
            w.sync().unwrap();
        }
        let w = Wal::open(&path, false).unwrap();
        assert_eq!(w.replay().unwrap().records, vec![b"persist".to_vec()]);
        w.append(b"more").unwrap();
        assert_eq!(w.replay().unwrap().records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
