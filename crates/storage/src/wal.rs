//! Logical write-ahead log.
//!
//! The document store logs every mutating operation *before* applying it to
//! pages (`put`, `delete`), and the buffer pool never steals dirty pages,
//! so the on-disk page image always reflects exactly the state as of some
//! checkpoint. Recovery therefore replays all WAL entries after the last
//! checkpoint against that image.
//!
//! Record format: `[len u32][crc32 u32][payload]`. A torn tail (partial
//! record after a crash) is detected by length/CRC and cleanly truncated —
//! the recovery report says how many bytes were dropped. A checkpoint
//! *resets* the log after flushing all pages.
//!
//! ## Group commit
//!
//! [`Wal::append`] assigns each record a monotone sequence number under the
//! backend lock (sequence order equals file order) but never fsyncs.
//! Durability is a separate step: [`Wal::commit`] blocks until the record's
//! sequence is known durable. Concurrent committers elect a *leader* — the
//! first to take the group lock — which issues **one** fsync covering every
//! record appended so far; all queued followers then observe the advanced
//! durable watermark and return without touching the device. The
//! `wal.group_commit.batch_size` histogram records how many sequences each
//! fsync retired, i.e. how well the fsync cost is being amortized.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, LockResult, Mutex as StdMutex, PoisonError};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use txdb_base::obs::{Counter, Histogram, Registry};
use txdb_base::Result;

use crate::vfs::{with_retry, RealVfs, Vfs, VfsFile};

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

enum Backend {
    Memory(Vec<u8>),
    File(Box<dyn VfsFile>),
}

/// Cached metric handles for the log's hot path. Default handles are
/// standalone; [`WalMetrics::registered`] shares them with a store's
/// registry under `wal.*`. Kept outside the backend mutex so recording
/// stays plain atomic increments.
#[derive(Clone, Debug, Default)]
pub struct WalMetrics {
    /// Records appended.
    pub appends: Counter,
    /// Framed bytes appended (header + payload).
    pub appended_bytes: Counter,
    /// Fsyncs issued (group-commit and explicit).
    pub fsyncs: Counter,
    /// Fsync latency in microseconds.
    pub fsync_us: Histogram,
    /// Sequences retired per group-commit fsync (1 = no batching; N means
    /// one fsync made N commits durable together).
    pub group_batch: Histogram,
}

impl WalMetrics {
    /// Metrics registered in `reg` under `wal.*`.
    pub fn registered(reg: &Registry) -> WalMetrics {
        WalMetrics {
            appends: reg.counter("wal.appends"),
            appended_bytes: reg.counter("wal.appended_bytes"),
            fsyncs: reg.counter("wal.fsyncs"),
            fsync_us: reg.histogram("wal.fsync_us"),
            group_batch: reg.histogram("wal.group_commit.batch_size"),
        }
    }
}

/// Unwraps a std lock result, ignoring poison. The wake-up mutexes guard
/// no state of their own — the watermark and counters they signal about
/// are atomics — so a thread that panicked while holding one must not
/// wedge every later commit.
fn ignore_poison<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The write-ahead log.
pub struct Wal {
    inner: Mutex<Backend>,
    sync_on_append: bool,
    metrics: WalMetrics,
    /// Last sequence assigned by `append` (monotone, assigned under the
    /// backend lock so sequence order equals file order).
    seq: AtomicU64,
    /// Highest sequence known durable on the backend.
    durable: AtomicU64,
    /// Group-commit leader election: the holder fsyncs on behalf of every
    /// committer queued behind it.
    group: Mutex<()>,
    /// Writers that have announced an imminent append (they may still be
    /// queued on the store's writer lock). The group-commit leader briefly
    /// holds its fsync while this is non-zero so those records share the
    /// barrier instead of each paying their own fsync.
    incoming: AtomicU64,
    /// How many records the leader expects to retire per fsync — the
    /// batch size the previous barriers achieved, decayed slowly. A
    /// leader whose pending count is below this waits (bounded) for the
    /// rest of the cohort: after a barrier the scheduler may not have
    /// woken the followers yet, but they are about to append again.
    expected_batch: AtomicU64,
    /// Duration of the most recent fsync, in microseconds. Sizes the
    /// batching window: waiting a few fsync-lengths for stragglers is
    /// profitable exactly in proportion to how slow the device is.
    last_fsync_us: AtomicU64,
    /// Wakes followers parked in [`Wal::commit`] the moment the durable
    /// watermark advances. `notify_all` releases the whole cohort at
    /// once, so the next batch assembles immediately; a sleep-poll would
    /// add the kernel's timer slack (~50 µs) to every commit.
    barrier_mx: StdMutex<()>,
    barrier_cv: Condvar,
    /// Wakes a batching leader when a record lands (`append`) or an
    /// announcement is withdrawn (`IncomingWrite::drop`), so the window
    /// closes the instant the cohort is complete instead of on the next
    /// poll tick.
    progress_mx: StdMutex<()>,
    progress_cv: Condvar,
}

/// RAII announcement of an imminent append (see [`Wal::announce`]).
/// Dropping it withdraws the announcement — after the append landed, or
/// on a validation bail-out that never appends.
pub struct IncomingWrite<'a> {
    wal: &'a Wal,
}

impl Drop for IncomingWrite<'_> {
    fn drop(&mut self) {
        self.wal.incoming.fetch_sub(1, Ordering::AcqRel);
        // Taken before notifying so the decrement cannot slip between a
        // leader's predicate check and its wait (a lost wake-up would
        // leave the leader holding its window open until the deadline).
        let _g = ignore_poison(self.wal.progress_mx.lock());
        self.wal.progress_cv.notify_one();
    }
}

/// What recovery found in the log.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Complete, CRC-valid records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail dropped (0 on a clean log).
    pub torn_bytes: u64,
}

impl Wal {
    fn new(backend: Backend, sync_on_append: bool) -> Wal {
        Wal {
            inner: Mutex::new(backend),
            sync_on_append,
            metrics: WalMetrics::default(),
            seq: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            group: Mutex::new(()),
            incoming: AtomicU64::new(0),
            expected_batch: AtomicU64::new(1),
            last_fsync_us: AtomicU64::new(0),
            barrier_mx: StdMutex::new(()),
            barrier_cv: Condvar::new(),
            progress_mx: StdMutex::new(()),
            progress_cv: Condvar::new(),
        }
    }

    /// In-memory log (tests, benchmarks).
    pub fn memory() -> Wal {
        Wal::new(Backend::Memory(Vec::new()), false)
    }

    /// File-backed log on the real file system. `sync_on_append` makes
    /// [`Wal::commit`] a durability barrier (group-commit fsync); off, it
    /// is a no-op and durability comes from checkpoints only.
    pub fn open(path: &Path, sync_on_append: bool) -> Result<Wal> {
        Wal::open_with(&RealVfs, path, sync_on_append)
    }

    /// File-backed log through the given [`Vfs`].
    pub fn open_with(vfs: &dyn Vfs, path: &Path, sync_on_append: bool) -> Result<Wal> {
        let file = vfs.open(path)?;
        Ok(Wal::new(Backend::File(file), sync_on_append))
    }

    /// Replaces the metric handles (called once at store open, before the
    /// log is shared, to fold the counters into the store's registry).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// The log's metric handles.
    pub fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// Appends one record and returns its sequence number (to be handed to
    /// [`Wal::commit`] once the caller wants a durability barrier). A
    /// transient device error (EIO) is absorbed by a bounded retry. No
    /// fsync happens here — appends from concurrent committers interleave
    /// freely while a group leader is syncing an earlier batch.
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        let mut inner = self.inner.lock();
        match &mut *inner {
            Backend::Memory(buf) => buf.extend_from_slice(&framed),
            Backend::File(f) => {
                with_retry(|| f.append(&framed))?;
            }
        }
        // Assigned while still holding the backend lock: sequence order is
        // exactly file order, so "fsync the file" retires a seq prefix.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        drop(inner);
        self.metrics.appends.inc();
        self.metrics.appended_bytes.add(framed.len() as u64);
        if self.sync_on_append {
            // A group-commit leader may be holding its batching window
            // open for exactly this record.
            let _g = ignore_poison(self.progress_mx.lock());
            self.progress_cv.notify_one();
        }
        Ok(seq)
    }

    /// Blocks until record `seq` is durable. No-op unless the log was
    /// opened with `sync_on_append`. Concurrent committers are batched:
    /// one leader fsyncs for everyone queued behind it, so N threads
    /// committing together pay ~1 fsync, not N. An fsync failure is
    /// surfaced unretried to whichever caller issued it — the record may
    /// not be durable and that caller must know.
    pub fn commit(&self, seq: u64) -> Result<()> {
        if !self.sync_on_append {
            return Ok(());
        }
        // Under a trace this is the committer's durability wait — the
        // dominant cost of a traced PUT/DELETE — whether this thread
        // leads the group fsync or rides another leader's barrier.
        let _op = txdb_base::obs::trace_op("wal.commit_us");
        loop {
            if self.durable.load(Ordering::Acquire) >= seq {
                return Ok(());
            }
            let Some(_leader) = self.group.try_lock() else {
                // A leader is assembling a batch or syncing; our record
                // rides its barrier. Park on the barrier condvar — the
                // leader's post-fsync `notify_all` releases the whole
                // cohort at once, so the next batch assembles
                // immediately. (Parking on the group mutex instead would
                // hand it down a serialized chain of wake-ups; a
                // sleep-poll would add the kernel's timer slack to every
                // commit.) The timeout is a lost-wake-up backstop only.
                let g = ignore_poison(self.barrier_mx.lock());
                if self.durable.load(Ordering::Acquire) < seq {
                    let _ =
                        ignore_poison(self.barrier_cv.wait_timeout(g, Duration::from_micros(500)));
                }
                continue;
            };
            if self.durable.load(Ordering::Acquire) >= seq {
                return Ok(()); // the previous leader's fsync covered us
            }
            // We are the leader. Before fsyncing, hold a bounded batching
            // window until the usual cohort has assembled: wait while
            // announced writers — queued on the store's writer lock,
            // about to append — land their records, or while fewer
            // records are pending than the last barrier retired (after a
            // barrier the scheduler may not have woken the other
            // committers yet; the moment they run they announce and
            // append again). A single-threaded committer never waits:
            // its expected batch is 1 and it is already pending. The
            // deadline scales with the device's recent fsync latency
            // (a slow device makes waiting proportionally more
            // profitable) and caps the added commit latency, so a
            // stalled or departed writer cannot hold durability hostage.
            // Window sizing: a couple of device fsyncs' worth of waiting
            // is always worth a shared barrier, plus time for the cohort
            // itself — on few cores the followers drain *serially*
            // through the store's writer lock, so assembling an N-record
            // batch inherently takes N apply-times.
            let expect = self.expected_batch.load(Ordering::Relaxed);
            let window =
                (self.last_fsync_us.load(Ordering::Relaxed) * 2).clamp(300, 3_000) + 100 * expect;
            let deadline = Instant::now() + Duration::from_micros(window);
            // Park between checks rather than sleep-polling: every append
            // and every withdrawn announcement notifies, so the window
            // closes the instant the cohort is complete. (Spinning with
            // `yield_now` is worse still — on one core it starves the
            // very followers the window is waiting for.)
            let mut g = ignore_poison(self.progress_mx.lock());
            loop {
                let pending =
                    self.seq.load(Ordering::Acquire) - self.durable.load(Ordering::Acquire);
                if self.incoming.load(Ordering::Acquire) == 0 && pending >= expect {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                g = ignore_poison(self.progress_cv.wait_timeout(g, deadline - now)).0;
            }
            drop(g);
            // One fsync retires every record appended so far, ours
            // included.
            self.sync_to_high(true)?;
        }
    }

    /// Announces a writer that is about to append — it may still be queued
    /// on a lock upstream of [`Wal::append`]. While announcements are
    /// outstanding, a group-commit leader briefly delays its fsync so the
    /// announced records join the batch. Hold the guard across the append;
    /// drop it before calling [`Wal::commit`].
    pub fn announce(&self) -> IncomingWrite<'_> {
        self.incoming.fetch_add(1, Ordering::AcqRel);
        IncomingWrite { wal: self }
    }

    /// Fsyncs the backend and advances the durable watermark to the
    /// highest sequence present in the file at lock time. Records the
    /// group-commit batch size when `batched` (i.e. when called on the
    /// commit path, not an explicit checkpoint sync).
    fn sync_to_high(&self, batched: bool) -> Result<()> {
        let mut inner = self.inner.lock();
        let high = self.seq.load(Ordering::Relaxed);
        if let Backend::File(f) = &mut *inner {
            let start = Instant::now();
            f.sync()?;
            let us = start.elapsed().as_micros() as u64;
            self.metrics.fsyncs.inc();
            self.metrics.fsync_us.record(us);
            self.last_fsync_us.store(us, Ordering::Relaxed);
        }
        drop(inner);
        // fetch_max: an interleaved explicit `sync()` may already have
        // advanced the watermark past our snapshot of `seq`.
        let prev = self.durable.fetch_max(high, Ordering::AcqRel);
        {
            // Release every follower parked in `commit` at once.
            let _g = ignore_poison(self.barrier_mx.lock());
            self.barrier_cv.notify_all();
        }
        if batched && high > prev {
            let achieved = high - prev;
            self.metrics.group_batch.record(achieved);
            // Track the cohort size: jump up instantly on a bigger batch,
            // decay by a quarter per barrier when it shrinks, so one
            // starved fsync does not collapse the window and a departed
            // cohort stops being waited for within a few barriers.
            let e = self.expected_batch.load(Ordering::Relaxed);
            let decayed = e.saturating_sub((e / 4).max(1)).max(1);
            self.expected_batch.store(achieved.max(decayed), Ordering::Relaxed);
        }
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        Ok(match &mut *inner {
            Backend::Memory(buf) => buf.clone(),
            Backend::File(f) => {
                let len = f.len()? as usize;
                let mut buf = vec![0u8; len];
                with_retry(|| f.read_at(0, &mut buf))?;
                buf
            }
        })
    }

    /// Reads every valid record from the start; tolerates (and reports) a
    /// torn tail.
    pub fn replay(&self) -> Result<ReplaySummary> {
        let data = self.read_all()?;
        let (records, valid_len) = scan(&data);
        Ok(ReplaySummary {
            records: records.into_iter().map(|r| r.to_vec()).collect(),
            torn_bytes: (data.len() - valid_len) as u64,
        })
    }

    /// Physically truncates a torn/corrupt tail, keeping every valid
    /// record. Returns the number of bytes removed (0 on a clean log).
    /// Used by `fsck --repair-tail`.
    pub fn repair_tail(&self) -> Result<u64> {
        let data = self.read_all()?;
        let (_, valid_len) = scan(&data);
        let torn = (data.len() - valid_len) as u64;
        if torn > 0 {
            let mut inner = self.inner.lock();
            match &mut *inner {
                Backend::Memory(buf) => buf.truncate(valid_len),
                Backend::File(f) => {
                    f.set_len(valid_len as u64)?;
                    f.sync()?;
                }
            }
        }
        Ok(torn)
    }

    /// Truncates the log (checkpoint completion). Every record appended so
    /// far is durable through the checkpoint's page flush, so the durable
    /// watermark jumps to the current sequence.
    pub fn reset(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        match &mut *inner {
            Backend::Memory(buf) => buf.clear(),
            Backend::File(f) => {
                f.set_len(0)?;
                f.sync()?;
            }
        }
        self.durable.fetch_max(self.seq.load(Ordering::Relaxed), Ordering::AcqRel);
        let _g = ignore_poison(self.barrier_mx.lock());
        self.barrier_cv.notify_all();
        Ok(())
    }

    /// Current size in bytes.
    pub fn size(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        Ok(match &mut *inner {
            Backend::Memory(buf) => buf.len() as u64,
            Backend::File(f) => f.len()?,
        })
    }

    /// Fsyncs the file backend and advances the durable watermark.
    pub fn sync(&self) -> Result<()> {
        self.sync_to_high(false)
    }

    /// Highest sequence known durable (tests, stats).
    pub fn durable_seq(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Last sequence assigned by `append`.
    pub fn last_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

/// Scans framed records from the start of `data`; returns the complete,
/// CRC-valid records and the byte length of that valid prefix.
fn scan(data: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let len =
            u32::from_le_bytes(data[pos..pos + 4].try_into().expect("fixed-width slice")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("fixed-width slice"));
        if pos + 8 + len > data.len() {
            break; // torn tail
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // corrupt from here on: treat as torn
        }
        records.push(payload);
        pos += 8 + len;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_replay_roundtrip() {
        let w = Wal::memory();
        w.append(b"one").unwrap();
        w.append(b"").unwrap();
        w.append(b"three three three").unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"".to_vec(), b"three three three".to_vec()]);
        assert_eq!(r.torn_bytes, 0);
    }

    #[test]
    fn reset_clears() {
        let w = Wal::memory();
        w.append(b"x").unwrap();
        w.reset().unwrap();
        assert_eq!(w.replay().unwrap().records.len(), 0);
        assert_eq!(w.size().unwrap(), 0);
    }

    #[test]
    fn torn_tail_detected_file() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, false).unwrap();
            w.append(b"good one").unwrap();
            w.append(b"good two").unwrap();
            w.sync().unwrap();
        }
        // Simulate a crash mid-append: append garbage half-record.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap(); // len=200 but no data
        }
        let w = Wal::open(&path, false).unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.torn_bytes, 6);
        // repair_tail physically removes the torn bytes.
        assert_eq!(w.repair_tail().unwrap(), 6);
        assert_eq!(w.replay().unwrap().torn_bytes, 0);
        assert_eq!(w.repair_tail().unwrap(), 0, "idempotent");
        assert_eq!(w.replay().unwrap().records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, true).unwrap();
            w.append(b"first").unwrap();
            w.append(b"second").unwrap();
        }
        // Flip a payload byte of the second record.
        {
            let mut data = std::fs::read(&path).unwrap();
            let n = data.len();
            data[n - 1] ^= 0xFF;
            std::fs::write(&path, data).unwrap();
        }
        let w = Wal::open(&path, false).unwrap();
        let r = w.replay().unwrap();
        assert_eq!(r.records, vec![b"first".to_vec()]);
        assert!(r.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-p-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let w = Wal::open(&path, false).unwrap();
            w.append(b"persist").unwrap();
            w.sync().unwrap();
        }
        let w = Wal::open(&path, false).unwrap();
        assert_eq!(w.replay().unwrap().records, vec![b"persist".to_vec()]);
        w.append(b"more").unwrap();
        assert_eq!(w.replay().unwrap().records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn commit_advances_durable_watermark() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-gc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let w = Wal::open(&path, true).unwrap();
        let s1 = w.append(b"a").unwrap();
        let s2 = w.append(b"b").unwrap();
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(w.durable_seq(), 0);
        w.commit(s2).unwrap();
        assert_eq!(w.durable_seq(), 2);
        let fsyncs = w.metrics().fsyncs.get();
        // Committing an already-durable seq is free.
        w.commit(s1).unwrap();
        assert_eq!(w.metrics().fsyncs.get(), fsyncs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn commit_noop_without_sync_on_append() {
        let w = Wal::memory();
        let seq = w.append(b"x").unwrap();
        w.commit(seq).unwrap();
        assert_eq!(w.durable_seq(), 0, "memory log never fsyncs");
    }

    #[test]
    fn reset_marks_everything_durable() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-rs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let w = Wal::open(&path, true).unwrap();
        let seq = w.append(b"checkpointed elsewhere").unwrap();
        w.reset().unwrap();
        let fsyncs = w.metrics().fsyncs.get();
        w.commit(seq).unwrap(); // must not fsync the truncated file again
        assert_eq!(w.metrics().fsyncs.get(), fsyncs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_commits_batch_fsyncs() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let w = Wal::open(&path, true).unwrap();
        const THREADS: usize = 8;
        const PER: usize = 25;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let w = &w;
                s.spawn(move || {
                    for i in 0..PER {
                        let seq = w.append(format!("t{t}r{i}").as_bytes()).unwrap();
                        w.commit(seq).unwrap();
                        assert!(w.durable_seq() >= seq);
                    }
                });
            }
        });
        assert_eq!(w.last_seq(), (THREADS * PER) as u64);
        assert_eq!(w.durable_seq(), (THREADS * PER) as u64);
        assert_eq!(w.replay().unwrap().records.len(), THREADS * PER);
        // Batching means strictly fewer fsyncs than commits, and the
        // histogram accounts for every retired sequence.
        assert!(w.metrics().fsyncs.get() <= (THREADS * PER) as u64);
        let snap = w.metrics().group_batch.snapshot();
        assert_eq!(snap.sum, (THREADS * PER) as u64, "batch sizes sum to total commits");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn announced_append_joins_the_leaders_fsync() {
        let dir = std::env::temp_dir().join(format!("txdb-wal-ann-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let w = Wal::open(&path, true).unwrap();
        // A follower announces, then appends while the leader is inside
        // its announce window: the leader's single fsync must retire both
        // records (batch of 2, one fsync).
        std::thread::scope(|s| {
            let announced = w.announce();
            let s1 = w.append(b"leader").unwrap();
            s.spawn(|| {
                let _announced = announced; // drops after the append lands
                let s2 = w.append(b"follower").unwrap();
                w.commit(s2).unwrap();
            });
            w.commit(s1).unwrap();
        });
        assert_eq!(w.durable_seq(), 2);
        let batches = w.metrics().group_batch.snapshot();
        assert_eq!(batches.sum, 2, "both records retired through group commit");
        // A stale announcement (writer that never appends) cannot block
        // durability: the window is deadline-bounded.
        let _stuck = w.announce();
        let s3 = w.append(b"third").unwrap();
        w.commit(s3).unwrap();
        assert_eq!(w.durable_seq(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

            /// Replaying an arbitrarily truncated and/or bit-flipped log
            /// never panics and never yields a record that was not fully
            /// appended: every returned record equals an appended payload
            /// (damage can only drop a suffix, not invent or alter data —
            /// modulo a CRC32 collision, which these inputs don't hit).
            #[test]
            fn damaged_log_never_yields_foreign_records(
                payloads in prop::collection::vec(
                    prop::collection::vec(any::<u8>(), 0..40), 0..12),
                cut in 0usize..600,
                flips in prop::collection::vec((0usize..600, 1u8..=255), 0..3),
            ) {
                let mut log = Vec::new();
                for p in &payloads {
                    log.extend_from_slice(&(p.len() as u32).to_le_bytes());
                    log.extend_from_slice(&crc32(p).to_le_bytes());
                    log.extend_from_slice(p);
                }
                let full_len = log.len();
                // Damage: truncate to `cut` bytes, then flip bits.
                log.truncate(cut.min(full_len));
                for (pos, xor) in &flips {
                    if let Some(b) = log.get_mut(*pos) {
                        *b ^= xor;
                    }
                }
                let (records, valid_len) = scan(&log);
                prop_assert!(valid_len <= log.len());
                // Every surviving record must literally be one of the
                // appended payloads.
                for r in &records {
                    prop_assert!(
                        payloads.iter().any(|p| p.as_slice() == *r),
                        "foreign record {:?}", r
                    );
                }
                // An undamaged log must replay every record in order.
                if flips.is_empty() && cut >= full_len {
                    let want: Vec<&[u8]> =
                        payloads.iter().map(|p| p.as_slice()).collect();
                    prop_assert_eq!(records, want);
                }
            }
        }
    }
}
