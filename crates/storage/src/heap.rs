//! Slotted-page record heap with overflow chains.
//!
//! Small records share slotted pages; records larger than a page's payload
//! area are stored as a chain of dedicated overflow pages (complete
//! document versions routinely exceed one page). A [`RecordId`] names a
//! record forever: `(page, slot)` for slotted records, `(first_page,
//! SLOT_BLOB)` for chained ones.
//!
//! ```text
//! slotted page:  [0x10][nslots u16][free_end u16][next_heap u64] slots… ...data
//!                slot = (offset u16, len u16); offset 0xFFFF = dead
//! overflow page: [0x11][next u64][chunk_len u16] data…
//! ```
//!
//! Slotted pages form a linked list through `next_heap` so the heap can
//! rebuild its free-space map on reopen. Deleting from a slotted page marks
//! the slot dead; insertion compacts a page when fragmentation blocks an
//! otherwise-fitting record.

use parking_lot::Mutex;
use txdb_base::{Error, Result};

use crate::buffer::BufferPool;
use crate::pager::{PageId, PAGE_SIZE};

const TYPE_SLOTTED: u8 = 0x10;
const TYPE_OVERFLOW: u8 = 0x11;

const HDR_NSLOTS: usize = 1;
const HDR_FREE_END: usize = 3;
const HDR_NEXT: usize = 5;
const HDR_SIZE: usize = 13;
const SLOT_SIZE: usize = 4;
const DEAD: u16 = 0xFFFF;

/// Slot number marking a blob (overflow-chained) record.
pub const SLOT_BLOB: u16 = 0xFFFF;

const OVF_NEXT: usize = 1;
const OVF_LEN: usize = 9;
const OVF_HDR: usize = 11;
const OVF_CAP: usize = PAGE_SIZE - OVF_HDR;

/// Largest record stored inline in a slotted page.
pub const MAX_INLINE: usize = PAGE_SIZE - HDR_SIZE - SLOT_SIZE - 16;

/// Persistent identifier of a heap record.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecordId {
    /// Page holding the record (or the first overflow page).
    pub page: PageId,
    /// Slot within the page, or [`SLOT_BLOB`].
    pub slot: u16,
}

impl RecordId {
    /// Encodes to 10 bytes (for storing record ids inside B+-tree values).
    pub fn to_bytes(self) -> [u8; 10] {
        let mut b = [0u8; 10];
        b[0..8].copy_from_slice(&self.page.0.to_le_bytes());
        b[8..10].copy_from_slice(&self.slot.to_le_bytes());
        b
    }

    /// Decodes from the 10-byte form.
    pub fn from_bytes(b: &[u8]) -> Result<RecordId> {
        if b.len() < 10 {
            return Err(Error::Corrupt("record id too short".into()));
        }
        Ok(RecordId {
            page: PageId(u64::from_le_bytes(b[0..8].try_into().expect("fixed-width slice"))),
            slot: u16::from_le_bytes(b[8..10].try_into().expect("fixed-width slice")),
        })
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(b[off..off + 2].try_into().expect("fixed-width slice"))
}
fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("fixed-width slice"))
}
fn put_u64(b: &mut [u8], off: usize, v: u64) {
    b[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

struct HeapState {
    /// Slotted pages and their *contiguous* free space.
    pages: Vec<(PageId, usize)>,
    head: PageId,
}

/// The record heap.
pub struct Heap {
    pool: std::sync::Arc<BufferPool>,
    root_slot: usize,
    state: Mutex<HeapState>,
}

impl Heap {
    /// Opens (or initializes) the heap whose head-page pointer lives in the
    /// pager root slot `root_slot`.
    pub fn open(pool: std::sync::Arc<BufferPool>, root_slot: usize) -> Result<Heap> {
        let head = pool.pager().root(root_slot);
        let mut pages = Vec::new();
        let mut cur = head;
        while !cur.is_null() {
            let frame = pool.get(cur)?;
            let page = frame.read();
            if page[0] != TYPE_SLOTTED {
                return Err(Error::Corrupt(format!("page {cur} is not a heap page")));
            }
            pages.push((cur, contiguous_free(&page)));
            cur = PageId(get_u64(&page, HDR_NEXT));
        }
        Ok(Heap { pool, root_slot, state: Mutex::new(HeapState { pages, head }) })
    }

    /// Inserts a record, returning its id.
    pub fn insert(&self, data: &[u8]) -> Result<RecordId> {
        if data.len() > MAX_INLINE {
            return self.insert_blob(data);
        }
        let need = data.len() + SLOT_SIZE;
        let mut state = self.state.lock();
        // First fit among known pages.
        for entry in state.pages.iter_mut() {
            if entry.1 >= need {
                let (page, free) = *entry;
                let slot = self.insert_into_page(page, data)?;
                entry.1 = free - need.min(free);
                // Recompute exactly (compaction may have changed things).
                let frame = self.pool.get(page)?;
                entry.1 = contiguous_free(&frame.read());
                return Ok(RecordId { page, slot });
            }
        }
        // Allocate a fresh slotted page, linked at the head.
        let (page, frame) = self.pool.allocate()?;
        {
            let mut buf = frame.write();
            buf[0] = TYPE_SLOTTED;
            put_u16(&mut buf, HDR_NSLOTS, 0);
            put_u16(&mut buf, HDR_FREE_END, PAGE_SIZE as u16);
            put_u64(&mut buf, HDR_NEXT, state.head.0);
        }
        self.pool.mark_dirty(page);
        state.head = page;
        self.pool.pager().set_root(self.root_slot, page);
        let slot = self.insert_into_page(page, data)?;
        let frame = self.pool.get(page)?;
        let free = contiguous_free(&frame.read());
        state.pages.push((page, free));
        Ok(RecordId { page, slot })
    }

    fn insert_into_page(&self, page: PageId, data: &[u8]) -> Result<u16> {
        let frame = self.pool.get(page)?;
        let mut buf = frame.write();
        let nslots = get_u16(&buf, HDR_NSLOTS) as usize;
        let mut free_end = get_u16(&buf, HDR_FREE_END) as usize;
        // Reuse a dead slot if any.
        let mut slot = None;
        for s in 0..nslots {
            if get_u16(&buf, HDR_SIZE + s * SLOT_SIZE) == DEAD {
                slot = Some(s);
                break;
            }
        }
        let (slot, new_slot) = match slot {
            Some(s) => (s, false),
            None => (nslots, true),
        };
        let dir_end = HDR_SIZE + (nslots + if new_slot { 1 } else { 0 }) * SLOT_SIZE;
        if free_end < dir_end + data.len() {
            // Try compaction before giving up.
            compact(&mut buf);
            free_end = get_u16(&buf, HDR_FREE_END) as usize;
            if free_end < dir_end + data.len() {
                return Err(Error::Corrupt("heap page overflow (free map out of sync)".into()));
            }
        }
        let off = free_end - data.len();
        buf[off..off + data.len()].copy_from_slice(data);
        put_u16(&mut buf, HDR_FREE_END, off as u16);
        put_u16(&mut buf, HDR_SIZE + slot * SLOT_SIZE, off as u16);
        put_u16(&mut buf, HDR_SIZE + slot * SLOT_SIZE + 2, data.len() as u16);
        if new_slot {
            put_u16(&mut buf, HDR_NSLOTS, (nslots + 1) as u16);
        }
        drop(buf);
        self.pool.mark_dirty(page);
        Ok(slot as u16)
    }

    fn insert_blob(&self, data: &[u8]) -> Result<RecordId> {
        let mut chunks = data.chunks(OVF_CAP);
        let first_chunk = chunks.next().unwrap_or(&[]);
        let (first, frame) = self.pool.allocate()?;
        write_overflow(&frame, first_chunk);
        self.pool.mark_dirty(first);
        let mut prev = first;
        for chunk in chunks {
            let (page, frame) = self.pool.allocate()?;
            write_overflow(&frame, chunk);
            self.pool.mark_dirty(page);
            // Link prev → page.
            let pf = self.pool.get(prev)?;
            put_u64(&mut pf.write(), OVF_NEXT, page.0);
            self.pool.mark_dirty(prev);
            prev = page;
        }
        Ok(RecordId { page: first, slot: SLOT_BLOB })
    }

    /// Reads a record.
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        if rid.slot == SLOT_BLOB {
            let mut out = Vec::new();
            let mut cur = rid.page;
            while !cur.is_null() {
                let frame = self.pool.get(cur)?;
                let buf = frame.read();
                if buf[0] != TYPE_OVERFLOW {
                    return Err(Error::InvalidRef(format!("{cur} is not an overflow page")));
                }
                let len = get_u16(&buf, OVF_LEN) as usize;
                out.extend_from_slice(&buf[OVF_HDR..OVF_HDR + len]);
                cur = PageId(get_u64(&buf, OVF_NEXT));
            }
            return Ok(out);
        }
        let frame = self.pool.get(rid.page)?;
        let buf = frame.read();
        if buf[0] != TYPE_SLOTTED {
            return Err(Error::InvalidRef(format!("{} is not a heap page", rid.page)));
        }
        let nslots = get_u16(&buf, HDR_NSLOTS);
        if rid.slot >= nslots {
            return Err(Error::InvalidRef(format!("no slot {rid}")));
        }
        let off = get_u16(&buf, HDR_SIZE + rid.slot as usize * SLOT_SIZE);
        if off == DEAD {
            return Err(Error::InvalidRef(format!("record {rid} was deleted")));
        }
        let len = get_u16(&buf, HDR_SIZE + rid.slot as usize * SLOT_SIZE + 2) as usize;
        Ok(buf[off as usize..off as usize + len].to_vec())
    }

    /// Deletes a record. Slotted space is reclaimed lazily (next compacting
    /// insert); overflow chains are freed immediately.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        if rid.slot == SLOT_BLOB {
            let mut cur = rid.page;
            while !cur.is_null() {
                let next = {
                    let frame = self.pool.get(cur)?;
                    let buf = frame.read();
                    if buf[0] != TYPE_OVERFLOW {
                        return Err(Error::InvalidRef(format!("{cur} is not overflow")));
                    }
                    PageId(get_u64(&buf, OVF_NEXT))
                };
                self.pool.free_page(cur)?;
                cur = next;
            }
            return Ok(());
        }
        let frame = self.pool.get(rid.page)?;
        {
            let mut buf = frame.write();
            let nslots = get_u16(&buf, HDR_NSLOTS);
            if buf[0] != TYPE_SLOTTED || rid.slot >= nslots {
                return Err(Error::InvalidRef(format!("no slot {rid}")));
            }
            let off = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
            if get_u16(&buf, off) == DEAD {
                return Err(Error::InvalidRef(format!("double delete of {rid}")));
            }
            put_u16(&mut buf, off, DEAD);
            put_u16(&mut buf, off + 2, 0);
        }
        self.pool.mark_dirty(rid.page);
        // Refresh the free estimate (compaction-aware free space).
        let free = total_free(&frame.read());
        let mut state = self.state.lock();
        if let Some(e) = state.pages.iter_mut().find(|(p, _)| *p == rid.page) {
            e.1 = free;
        }
        Ok(())
    }

    /// Replaces a record's contents, possibly relocating it. Returns the
    /// (new) record id.
    pub fn update(&self, rid: RecordId, data: &[u8]) -> Result<RecordId> {
        self.delete(rid)?;
        self.insert(data)
    }

    /// The slotted pages of the heap chain, in chain order. Best-effort:
    /// a referenced page is included even when it cannot be read (the
    /// chain stops following links there). Overflow pages are not listed
    /// — they are only reachable through record ids; see
    /// [`Heap::record_pages`]. Used by fsck's reachability sweep.
    pub fn pages(&self) -> Vec<PageId> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur = self.pool.pager().root(self.root_slot);
        while !cur.is_null() && seen.insert(cur.0) {
            out.push(cur);
            let Ok(frame) = self.pool.get(cur) else { break };
            let buf = frame.read();
            if buf[0] != TYPE_SLOTTED {
                break;
            }
            cur = PageId(get_u64(&buf, HDR_NEXT));
        }
        out
    }

    /// The pages a record occupies: the slotted page for inline records,
    /// the whole overflow chain for blobs. Best-effort: a referenced page
    /// is included even when it cannot be read, then the walk stops.
    pub fn record_pages(&self, rid: RecordId) -> Vec<PageId> {
        if rid.slot != SLOT_BLOB {
            return vec![rid.page];
        }
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur = rid.page;
        while !cur.is_null() && seen.insert(cur.0) {
            out.push(cur);
            let Ok(frame) = self.pool.get(cur) else { break };
            let buf = frame.read();
            if buf[0] != TYPE_OVERFLOW {
                break;
            }
            cur = PageId(get_u64(&buf, OVF_NEXT));
        }
        out
    }
}

fn write_overflow(frame: &crate::buffer::Frame, chunk: &[u8]) {
    let mut buf = frame.write();
    buf[0] = TYPE_OVERFLOW;
    put_u64(&mut buf, OVF_NEXT, 0);
    put_u16(&mut buf, OVF_LEN, chunk.len() as u16);
    buf[OVF_HDR..OVF_HDR + chunk.len()].copy_from_slice(chunk);
}

/// Contiguous free bytes (between slot directory and data region).
fn contiguous_free(buf: &[u8]) -> usize {
    let nslots = get_u16(buf, HDR_NSLOTS) as usize;
    let dir_end = HDR_SIZE + nslots * SLOT_SIZE;
    let free_end = get_u16(buf, HDR_FREE_END) as usize;
    free_end.saturating_sub(dir_end)
}

/// Free bytes counting dead-slot holes (what compaction can recover).
fn total_free(buf: &[u8]) -> usize {
    let nslots = get_u16(buf, HDR_NSLOTS) as usize;
    let dir_end = HDR_SIZE + nslots * SLOT_SIZE;
    let mut used = 0usize;
    for s in 0..nslots {
        let off = get_u16(buf, HDR_SIZE + s * SLOT_SIZE);
        if off != DEAD {
            used += get_u16(buf, HDR_SIZE + s * SLOT_SIZE + 2) as usize;
        }
    }
    PAGE_SIZE - dir_end - used
}

/// Best-effort sweep of every readable page for live heap records,
/// independent of any catalog or page-chain structure. Used by the deep
/// salvage path ([`crate::repo::DocumentStore::salvage_rebuild_catalog`])
/// when the pages that *organise* the heap — btrees, chain links — are
/// the ones corruption destroyed.
///
/// Pages are classified by their type byte and validated structurally
/// before anything is extracted: free pages (which start with a raw
/// next-free pointer) and damaged pages can wear any first byte, so a
/// page is only trusted as far as its own invariants hold. CRC-bad pages
/// are skipped. Overflow chains are reassembled from their heads — the
/// overflow pages no other overflow page points at — and a chain is
/// abandoned (not truncated) when a link is missing or malformed.
pub fn salvage_scan(pool: &BufferPool) -> Vec<(RecordId, Vec<u8>)> {
    let count = pool.pager().page_count();
    let mut slotted: Vec<PageId> = Vec::new();
    // overflow page → (next, chunk)
    let mut overflow: std::collections::HashMap<u64, (u64, Vec<u8>)> =
        std::collections::HashMap::new();
    for p in 1..count {
        let id = PageId(p);
        let Ok(frame) = pool.get(id) else {
            continue; // CRC mismatch or unreadable: nothing to trust here.
        };
        let buf = frame.read();
        match buf[0] {
            TYPE_SLOTTED => {
                let nslots = get_u16(&buf, HDR_NSLOTS) as usize;
                let free_end = get_u16(&buf, HDR_FREE_END) as usize;
                let dir_end = HDR_SIZE + nslots * SLOT_SIZE;
                if dir_end <= free_end && free_end <= PAGE_SIZE {
                    slotted.push(id);
                }
            }
            TYPE_OVERFLOW => {
                let next = get_u64(&buf, OVF_NEXT);
                let len = get_u16(&buf, OVF_LEN) as usize;
                if len <= OVF_CAP && next < count {
                    overflow.insert(p, (next, buf[OVF_HDR..OVF_HDR + len].to_vec()));
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for &page in &slotted {
        let Ok(frame) = pool.get(page) else { continue };
        let buf = frame.read();
        let nslots = get_u16(&buf, HDR_NSLOTS) as usize;
        let dir_end = HDR_SIZE + nslots * SLOT_SIZE;
        for s in 0..nslots {
            let off = get_u16(&buf, HDR_SIZE + s * SLOT_SIZE) as usize;
            let len = get_u16(&buf, HDR_SIZE + s * SLOT_SIZE + 2) as usize;
            if off == DEAD as usize || off < dir_end || off + len > PAGE_SIZE {
                continue;
            }
            out.push((RecordId { page, slot: s as u16 }, buf[off..off + len].to_vec()));
        }
    }
    let referenced: std::collections::HashSet<u64> =
        overflow.values().map(|(next, _)| *next).filter(|&n| n != 0).collect();
    for (&head, _) in overflow.iter() {
        if referenced.contains(&head) {
            continue;
        }
        let mut data = Vec::new();
        let mut cur = head;
        let mut intact = true;
        let mut hops = 0u64;
        while cur != 0 {
            match overflow.get(&cur) {
                Some((next, chunk)) => {
                    data.extend_from_slice(chunk);
                    cur = *next;
                }
                None => {
                    intact = false;
                    break;
                }
            }
            hops += 1;
            if hops > count {
                intact = false; // cycle through damaged links
                break;
            }
        }
        if intact {
            out.push((RecordId { page: PageId(head), slot: SLOT_BLOB }, data));
        }
    }
    out
}

/// Rewrites the data region dropping dead-slot holes; slot numbers are
/// preserved (record ids remain valid).
fn compact(buf: &mut [u8]) {
    let nslots = get_u16(buf, HDR_NSLOTS) as usize;
    let mut live: Vec<(usize, u16, u16)> = Vec::with_capacity(nslots); // (slot, off, len)
    for s in 0..nslots {
        let off = get_u16(buf, HDR_SIZE + s * SLOT_SIZE);
        let len = get_u16(buf, HDR_SIZE + s * SLOT_SIZE + 2);
        if off != DEAD {
            live.push((s, off, len));
        }
    }
    // Copy live records into a scratch area, then lay them back from the end.
    let scratch: Vec<(usize, Vec<u8>)> = live
        .iter()
        .map(|&(s, off, len)| (s, buf[off as usize..off as usize + len as usize].to_vec()))
        .collect();
    let mut cursor = PAGE_SIZE;
    for (s, data) in &scratch {
        cursor -= data.len();
        buf[cursor..cursor + data.len()].copy_from_slice(data);
        put_u16(buf, HDR_SIZE + s * SLOT_SIZE, cursor as u16);
        put_u16(buf, HDR_SIZE + s * SLOT_SIZE + 2, data.len() as u16);
    }
    put_u16(buf, HDR_FREE_END, cursor as u16);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    use std::sync::Arc;

    fn heap_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Pager::memory(), 64))
    }

    #[test]
    fn insert_get_small_records() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let a = heap.insert(b"hello").unwrap();
        let b = heap.insert(b"world!").unwrap();
        assert_eq!(heap.get(a).unwrap(), b"hello");
        assert_eq!(heap.get(b).unwrap(), b"world!");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_record() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let rid = heap.insert(b"").unwrap();
        assert_eq!(heap.get(rid).unwrap(), b"");
    }

    #[test]
    fn delete_then_get_fails_and_slot_reused() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let a = heap.insert(b"gone").unwrap();
        heap.delete(a).unwrap();
        assert!(heap.get(a).is_err());
        assert!(heap.delete(a).is_err());
        let b = heap.insert(b"back").unwrap();
        assert_eq!(b, a, "dead slot reused");
        assert_eq!(heap.get(b).unwrap(), b"back");
    }

    #[test]
    fn blob_roundtrip() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let rid = heap.insert(&data).unwrap();
        assert_eq!(rid.slot, SLOT_BLOB);
        assert_eq!(heap.get(rid).unwrap(), data);
    }

    #[test]
    fn blob_delete_frees_pages() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let data = vec![7u8; 30_000];
        let before = pool.pager().page_count();
        let rid = heap.insert(&data).unwrap();
        let mid = pool.pager().page_count();
        assert!(mid > before);
        heap.delete(rid).unwrap();
        // Freed pages are reused by the next blob.
        let rid2 = heap.insert(&data).unwrap();
        assert_eq!(pool.pager().page_count(), mid);
        assert_eq!(heap.get(rid2).unwrap(), data);
    }

    #[test]
    fn many_records_span_pages() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let mut rids = Vec::new();
        for i in 0..2000u32 {
            let data =
                format!("record number {i} with some padding {}", "x".repeat(i as usize % 50));
            rids.push((heap.insert(data.as_bytes()).unwrap(), data));
        }
        for (rid, data) in &rids {
            assert_eq!(heap.get(*rid).unwrap(), data.as_bytes());
        }
        assert!(pool.pager().page_count() > 5);
    }

    #[test]
    fn compaction_recovers_dead_space() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        // Fill one page with ~16 records of ~500 bytes.
        let mut rids = Vec::new();
        for i in 0..14 {
            rids.push(heap.insert(&vec![i as u8; 500]).unwrap());
        }
        let page = rids[0].page;
        // Delete every other record → dead holes.
        for rid in rids.iter().step_by(2) {
            heap.delete(*rid).unwrap();
        }
        // A 3000-byte record fits only after compaction of that page.
        let big = heap.insert(&vec![0xEE; 3000]).unwrap();
        assert_eq!(big.page, page, "compaction made room on the same page");
        // Survivors intact.
        for (i, rid) in rids.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(heap.get(*rid).unwrap(), vec![i as u8; 500]);
            }
        }
    }

    #[test]
    fn update_relocates() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let rid = heap.insert(b"small").unwrap();
        let big = vec![1u8; 20_000];
        let rid2 = heap.update(rid, &big).unwrap();
        assert_eq!(heap.get(rid2).unwrap(), big);
        assert!(heap.get(rid).is_err());
    }

    #[test]
    fn reopen_preserves_records() {
        let pool = heap_pool();
        let (a, b);
        {
            let heap = Heap::open(pool.clone(), 0).unwrap();
            a = heap.insert(b"persist me").unwrap();
            b = heap.insert(&vec![9u8; 25_000]).unwrap();
        }
        // Reopen over the same pool (state rebuilt from page chain).
        let heap = Heap::open(pool.clone(), 0).unwrap();
        assert_eq!(heap.get(a).unwrap(), b"persist me");
        assert_eq!(heap.get(b).unwrap(), vec![9u8; 25_000]);
        // And inserts still work.
        let c = heap.insert(b"more").unwrap();
        assert_eq!(heap.get(c).unwrap(), b"more");
    }

    #[test]
    fn salvage_scan_finds_live_records_only() {
        let pool = heap_pool();
        let heap = Heap::open(pool.clone(), 0).unwrap();
        let keep = heap.insert(b"keep me").unwrap();
        let gone = heap.insert(b"delete me").unwrap();
        let blob_data: Vec<u8> = (0..30_000u32).map(|i| (i % 241) as u8).collect();
        let blob = heap.insert(&blob_data).unwrap();
        let dead_blob = heap.insert(&vec![3u8; 20_000]).unwrap();
        heap.delete(gone).unwrap();
        heap.delete(dead_blob).unwrap();
        let found = salvage_scan(&pool);
        let get = |rid: RecordId| found.iter().find(|(r, _)| *r == rid).map(|(_, d)| d.clone());
        assert_eq!(get(keep).unwrap(), b"keep me");
        assert_eq!(get(blob).unwrap(), blob_data);
        assert_eq!(get(gone), None, "dead slot not salvaged");
        assert_eq!(get(dead_blob), None, "freed chain not salvaged");
    }

    #[test]
    fn record_id_bytes_roundtrip() {
        let rid = RecordId { page: PageId(123456789), slot: 42 };
        assert_eq!(RecordId::from_bytes(&rid.to_bytes()).unwrap(), rid);
        assert!(RecordId::from_bytes(&[1, 2, 3]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::pager::Pager;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[derive(Clone, Debug)]
    enum Op {
        /// Insert a record of the given size filled with the byte.
        Insert(usize, u8),
        /// Delete the nth live record (modulo count).
        Delete(usize),
        /// Update the nth live record (modulo count) to a new size.
        Update(usize, usize, u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0usize..20_000, any::<u8>()).prop_map(|(n, b)| Op::Insert(n, b)),
            1 => any::<usize>().prop_map(Op::Delete),
            1 => (any::<usize>(), 0usize..20_000, any::<u8>())
                .prop_map(|(i, n, b)| Op::Update(i, n, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Model-based: records survive arbitrary insert/delete/update
        /// interleavings, across the inline/blob size boundary.
        #[test]
        fn records_survive_churn(ops in prop::collection::vec(op_strategy(), 1..60)) {
            let pool = Arc::new(BufferPool::new(Pager::memory(), 256));
            let heap = Heap::open(pool, 0).unwrap();
            let mut live: Vec<(RecordId, Vec<u8>)> = Vec::new();
            let mut model: HashMap<RecordId, Vec<u8>> = HashMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(n, b) => {
                        let data = vec![b; n];
                        let rid = heap.insert(&data).unwrap();
                        prop_assert!(!model.contains_key(&rid), "rid reuse while live");
                        model.insert(rid, data.clone());
                        live.push((rid, data));
                    }
                    Op::Delete(i) if !live.is_empty() => {
                        let (rid, _) = live.remove(i % live.len());
                        heap.delete(rid).unwrap();
                        model.remove(&rid);
                    }
                    Op::Update(i, n, b) if !live.is_empty() => {
                        let idx = i % live.len();
                        let (rid, _) = live[idx];
                        let data = vec![b; n];
                        let new_rid = heap.update(rid, &data).unwrap();
                        model.remove(&rid);
                        model.insert(new_rid, data.clone());
                        live[idx] = (new_rid, data);
                    }
                    _ => {}
                }
                // Spot-check everything still reads back.
                for (rid, data) in &live {
                    prop_assert_eq!(&heap.get(*rid).unwrap(), data);
                }
            }
        }
    }
}
