//! B+-tree with byte-string keys and values.
//!
//! Used for the document catalog (name → doc id), the per-document
//! metadata directory (doc id → metadata record) and the persistent
//! EID-time index of §7.3.6. Keys and values are arbitrary byte strings up
//! to 1 KiB each; all comparisons are lexicographic, so numeric keys must
//! be encoded big-endian (the helpers in callers do).
//!
//! ```text
//! leaf:     [0x20][nkeys u16][next u64]  ([klen u16][vlen u16][key][val])*
//! internal: [0x21][nkeys u16][child0 u64]([klen u16][key][child u64])*
//! ```
//!
//! Each operation parses the affected page into a small vector, mutates it
//! and writes it back — simple, obviously correct, and fast enough behind
//! the buffer pool. Inserts split on overflow (including root splits);
//! deletes are lazy (no rebalancing — pages are reclaimed only when a leaf
//! becomes completely empty and is unlinked is *not* attempted; this is
//! the classic simple-engine trade-off and is documented behaviour).
//! Range scans walk the leaf chain.

use txdb_base::{Error, Result};

use crate::buffer::BufferPool;
use crate::pager::{PageId, PAGE_SIZE};

const TYPE_LEAF: u8 = 0x20;
const TYPE_INTERNAL: u8 = 0x21;

/// Maximum key length.
pub const MAX_KEY: usize = 1024;
/// Maximum value length.
pub const MAX_VAL: usize = 1024;

type Entry = (Vec<u8>, Vec<u8>);
/// Result of an insert descent: replaced old value + optional split
/// (separator key, new right page).
type InsertOutcome = (Option<Vec<u8>>, Option<(Vec<u8>, PageId)>);

enum Node {
    Leaf { entries: Vec<Entry>, next: PageId },
    Internal { child0: PageId, entries: Vec<(Vec<u8>, PageId)> },
}

fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(b[off..off + 2].try_into().expect("fixed-width slice"))
}
fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("fixed-width slice"))
}

fn parse(buf: &[u8]) -> Result<Node> {
    match buf[0] {
        TYPE_LEAF => {
            let nkeys = get_u16(buf, 1) as usize;
            let next = PageId(get_u64(buf, 3));
            let mut entries = Vec::with_capacity(nkeys);
            let mut off = 11;
            for _ in 0..nkeys {
                let klen = get_u16(buf, off) as usize;
                let vlen = get_u16(buf, off + 2) as usize;
                off += 4;
                entries.push((
                    buf[off..off + klen].to_vec(),
                    buf[off + klen..off + klen + vlen].to_vec(),
                ));
                off += klen + vlen;
            }
            Ok(Node::Leaf { entries, next })
        }
        TYPE_INTERNAL => {
            let nkeys = get_u16(buf, 1) as usize;
            let child0 = PageId(get_u64(buf, 3));
            let mut entries = Vec::with_capacity(nkeys);
            let mut off = 11;
            for _ in 0..nkeys {
                let klen = get_u16(buf, off) as usize;
                off += 2;
                let key = buf[off..off + klen].to_vec();
                off += klen;
                let child = PageId(get_u64(buf, off));
                off += 8;
                entries.push((key, child));
            }
            Ok(Node::Internal { child0, entries })
        }
        t => Err(Error::Corrupt(format!("bad btree page type {t:#x}"))),
    }
}

fn serialize(node: &Node, buf: &mut [u8]) {
    buf.fill(0);
    match node {
        Node::Leaf { entries, next } => {
            buf[0] = TYPE_LEAF;
            buf[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            buf[3..11].copy_from_slice(&next.0.to_le_bytes());
            let mut off = 11;
            for (k, v) in entries {
                buf[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                buf[off + 2..off + 4].copy_from_slice(&(v.len() as u16).to_le_bytes());
                off += 4;
                buf[off..off + k.len()].copy_from_slice(k);
                off += k.len();
                buf[off..off + v.len()].copy_from_slice(v);
                off += v.len();
            }
        }
        Node::Internal { child0, entries } => {
            buf[0] = TYPE_INTERNAL;
            buf[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            buf[3..11].copy_from_slice(&child0.0.to_le_bytes());
            let mut off = 11;
            for (k, c) in entries {
                buf[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                off += 2;
                buf[off..off + k.len()].copy_from_slice(k);
                off += k.len();
                buf[off..off + 8].copy_from_slice(&c.0.to_le_bytes());
                off += 8;
            }
        }
    }
}

fn node_size(node: &Node) -> usize {
    match node {
        Node::Leaf { entries, .. } => {
            11 + entries.iter().map(|(k, v)| 4 + k.len() + v.len()).sum::<usize>()
        }
        Node::Internal { entries, .. } => {
            11 + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
        }
    }
}

/// The B+-tree. Thread-safety: callers serialize writes (the document
/// store holds its own lock); concurrent reads are safe.
pub struct BTree {
    pool: std::sync::Arc<BufferPool>,
    root_slot: usize,
}

impl BTree {
    /// Opens the tree rooted at pager root slot `root_slot`, creating an
    /// empty root leaf on first use.
    pub fn open(pool: std::sync::Arc<BufferPool>, root_slot: usize) -> Result<BTree> {
        if pool.pager().root(root_slot).is_null() {
            let (id, frame) = pool.allocate()?;
            serialize(&Node::Leaf { entries: Vec::new(), next: PageId::NULL }, &mut frame.write());
            pool.mark_dirty(id);
            pool.pager().set_root(root_slot, id);
        }
        Ok(BTree { pool, root_slot })
    }

    fn root(&self) -> PageId {
        self.pool.pager().root(self.root_slot)
    }

    /// Every page the tree references, from the root down. Best-effort:
    /// a referenced page is included even when it cannot be read or
    /// parsed (the referencing node still claims it), the walk just does
    /// not descend past it. Leaf sibling links are not followed — every
    /// leaf is already reachable through its parent. Used by fsck's
    /// reachability sweep.
    pub fn pages(&self) -> Vec<PageId> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            if id.is_null() || !seen.insert(id.0) {
                continue;
            }
            out.push(id);
            let Ok(frame) = self.pool.get(id) else { continue };
            let Ok(node) = parse(&frame.read()) else { continue };
            if let Node::Internal { child0, entries } = node {
                stack.push(child0);
                stack.extend(entries.iter().map(|(_, c)| *c));
            }
        }
        out
    }

    fn load(&self, id: PageId) -> Result<Node> {
        let frame = self.pool.get(id)?;
        let node = parse(&frame.read())?;
        Ok(node)
    }

    fn store(&self, id: PageId, node: &Node) -> Result<()> {
        debug_assert!(node_size(node) <= PAGE_SIZE, "node overflow on store");
        let frame = self.pool.get(id)?;
        serialize(node, &mut frame.write());
        self.pool.mark_dirty(id);
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut cur = self.root();
        loop {
            match self.load(cur)? {
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .iter()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v.clone()));
                }
                Node::Internal { child0, entries } => {
                    cur = descend(child0, &entries, key);
                }
            }
        }
    }

    /// Inserts or replaces. Returns the previous value if the key existed.
    pub fn insert(&self, key: &[u8], val: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() > MAX_KEY || val.len() > MAX_VAL {
            return Err(Error::Unsupported(format!(
                "btree key/value too large ({}/{} bytes)",
                key.len(),
                val.len()
            )));
        }
        let root = self.root();
        let (old, split) = self.insert_rec(root, key, val)?;
        if let Some((sep, right)) = split {
            // Grow a new root.
            let (new_root, frame) = self.pool.allocate()?;
            serialize(
                &Node::Internal { child0: root, entries: vec![(sep, right)] },
                &mut frame.write(),
            );
            self.pool.mark_dirty(new_root);
            self.pool.pager().set_root(self.root_slot, new_root);
        }
        Ok(old)
    }

    fn insert_rec(&self, id: PageId, key: &[u8], val: &[u8]) -> Result<InsertOutcome> {
        match self.load(id)? {
            Node::Leaf { mut entries, next } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, val.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), val.to_vec()));
                        None
                    }
                };
                let node = Node::Leaf { entries, next };
                if node_size(&node) <= PAGE_SIZE {
                    self.store(id, &node)?;
                    return Ok((old, None));
                }
                // Split by size midpoint.
                let Node::Leaf { entries, next } = node else { unreachable!() };
                let cut = size_split_point(entries.iter().map(|(k, v)| 4 + k.len() + v.len()));
                let right_entries = entries[cut..].to_vec();
                let left_entries = entries[..cut].to_vec();
                let sep = right_entries[0].0.clone();
                let (right_id, rframe) = self.pool.allocate()?;
                serialize(&Node::Leaf { entries: right_entries, next }, &mut rframe.write());
                self.pool.mark_dirty(right_id);
                self.store(id, &Node::Leaf { entries: left_entries, next: right_id })?;
                Ok((old, Some((sep, right_id))))
            }
            Node::Internal { child0, mut entries } => {
                let (child, idx) = descend_idx(child0, &entries, key);
                let (old, split) = self.insert_rec(child, key, val)?;
                let Some((sep, new_page)) = split else {
                    return Ok((old, None));
                };
                // Insert the new separator after idx.
                let pos = match idx {
                    None => 0,
                    Some(i) => i + 1,
                };
                entries.insert(pos, (sep, new_page));
                let node = Node::Internal { child0, entries };
                if node_size(&node) <= PAGE_SIZE {
                    self.store(id, &node)?;
                    return Ok((old, None));
                }
                let Node::Internal { child0, entries } = node else { unreachable!() };
                let cut = size_split_point(entries.iter().map(|(k, _)| 2 + k.len() + 8));
                // entries[cut] moves up; right gets entries[cut+1..].
                let up = entries[cut].0.clone();
                let right_child0 = entries[cut].1;
                let right_entries = entries[cut + 1..].to_vec();
                let left_entries = entries[..cut].to_vec();
                let (right_id, rframe) = self.pool.allocate()?;
                serialize(
                    &Node::Internal { child0: right_child0, entries: right_entries },
                    &mut rframe.write(),
                );
                self.pool.mark_dirty(right_id);
                self.store(id, &Node::Internal { child0, entries: left_entries })?;
                Ok((old, Some((up, right_id))))
            }
        }
    }

    /// Deletes a key. Returns the removed value, if present. No
    /// rebalancing: underfull pages persist (space is reused by later
    /// inserts into the same key range).
    pub fn delete(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut cur = self.root();
        loop {
            match self.load(cur)? {
                Node::Leaf { mut entries, next } => {
                    match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => {
                            let (_, v) = entries.remove(i);
                            self.store(cur, &Node::Leaf { entries, next })?;
                            return Ok(Some(v));
                        }
                        Err(_) => return Ok(None),
                    }
                }
                Node::Internal { child0, entries } => {
                    cur = descend(child0, &entries, key);
                }
            }
        }
    }

    /// Iterates over all `(key, value)` pairs with `start <= key < end`
    /// (`end = None` means unbounded).
    pub fn range(&self, start: &[u8], end: Option<&[u8]>) -> Result<RangeIter<'_>> {
        // Descend to the leaf containing `start`.
        let mut cur = self.root();
        loop {
            match self.load(cur)? {
                Node::Leaf { entries, next } => {
                    let idx = entries
                        .iter()
                        .position(|(k, _)| k.as_slice() >= start)
                        .unwrap_or(entries.len());
                    return Ok(RangeIter {
                        tree: self,
                        entries,
                        next,
                        idx,
                        end: end.map(|e| e.to_vec()),
                    });
                }
                Node::Internal { child0, entries } => {
                    cur = descend(child0, &entries, start);
                }
            }
        }
    }

    /// Full scan.
    pub fn iter(&self) -> Result<RangeIter<'_>> {
        self.range(&[], None)
    }

    /// Number of entries (walks the leaf chain; for tests and stats).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        for e in self.iter()? {
            e?;
            n += 1;
        }
        Ok(n)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.iter()?.next().is_none())
    }
}

/// Picks a split index so both halves are under half the page budget-ish.
fn size_split_point(sizes: impl Iterator<Item = usize>) -> usize {
    let sizes: Vec<usize> = sizes.collect();
    let total: usize = sizes.iter().sum();
    let mut acc = 0;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if acc > total / 2 {
            // Keep at least one entry on each side.
            return i.clamp(1, sizes.len() - 1);
        }
    }
    sizes.len() / 2
}

fn descend(child0: PageId, entries: &[(Vec<u8>, PageId)], key: &[u8]) -> PageId {
    descend_idx(child0, entries, key).0
}

/// Returns the child to descend into and the index of the separator that
/// selected it (`None` = child0).
fn descend_idx(
    child0: PageId,
    entries: &[(Vec<u8>, PageId)],
    key: &[u8],
) -> (PageId, Option<usize>) {
    let mut chosen = (child0, None);
    for (i, (k, c)) in entries.iter().enumerate() {
        if key >= k.as_slice() {
            chosen = (*c, Some(i));
        } else {
            break;
        }
    }
    chosen
}

/// Iterator over a key range.
pub struct RangeIter<'t> {
    tree: &'t BTree,
    entries: Vec<Entry>,
    next: PageId,
    idx: usize,
    end: Option<Vec<u8>>,
}

impl Iterator for RangeIter<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.idx < self.entries.len() {
                let (k, v) = self.entries[self.idx].clone();
                self.idx += 1;
                if let Some(end) = &self.end {
                    if k.as_slice() >= end.as_slice() {
                        self.entries.clear();
                        self.next = PageId::NULL;
                        return None;
                    }
                }
                return Some(Ok((k, v)));
            }
            if self.next.is_null() {
                return None;
            }
            match self.tree.load(self.next) {
                Ok(Node::Leaf { entries, next }) => {
                    self.entries = entries;
                    self.next = next;
                    self.idx = 0;
                }
                Ok(_) => return Some(Err(Error::Corrupt("leaf chain hit internal page".into()))),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    use std::sync::Arc;

    fn tree_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Pager::memory(), 256))
    }

    #[test]
    fn insert_get_simple() {
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        assert_eq!(t.get(b"a").unwrap(), None);
        assert_eq!(t.insert(b"a", b"1").unwrap(), None);
        assert_eq!(t.insert(b"b", b"2").unwrap(), None);
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.insert(b"a", b"9").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"a").unwrap(), Some(b"9".to_vec()));
    }

    #[test]
    fn many_inserts_with_splits_model_based() {
        // Scrambled inserts (with collisions → overwrites) checked against
        // a std BTreeMap model.
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        let mut model = std::collections::BTreeMap::new();
        let n = 5000u32;
        for i in 0..n {
            let k = (i.wrapping_mul(2654435761)) % n;
            let key = format!("key{k:08}").into_bytes();
            let val = format!("val{}", i).into_bytes();
            let old_tree = t.insert(&key, &val).unwrap();
            let old_model = model.insert(key, val);
            assert_eq!(old_tree, old_model, "overwrite semantics match");
        }
        assert!(pool.pager().page_count() > 4, "splits happened");
        // Every model key retrievable with the model's value.
        for (k, v) in model.iter().step_by(37) {
            assert_eq!(t.get(k).unwrap().as_ref(), Some(v));
        }
        // Full scan is sorted, complete and equal to the model.
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = t.iter().unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(scanned.len(), model.len());
        assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
        for ((sk, sv), (mk, mv)) in scanned.iter().zip(model.iter()) {
            assert_eq!(sk, mk);
            assert_eq!(sv, mv);
        }
    }

    #[test]
    fn range_scan_bounds() {
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        for i in 0..100u32 {
            t.insert(&i.to_be_bytes(), b"x").unwrap();
        }
        let got: Vec<u32> = t
            .range(&10u32.to_be_bytes(), Some(&20u32.to_be_bytes()))
            .unwrap()
            .map(|e| u32::from_be_bytes(e.unwrap().0.try_into().expect("fixed-width slice")))
            .collect();
        assert_eq!(got, (10..20).collect::<Vec<u32>>());
        // Empty range.
        assert_eq!(t.range(&50u32.to_be_bytes(), Some(&50u32.to_be_bytes())).unwrap().count(), 0);
        // Open-ended.
        assert_eq!(t.range(&95u32.to_be_bytes(), None).unwrap().count(), 5);
    }

    #[test]
    fn delete_and_len() {
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        for i in 0..500u32 {
            t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.len().unwrap(), 500);
        for i in (0..500u32).step_by(2) {
            assert!(t.delete(&i.to_be_bytes()).unwrap().is_some());
        }
        assert_eq!(t.delete(&0u32.to_be_bytes()).unwrap(), None);
        assert_eq!(t.len().unwrap(), 250);
        for i in 0..500u32 {
            let want = if i % 2 == 1 { Some(i.to_le_bytes().to_vec()) } else { None };
            assert_eq!(t.get(&i.to_be_bytes()).unwrap(), want);
        }
    }

    #[test]
    fn large_values_split_correctly() {
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        for i in 0..100u32 {
            t.insert(&i.to_be_bytes(), &vec![i as u8; 900]).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(t.get(&i.to_be_bytes()).unwrap(), Some(vec![i as u8; 900]));
        }
    }

    #[test]
    fn oversized_rejected() {
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        assert!(t.insert(&vec![0; 2000], b"x").is_err());
        assert!(t.insert(b"x", &vec![0; 2000]).is_err());
    }

    #[test]
    fn empty_tree_behaviour() {
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        assert!(t.is_empty().unwrap());
        assert_eq!(t.iter().unwrap().count(), 0);
        assert_eq!(t.delete(b"nothing").unwrap(), None);
    }

    #[test]
    fn two_trees_coexist() {
        let pool = tree_pool();
        let a = BTree::open(pool.clone(), 1).unwrap();
        let b = BTree::open(pool.clone(), 2).unwrap();
        a.insert(b"k", b"from-a").unwrap();
        b.insert(b"k", b"from-b").unwrap();
        assert_eq!(a.get(b"k").unwrap(), Some(b"from-a".to_vec()));
        assert_eq!(b.get(b"k").unwrap(), Some(b"from-b".to_vec()));
    }

    #[test]
    fn reopen_same_slot_sees_data() {
        let pool = tree_pool();
        {
            let t = BTree::open(pool.clone(), 1).unwrap();
            for i in 0..200u32 {
                t.insert(&i.to_be_bytes(), b"v").unwrap();
            }
        }
        let t = BTree::open(pool.clone(), 1).unwrap();
        assert_eq!(t.len().unwrap(), 200);
    }

    #[test]
    fn mixed_key_lengths_ordering() {
        let pool = tree_pool();
        let t = BTree::open(pool.clone(), 1).unwrap();
        t.insert(b"a", b"1").unwrap();
        t.insert(b"aa", b"2").unwrap();
        t.insert(b"b", b"3").unwrap();
        t.insert(b"", b"4").unwrap();
        let keys: Vec<Vec<u8>> = t.iter().unwrap().map(|e| e.unwrap().0).collect();
        assert_eq!(keys, vec![b"".to_vec(), b"a".to_vec(), b"aa".to_vec(), b"b".to_vec()]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::pager::Pager;
    use proptest::prelude::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u16, u8),
        Delete(u16),
        Get(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
            1 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
            1 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Model-based: a random op sequence behaves like `BTreeMap`,
        /// and the final scan matches the model exactly.
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
            let pool = Arc::new(BufferPool::new(Pager::memory(), 64));
            let tree = BTree::open(pool, 1).unwrap();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        let key = k.to_be_bytes().to_vec();
                        // Values padded so splits actually happen.
                        let val = vec![*v; 64];
                        let old_t = tree.insert(&key, &val).unwrap();
                        let old_m = model.insert(key, val);
                        prop_assert_eq!(old_t, old_m);
                    }
                    Op::Delete(k) => {
                        let key = k.to_be_bytes().to_vec();
                        prop_assert_eq!(tree.delete(&key).unwrap(), model.remove(&key));
                    }
                    Op::Get(k) => {
                        let key = k.to_be_bytes().to_vec();
                        prop_assert_eq!(tree.get(&key).unwrap(), model.get(&key).cloned());
                    }
                }
            }
            let scanned: Vec<Entry> = tree.iter().unwrap().map(|e| e.unwrap()).collect();
            let expected: Vec<Entry> =
                model.into_iter().collect();
            prop_assert_eq!(scanned, expected);
        }
    }
}
