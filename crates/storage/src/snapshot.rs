//! Snapshot pins: reader-held guards against vacuum.
//!
//! Every committed version is immutable and timestamped, so a reader that
//! resolves its queries against one timestamp sees a perfectly consistent
//! snapshot *for free* — unless vacuum purges a version the reader still
//! needs. A [`SnapshotPin`] closes that hole: while a pin at timestamp `t`
//! is alive, [`SnapshotRegistry::clamp`] caps the vacuum horizon at `t`,
//! so no version valid at `t` can be purged. Pins are cheap (one mutexed
//! BTreeMap touch at create/drop, nothing on the read path itself) and
//! are held by streaming cursors for their whole lifetime.
//!
//! The registry exposes the number of live pins as the
//! `db.active_snapshots` gauge.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use txdb_base::obs::Gauge;
use txdb_base::Timestamp;

/// Refcounted set of pinned snapshot timestamps.
#[derive(Default)]
pub struct SnapshotRegistry {
    /// pinned timestamp (µs) → number of live pins at that timestamp.
    pins: Mutex<BTreeMap<u64, usize>>,
    /// `db.active_snapshots` (total live pins).
    active: Gauge,
}

impl SnapshotRegistry {
    /// A registry whose live-pin count drives `gauge`.
    pub fn new(gauge: Gauge) -> SnapshotRegistry {
        SnapshotRegistry { pins: Mutex::new(BTreeMap::new()), active: gauge }
    }

    /// Pins timestamp `at`: until the returned guard drops, vacuum will
    /// not purge any version still valid at `at`.
    pub fn pin(self: &Arc<Self>, at: Timestamp) -> SnapshotPin {
        let ts = at.micros();
        let mut pins = self.pins.lock();
        *pins.entry(ts).or_insert(0) += 1;
        let total: usize = pins.values().sum();
        self.active.set(total as u64);
        drop(pins);
        SnapshotPin { registry: Arc::clone(self), ts }
    }

    /// The oldest pinned timestamp, if any pin is alive.
    pub fn min_pinned(&self) -> Option<Timestamp> {
        self.pins.lock().keys().next().copied().map(Timestamp::from_micros)
    }

    /// Number of live pins.
    pub fn active(&self) -> usize {
        self.pins.lock().values().sum()
    }

    /// The vacuum horizon clamped below every live pin: purging strictly
    /// before the returned timestamp cannot remove a version that some
    /// pinned reader still needs (a version valid at pin `p` has validity
    /// end `> p`, and vacuum only purges versions whose end is `< horizon
    /// ≤ p`).
    pub fn clamp(&self, before: Timestamp) -> Timestamp {
        match self.min_pinned() {
            Some(p) if p < before => p,
            _ => before,
        }
    }

    fn unpin(&self, ts: u64) {
        let mut pins = self.pins.lock();
        if let Some(n) = pins.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&ts);
            }
        }
        let total: usize = pins.values().sum();
        self.active.set(total as u64);
    }
}

impl std::fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRegistry").field("active", &self.active()).finish()
    }
}

/// RAII guard for one pinned snapshot timestamp (see [`SnapshotRegistry`]).
/// Dropping it releases the pin.
#[derive(Debug)]
pub struct SnapshotPin {
    registry: Arc<SnapshotRegistry>,
    ts: u64,
}

impl SnapshotPin {
    /// The pinned timestamp.
    pub fn at(&self) -> Timestamp {
        Timestamp::from_micros(self.ts)
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        self.registry.unpin(self.ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(micros: u64) -> Timestamp {
        Timestamp::from_micros(micros)
    }

    #[test]
    fn pin_unpin_tracks_min_and_gauge() {
        let reg = Arc::new(SnapshotRegistry::default());
        assert_eq!(reg.min_pinned(), None);
        let a = reg.pin(ts(100));
        let b = reg.pin(ts(50));
        let b2 = reg.pin(ts(50));
        assert_eq!(reg.active(), 3);
        assert_eq!(reg.min_pinned(), Some(ts(50)));
        drop(b);
        assert_eq!(reg.min_pinned(), Some(ts(50)), "second pin at 50 still live");
        drop(b2);
        assert_eq!(reg.min_pinned(), Some(ts(100)));
        drop(a);
        assert_eq!(reg.min_pinned(), None);
        assert_eq!(reg.active(), 0);
    }

    #[test]
    fn clamp_caps_horizon_at_oldest_pin() {
        let reg = Arc::new(SnapshotRegistry::default());
        assert_eq!(reg.clamp(ts(500)), ts(500), "no pins: unchanged");
        let _pin = reg.pin(ts(200));
        assert_eq!(reg.clamp(ts(500)), ts(200), "clamped below the pin");
        assert_eq!(reg.clamp(ts(100)), ts(100), "already below: unchanged");
    }

    #[test]
    fn concurrent_pins_are_consistent() {
        let reg = Arc::new(SnapshotRegistry::default());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for i in 0..100 {
                        let p = reg.pin(ts(t * 1000 + i));
                        assert!(reg.active() >= 1);
                        drop(p);
                    }
                });
            }
        });
        assert_eq!(reg.active(), 0);
        assert_eq!(reg.min_pinned(), None);
    }
}
