//! LRU buffer pool over the pager.
//!
//! Frames are `Arc<RwLock<PageBuf>>`; callers hold the `Arc` while reading
//! or mutating and call [`BufferPool::mark_dirty`] after mutation. Eviction
//! follows a **no-steal** policy: only clean frames are evicted (dirty
//! frames persist in memory until [`BufferPool::flush_all`], the checkpoint
//! path), which keeps crash recovery simple — on-disk pages are always
//! consistent as of the last checkpoint and the WAL replays everything
//! after it.
//!
//! [`BufferStats`] counts logical reads, cache hits, physical reads and
//! writes; the experiment harness uses these counters as the I/O-cost
//! metric the paper discusses ("each delta read will involve a disk seek in
//! the worst case", §7.2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use txdb_base::obs::{Counter, Registry};
use txdb_base::Result;

use crate::pager::{PageBuf, PageId, Pager};

/// Counters exposed by the pool. All values are cumulative.
///
/// Each field is an [`obs::Counter`](txdb_base::obs::Counter) handle: a
/// pool built with [`BufferPool::with_metrics`] shares these atomics
/// with the store's [`Registry`] (names `buffer.*`), so `txdb metrics`
/// and the experiment harness read the very same values — there is no
/// second set of counters to keep in sync.
#[derive(Debug, Default)]
pub struct BufferStats {
    /// Logical page requests.
    pub gets: Counter,
    /// Requests satisfied from the cache.
    pub hits: Counter,
    /// Pages read from the pager (cache misses).
    pub physical_reads: Counter,
    /// Pages written back to the pager.
    pub physical_writes: Counter,
    /// Clean frames evicted.
    pub evictions: Counter,
}

impl BufferStats {
    /// Stats whose counters are registered in `reg` under `buffer.*`.
    pub fn registered(reg: &Registry) -> BufferStats {
        BufferStats {
            gets: reg.counter("buffer.gets"),
            hits: reg.counter("buffer.hits"),
            physical_reads: reg.counter("buffer.physical_reads"),
            physical_writes: reg.counter("buffer.physical_writes"),
            evictions: reg.counter("buffer.evictions"),
        }
    }

    /// Snapshot of (gets, hits, physical_reads, physical_writes, evictions).
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.gets.get(),
            self.hits.get(),
            self.physical_reads.get(),
            self.physical_writes.get(),
            self.evictions.get(),
        )
    }

    /// Resets all counters (used between experiment phases).
    pub fn reset(&self) {
        self.gets.reset();
        self.hits.reset();
        self.physical_reads.reset();
        self.physical_writes.reset();
        self.evictions.reset();
    }
}

/// A shared page frame.
pub type Frame = Arc<RwLock<PageBuf>>;

struct FrameMeta {
    frame: Frame,
    dirty: bool,
    last_used: u64,
}

/// The buffer pool.
pub struct BufferPool {
    pager: Pager,
    capacity: usize,
    frames: Mutex<HashMap<PageId, FrameMeta>>,
    tick: AtomicU64,
    /// I/O statistics.
    pub stats: BufferStats,
}

impl BufferPool {
    /// Wraps a pager with a cache of `capacity` pages and standalone
    /// (unregistered) counters.
    pub fn new(pager: Pager, capacity: usize) -> BufferPool {
        BufferPool::with_stats(pager, capacity, BufferStats::default())
    }

    /// Like [`BufferPool::new`] but with counters registered in `reg`
    /// under `buffer.*`.
    pub fn with_metrics(pager: Pager, capacity: usize, reg: &Registry) -> BufferPool {
        BufferPool::with_stats(pager, capacity, BufferStats::registered(reg))
    }

    fn with_stats(pager: Pager, capacity: usize, stats: BufferStats) -> BufferPool {
        BufferPool {
            pager,
            capacity: capacity.max(1),
            frames: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            stats,
        }
    }

    /// Direct access to the underlying pager (allocation, roots, sync).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    fn touch(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Fetches a page frame, reading it from the pager on a miss.
    pub fn get(&self, id: PageId) -> Result<Frame> {
        self.stats.gets.inc();
        let mut frames = self.frames.lock();
        if let Some(meta) = frames.get_mut(&id) {
            meta.last_used = self.touch();
            self.stats.hits.inc();
            return Ok(meta.frame.clone());
        }
        self.stats.physical_reads.inc();
        let buf = self.pager.read_page(id)?;
        let frame: Frame = Arc::new(RwLock::new(buf));
        self.evict_if_needed(&mut frames)?;
        frames
            .insert(id, FrameMeta { frame: frame.clone(), dirty: false, last_used: self.touch() });
        Ok(frame)
    }

    /// Allocates a fresh page and returns its zeroed frame, already cached
    /// and marked dirty.
    ///
    /// The free-list pop reads the next-free pointer *through the pool*:
    /// a page freed via [`BufferPool::free_page`] exists only as an
    /// unflushed dirty frame until the next checkpoint, so the pointer
    /// must not be read from disk.
    pub fn allocate(&self) -> Result<(PageId, Frame)> {
        let head = self.pager.free_head();
        let id = if head != 0 {
            let head_frame = self.get(PageId(head))?;
            let next =
                u64::from_le_bytes(head_frame.read()[0..8].try_into().expect("fixed-width slice"));
            self.pager.pop_free(next)
        } else {
            self.pager.allocate()?
        };
        let frame: Frame = Arc::new(RwLock::new(crate::pager::new_page()));
        let mut frames = self.frames.lock();
        self.evict_if_needed(&mut frames)?;
        frames.insert(id, FrameMeta { frame: frame.clone(), dirty: true, last_used: self.touch() });
        Ok((id, frame))
    }

    /// Marks a cached page dirty (call after mutating its frame).
    pub fn mark_dirty(&self, id: PageId) {
        let mut frames = self.frames.lock();
        if let Some(meta) = frames.get_mut(&id) {
            meta.dirty = true;
        }
    }

    /// Frees a page: pushes it onto the pager's free list and installs
    /// the free-list image as a *dirty frame* instead of writing it to
    /// the file immediately. The image reaches disk with the next
    /// checkpoint flush, under double-write journal protection — an
    /// unjournaled in-place overwrite of a live page would reopen the
    /// torn-page hole the journal exists to close.
    pub fn free_page(&self, id: PageId) -> Result<()> {
        let image = self.pager.free_deferred(id)?;
        let mut frames = self.frames.lock();
        match frames.get_mut(&id) {
            Some(meta) => {
                *meta.frame.write() = image;
                meta.dirty = true;
                meta.last_used = self.touch();
            }
            None => {
                let last_used = self.touch();
                frames.insert(
                    id,
                    FrameMeta { frame: Arc::new(RwLock::new(image)), dirty: true, last_used },
                );
            }
        }
        Ok(())
    }

    /// Snapshot of every dirty frame (page id + a copy of its current
    /// image) in ascending page order — the batch the checkpoint journal
    /// seals before [`BufferPool::flush_all`] overwrites home locations.
    pub fn dirty_pages(&self) -> Vec<(PageId, PageBuf)> {
        let frames = self.frames.lock();
        let mut out: Vec<(PageId, PageBuf)> = frames
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|(id, m)| (*id, m.frame.read().clone()))
            .collect();
        out.sort_by_key(|(id, _)| id.0);
        out
    }

    /// Writes every dirty frame back and syncs the pager — the checkpoint
    /// primitive.
    pub fn flush_all(&self) -> Result<()> {
        let mut frames = self.frames.lock();
        for (id, meta) in frames.iter_mut() {
            if meta.dirty {
                self.stats.physical_writes.inc();
                self.pager.write_page(*id, &meta.frame.read())?;
                meta.dirty = false;
            }
        }
        drop(frames);
        self.pager.sync()
    }

    /// Number of cached frames (for tests).
    pub fn cached(&self) -> usize {
        self.frames.lock().len()
    }

    fn evict_if_needed(&self, frames: &mut HashMap<PageId, FrameMeta>) -> Result<()> {
        while frames.len() >= self.capacity {
            // Evict the least-recently-used *clean* frame. Dirty frames are
            // never stolen; if everything is dirty the pool grows past
            // capacity until the next flush.
            let victim = frames
                .iter()
                .filter(|(_, m)| !m.dirty)
                .min_by_key(|(_, m)| m.last_used)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    frames.remove(&id);
                    self.stats.evictions.inc();
                }
                None => break,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PAGE_SIZE;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Pager::memory(), cap)
    }

    #[test]
    fn get_caches_and_hits() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.write()[0] = 7;
        p.mark_dirty(id);
        let again = p.get(id).unwrap();
        assert_eq!(again.read()[0], 7);
        let (gets, hits, ..) = p.stats.snapshot();
        assert_eq!(gets, 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        let p = pool(2);
        let (a, fa) = p.allocate().unwrap();
        fa.write()[0] = 1;
        p.mark_dirty(a);
        // Blow through capacity with clean reads.
        let mut ids = Vec::new();
        for _ in 0..6 {
            let (id, f) = p.allocate().unwrap();
            f.write()[1] = 2;
            p.mark_dirty(id);
            ids.push(id);
        }
        // All are dirty → nothing evicted, pool grew.
        assert!(p.cached() >= 7);
        p.flush_all().unwrap();
        // After flush everything is clean; further allocations evict the
        // clean frames, but the freshly allocated frames are dirty and
        // cannot be stolen — the pool converges to the dirty working set.
        for _ in 0..4 {
            p.allocate().unwrap();
        }
        assert!(p.cached() <= 4, "clean frames evicted: {}", p.cached());
        let (.., evictions) = p.stats.snapshot();
        assert!(evictions > 0);
        // Evicted dirty-then-flushed page still readable from pager.
        let back = p.get(a).unwrap();
        assert_eq!(back.read()[0], 1);
    }

    #[test]
    fn flush_writes_back() {
        let p = pool(4);
        let (id, f) = p.allocate().unwrap();
        f.write()[PAGE_SIZE - 1] = 99;
        p.mark_dirty(id);
        p.flush_all().unwrap();
        // Bypass the cache: read from pager directly.
        assert_eq!(p.pager().read_page(id).unwrap()[PAGE_SIZE - 1], 99);
        let (.., writes, _) = p.stats.snapshot();
        assert!(writes >= 1);
    }

    #[test]
    fn free_page_defers_and_reallocates_through_pool() {
        let p = pool(8);
        let (a, _) = p.allocate().unwrap();
        let (b, _) = p.allocate().unwrap();
        p.free_page(a).unwrap();
        p.free_page(b).unwrap();
        // The free-list images are dirty frames, not file writes: the
        // pool pops them correctly before any flush.
        let (c, _) = p.allocate().unwrap();
        let (d, _) = p.allocate().unwrap();
        let mut got = [c, d];
        got.sort();
        let mut want = [a, b];
        want.sort();
        assert_eq!(got, want, "free list reused through the pool");
        // And the cycle survives a flush in the middle.
        p.free_page(c).unwrap();
        p.flush_all().unwrap();
        let (e, _) = p.allocate().unwrap();
        assert_eq!(e, c);
    }

    #[test]
    fn dirty_pages_snapshot_matches_flush_set() {
        let p = pool(4);
        let (a, fa) = p.allocate().unwrap();
        fa.write()[0] = 1;
        p.mark_dirty(a);
        p.flush_all().unwrap();
        assert!(p.dirty_pages().is_empty(), "flush cleans every frame");
        let back = p.get(a).unwrap();
        back.write()[1] = 2;
        p.mark_dirty(a);
        let dirty = p.dirty_pages();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, a);
        assert_eq!(dirty[0].1[1], 2, "snapshot carries the live image");
    }

    #[test]
    fn stats_reset() {
        let p = pool(4);
        let (id, _) = p.allocate().unwrap();
        let _ = p.get(id).unwrap();
        p.stats.reset();
        assert_eq!(p.stats.snapshot(), (0, 0, 0, 0, 0));
    }

    #[test]
    fn lru_order_evicts_oldest_clean() {
        let p = pool(3);
        let (a, _) = p.allocate().unwrap();
        let (b, _) = p.allocate().unwrap();
        p.flush_all().unwrap(); // make clean
        let _ = p.get(a).unwrap(); // refresh a
                                   // Insert two more to force eviction of b (oldest clean).
        let (_c, _) = p.allocate().unwrap();
        let (_d, _) = p.allocate().unwrap();
        p.flush_all().unwrap();
        let before = p.stats.snapshot().2;
        let _ = p.get(b).unwrap(); // must be a physical read
        let after = p.stats.snapshot().2;
        assert_eq!(after, before + 1, "b was evicted");
    }
}
