//! The versioned document repository — the paper's §7.1 storage model.
//!
//! "We assume that document versions are stored as a complete current
//! version and previous versions stored in a chain of completed deltas.
//! […] Each delta will in fact be stored as a separate XML document. […]
//! The delta documents are indexed in a delta index. Each version is
//! numbered, so that we do not have to store the timestamps in the text
//! indexes etc. For each numbered delta, we store the timestamp of the
//! actual version in the delta index."
//!
//! Concretely, a named document owns:
//!
//! * a **current version** record (binary tree codec, XIDs + timestamps),
//! * a **version entry** per version — the *delta index*: the version's
//!   commit timestamp, the record id of the completed delta leading *to*
//!   that version (stored as XML text, per the paper), an optional
//!   **snapshot** record (complete materialisation — §7.3.3's "possibility
//!   of snapshot versions", created every `snapshot_every` versions), and a
//!   tombstone flag (the version is a deletion; the document is invalid
//!   from that timestamp until a later put resurrects it),
//! * the document's XID allocation high-water mark (XIDs are never reused,
//!   §3.2).
//!
//! Every mutation is WAL-logged before touching pages; recovery replays the
//! tail deterministically (the diff is deterministic, so replay reproduces
//! identical XIDs, deltas and records).

use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use txdb_base::obs::{Counter, EventValue, JsonLinesSink, Registry};
use txdb_base::{DocId, Error, Interval, Result, Timestamp, VersionId, Xid};
use txdb_delta::{delta_from_xml, delta_to_xml, diff_trees, Delta};
use txdb_xml::codec::{decode_tree, encode_tree, write_varint};
use txdb_xml::parse::{parse_with, ParseOptions};
use txdb_xml::tree::Tree;

use crate::btree::BTree;
use crate::buffer::{BufferPool, BufferStats};
use crate::ckpt::{CheckpointInfo, CheckpointStore};
use crate::heap::{Heap, RecordId};
use crate::pager::Pager;
use crate::snapshot::SnapshotRegistry;
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{Wal, WalMetrics};

/// Pager root-slot assignments for store components.
pub mod roots {
    /// Heap head page.
    pub const HEAP: usize = 0;
    /// Catalog B+-tree (document name → doc id).
    pub const CATALOG: usize = 1;
    /// Directory B+-tree (doc id → metadata record id).
    pub const DOCS: usize = 2;
    /// Next document id counter (stored as a raw u64 in the slot).
    pub const NEXT_DOC: usize = 3;
    /// Reserved for the persistent EID-time index (txdb-index).
    pub const EID_INDEX: usize = 4;
    /// Reserved for persisted full-text-index metadata (txdb-index).
    pub const FTI_META: usize = 5;
    /// Checkpoint generation counter (stored as a raw u64 in the slot),
    /// fencing the double-write journal: a sealed journal whose
    /// generation is at or below the durable header's value has already
    /// been applied, and recovery skips (and retires) it.
    pub const CKPT_GEN: usize = 6;
}

/// Store configuration.
#[derive(Clone)]
pub struct StoreOptions {
    /// Directory for `data.db` + `wal.log`; `None` = fully in-memory.
    pub path: Option<PathBuf>,
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
    /// Materialize a complete snapshot every `k` versions (§7.3.3);
    /// `None` = snapshots disabled (pure delta chain).
    pub snapshot_every: Option<u32>,
    /// Fsync the WAL on every append.
    pub wal_sync: bool,
    /// Byte budget of the materialized-version cache (reconstructed trees
    /// keyed by `(doc, version)`); `0` disables it. The cache turns the
    /// repeated backward-delta reconstructions of `DocHistory` /
    /// `TPatternScanAll` into lookups without changing any result — only
    /// the delta-application counts reported by `*_counted` methods drop.
    pub cache_bytes: usize,
    /// File-system implementation for the file backend; `None` = the
    /// real file system. The fault-injection harness passes a
    /// [`crate::vfs::FaultyVfs`] here.
    pub vfs: Option<Arc<dyn Vfs>>,
    /// Metrics registry shared with the caller; `None` = the store
    /// creates a private one (reachable via [`DocumentStore::metrics`]).
    /// Buffer-pool, WAL, version-cache, reconstruction and recovery
    /// counters all register here.
    pub metrics: Option<Arc<Registry>>,
    /// Append trace events (spans, recovery fallbacks) as JSON lines to
    /// this file; `None` = tracing disabled (metrics still collected).
    pub event_log: Option<PathBuf>,
}

impl std::fmt::Debug for StoreOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreOptions")
            .field("path", &self.path)
            .field("buffer_pages", &self.buffer_pages)
            .field("snapshot_every", &self.snapshot_every)
            .field("wal_sync", &self.wal_sync)
            .field("cache_bytes", &self.cache_bytes)
            .field("vfs", &self.vfs.as_ref().map(|_| "custom"))
            .field("metrics", &self.metrics.as_ref().map(|_| "shared"))
            .field("event_log", &self.event_log)
            .finish()
    }
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            path: None,
            buffer_pages: 4096,
            snapshot_every: None,
            wal_sync: false,
            cache_bytes: 8 << 20,
            vfs: None,
            metrics: None,
            event_log: None,
        }
    }
}

/// Why/how a version exists — drives reconstruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VersionKind {
    /// A stored (or initial) content version.
    Content,
    /// A deletion: the document is invalid from this entry's timestamp
    /// until the next entry (if any).
    Tombstone,
    /// A version whose payload was removed by [`DocumentStore::vacuum`]:
    /// the entry (and its timestamp) remains so version numbering stays
    /// dense, but the version can no longer be reconstructed or selected.
    Purged,
}

/// One row of a document's delta index (§7.1).
#[derive(Clone, Debug)]
pub struct VersionEntry {
    /// The dense version number.
    pub version: VersionId,
    /// Commit (transaction) timestamp of the version.
    pub ts: Timestamp,
    /// Content or tombstone.
    pub kind: VersionKind,
    /// Record holding the completed delta *into* this version (absent for
    /// the first version and for tombstones).
    pub delta_rid: Option<RecordId>,
    /// Record holding a complete snapshot of this version, if materialized.
    pub snapshot_rid: Option<RecordId>,
}

/// Magic prefix of every encoded metadata record. Together with the
/// embedded document id it makes metadata **self-identifying**: a raw
/// heap sweep can find every document without consulting the catalog —
/// the basis of [`DocumentStore::salvage_rebuild_catalog`].
const META_MAGIC: [u8; 2] = [0xDC, 0x01];

#[derive(Clone, Debug)]
struct DocMeta {
    doc: DocId,
    name: String,
    next_xid: Xid,
    current_rid: Option<RecordId>,
    entries: Vec<VersionEntry>,
}

impl DocMeta {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 32);
        out.extend_from_slice(&META_MAGIC);
        write_varint(&mut out, self.doc.0 as u64);
        write_varint(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        write_varint(&mut out, self.next_xid.0);
        match self.current_rid {
            Some(rid) => {
                out.push(1);
                out.extend_from_slice(&rid.to_bytes());
            }
            None => out.push(0),
        }
        write_varint(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            write_varint(&mut out, e.ts.micros());
            out.push(match e.kind {
                VersionKind::Content => 0,
                VersionKind::Tombstone => 1,
                VersionKind::Purged => 2,
            });
            match e.delta_rid {
                Some(rid) => {
                    out.push(1);
                    out.extend_from_slice(&rid.to_bytes());
                }
                None => out.push(0),
            }
            match e.snapshot_rid {
                Some(rid) => {
                    out.push(1);
                    out.extend_from_slice(&rid.to_bytes());
                }
                None => out.push(0),
            }
        }
        out
    }

    fn decode(mut b: &[u8]) -> Result<DocMeta> {
        fn varint(b: &mut &[u8]) -> Result<u64> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let (&byte, rest) =
                    b.split_first().ok_or_else(|| Error::Corrupt("truncated doc meta".into()))?;
                *b = rest;
                v |= ((byte & 0x7f) as u64) << shift;
                if byte & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
                if shift >= 64 {
                    return Err(Error::Corrupt("varint overflow in doc meta".into()));
                }
            }
        }
        fn take<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
            if b.len() < n {
                return Err(Error::Corrupt("truncated doc meta".into()));
            }
            let (head, rest) = b.split_at(n);
            *b = rest;
            Ok(head)
        }
        fn opt_rid(b: &mut &[u8]) -> Result<Option<RecordId>> {
            match take(b, 1)?[0] {
                0 => Ok(None),
                1 => Ok(Some(RecordId::from_bytes(take(b, 10)?)?)),
                x => Err(Error::Corrupt(format!("bad rid flag {x}"))),
            }
        }
        let b = &mut b;
        if take(b, 2)? != META_MAGIC {
            return Err(Error::Corrupt("bad doc meta magic".into()));
        }
        let doc = DocId(
            u32::try_from(varint(b)?)
                .map_err(|_| Error::Corrupt("doc id overflow in doc meta".into()))?,
        );
        let name_len = varint(b)? as usize;
        let name = String::from_utf8(take(b, name_len)?.to_vec())
            .map_err(|_| Error::Corrupt("bad utf8 in doc name".into()))?;
        let next_xid = Xid(varint(b)?);
        let current_rid = opt_rid(b)?;
        let n = varint(b)? as usize;
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let ts = Timestamp::from_micros(varint(b)?);
            let kind = match take(b, 1)?[0] {
                0 => VersionKind::Content,
                1 => VersionKind::Tombstone,
                2 => VersionKind::Purged,
                x => return Err(Error::Corrupt(format!("bad version kind {x}"))),
            };
            let delta_rid = opt_rid(b)?;
            let snapshot_rid = opt_rid(b)?;
            entries.push(VersionEntry {
                version: VersionId(i as u32),
                ts,
                kind,
                delta_rid,
                snapshot_rid,
            });
        }
        Ok(DocMeta { doc, name, next_xid, current_rid, entries })
    }

    fn last(&self) -> Option<&VersionEntry> {
        self.entries.last()
    }

    fn is_deleted(&self) -> bool {
        matches!(self.last().map(|e| e.kind), Some(VersionKind::Tombstone))
    }

    /// The last content (non-tombstone) version.
    fn last_content(&self) -> Option<&VersionEntry> {
        self.entries.iter().rev().find(|e| e.kind == VersionKind::Content)
    }
}

/// Outcome of a [`DocumentStore::put`].
#[derive(Debug)]
pub struct PutResult {
    /// The document.
    pub doc: DocId,
    /// The version this put produced (or the unchanged current version).
    pub version: VersionId,
    /// The put's transaction timestamp.
    pub ts: Timestamp,
    /// True when the document did not exist before (first version).
    pub created: bool,
    /// False when the new content was identical to the current version and
    /// no new version was recorded.
    pub changed: bool,
    /// The delta from the previous version (None for first versions,
    /// unchanged puts and resurrections-from-tombstone replays).
    pub delta: Option<Delta>,
    /// The previous current tree (for index maintenance).
    pub old_tree: Option<Tree>,
    /// The stored new current tree, XIDs assigned.
    pub new_tree: Tree,
}

/// Outcome of a [`DocumentStore::delete`].
#[derive(Debug)]
pub struct DeleteResult {
    /// The document.
    pub doc: DocId,
    /// The tombstone's version number.
    pub version: VersionId,
    /// Deletion timestamp.
    pub ts: Timestamp,
    /// The tree that was current before deletion (for index maintenance).
    pub old_tree: Tree,
}

/// What recovery did at open time.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// WAL records replayed.
    pub replayed: usize,
    /// WAL records that could not be applied (logically invalid — e.g.
    /// written by a buggy client version) and were skipped. Structural
    /// corruption still fails the open.
    pub skipped: usize,
    /// Torn bytes dropped from the WAL tail.
    pub torn_bytes: u64,
    /// `Some(reason)` when recovery hit corruption beyond the torn tail
    /// and the store opened in read-only salvage mode: surviving data is
    /// readable, mutations return [`Error::ReadOnly`], and the WAL is
    /// preserved for diagnosis (`fsck` / `repair_wal_tail`).
    pub salvage: Option<String>,
    /// Document chains that failed to replay into the in-memory indexes
    /// during a salvage-mode open (filled in by the database layer).
    /// Those documents stay readable through the store but are invisible
    /// to index-backed queries until repaired.
    pub unindexed_chains: usize,
    /// How the persisted index checkpoint participated in this open
    /// (filled in by the database layer).
    pub index_checkpoint: IndexCheckpointReport,
    /// State of the double-write checkpoint journal found at open
    /// ([`crate::journal::JournalState`] rendered: "absent", "sealed (…)"
    /// or "stale (…)"). In-memory stores report "absent".
    pub journal_state: String,
    /// Page images replayed from a sealed journal to their home
    /// locations, before the pager read a single page.
    pub journal_replayed_pages: usize,
    /// True when a sealed journal was skipped by the generation fence
    /// (its apply had completed; only the retire was lost in the crash).
    pub journal_fenced: bool,
    /// True when stale (torn, never-replayable) journal residue was
    /// found and automatically retired during this open.
    pub journal_stale_retired: bool,
}

/// Whether the open path could use the persisted index checkpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum IndexCheckpointState {
    /// No checkpoint had ever been written (or checkpoints are disabled).
    #[default]
    Absent,
    /// The checkpoint loaded; only history above each document's
    /// high-water mark was replayed.
    Loaded,
    /// A checkpoint existed but was unusable (CRC failure, format
    /// mismatch, …); the indexes were rebuilt by full replay instead.
    Fallback,
}

/// Index-checkpoint details inside a [`RecoveryReport`].
#[derive(Debug, Default, Clone)]
pub struct IndexCheckpointReport {
    /// Outcome of the checkpoint load attempt.
    pub state: IndexCheckpointState,
    /// Documents whose indexes were restored from the checkpoint
    /// (possibly with a tail replay on top).
    pub docs_loaded: usize,
    /// Documents rebuilt by full replay (new since the checkpoint, stale
    /// in it, or every document when the load fell back).
    pub docs_replayed: usize,
    /// Versions replayed above the per-document high-water marks.
    pub versions_replayed: usize,
    /// Why the load fell back (or was partial), when it did.
    pub note: Option<String>,
}

/// Outcome of a [`DocumentStore::vacuum`].
#[derive(Debug, Default, Clone, Copy)]
pub struct VacuumStats {
    /// Content versions whose payload was purged.
    pub purged_versions: usize,
    /// Bytes of delta/snapshot records freed.
    pub freed_bytes: u64,
    /// The purge horizon actually applied: the requested `before`, unless
    /// a live snapshot pin clamped it lower ([`Timestamp::ZERO`] when the
    /// document did not exist).
    pub horizon: Timestamp,
}

/// Space usage, for the storage experiments (E8).
#[derive(Debug, Default, Clone, Copy)]
pub struct SpaceStats {
    /// Bytes of current-version records.
    pub current_bytes: u64,
    /// Bytes of delta records.
    pub delta_bytes: u64,
    /// Bytes of snapshot records.
    pub snapshot_bytes: u64,
    /// Bytes of metadata records.
    pub meta_bytes: u64,
    /// Total pages allocated in the pager.
    pub pages: u64,
}

/// Result of an offline integrity check ([`DocumentStore::fsck`]).
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Total pages in the store file.
    pub pages: u64,
    /// Pages whose CRC32 trailer did not match their contents **and**
    /// that are reachable from a live structure (header, free list, heap
    /// chains, btrees, checkpoint chain, document records). These are
    /// real corruption: some read path can hit them.
    pub bad_pages: Vec<u64>,
    /// CRC-dirty pages that no live structure references — *leaked*
    /// pages, typically abandoned by [`DocumentStore::salvage_rebuild_catalog`]
    /// (which must not trust broken btrees enough to free their pages) or
    /// by a crash between allocation and linking. They waste space but no
    /// read path can reach them, so they are reported, not fatal: the
    /// store stays `clean` and the sweep continues instead of failing.
    pub leaked_pages: Vec<u64>,
    /// Documents visited in the catalog sweep.
    pub docs: usize,
    /// Version entries (delta-index rows) checked.
    pub versions_checked: usize,
    /// Content versions successfully reconstructed through their
    /// backward delta chains.
    pub reconstructed: usize,
    /// Intact records still sitting in the WAL (normally zero after a
    /// clean open, which checkpoints).
    pub wal_records: usize,
    /// Torn bytes at the WAL tail (removable with
    /// [`DocumentStore::repair_wal_tail`]).
    pub torn_bytes: u64,
    /// State of the persisted index checkpoint: "absent", "ok (…)" or
    /// "unreadable (…)". An unreadable checkpoint does **not** make the
    /// store unclean — the open path falls back to a full index rebuild,
    /// so no data is at risk, only open time.
    pub index_checkpoint: String,
    /// State of the double-write checkpoint journal: "absent" (steady
    /// state), "sealed (…)" (an unapplied batch the next open replays) or
    /// "stale (…)" (torn residue; open retires it automatically, and
    /// [`DocumentStore::retire_journal`] / `fsck --repair-tail` remove it
    /// from a live handle). Neither residual state makes the store
    /// unclean: sealed is recovered at open, stale was never applied.
    pub journal: String,
    /// Documents whose metadata records survive in the heap and could be
    /// restored by [`DocumentStore::salvage_rebuild_catalog`]. Only
    /// counted when the document btree itself is unreadable.
    pub salvageable_docs: usize,
    /// Human-readable description of every problem found.
    pub errors: Vec<String>,
}

impl FsckReport {
    /// True when no corruption of any kind was found. A torn WAL tail
    /// alone does not make a store unclean — it is the expected residue
    /// of a crash and recovery already discards it. Leaked pages
    /// ([`FsckReport::leaked_pages`]) likewise do not: nothing reachable
    /// references them.
    pub fn is_clean(&self) -> bool {
        self.bad_pages.is_empty() && self.errors.is_empty()
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pages:            {}", self.pages)?;
        writeln!(f, "bad pages:        {}", self.bad_pages.len())?;
        for p in &self.bad_pages {
            writeln!(f, "  page {p}: checksum mismatch")?;
        }
        if !self.leaked_pages.is_empty() {
            writeln!(
                f,
                "leaked pages:     {} (checksum-dirty but unreachable; wasted space, not corruption)",
                self.leaked_pages.len()
            )?;
            for p in &self.leaked_pages {
                writeln!(f, "  page {p}: unreachable, checksum mismatch")?;
            }
        }
        writeln!(f, "documents:        {}", self.docs)?;
        writeln!(f, "versions checked: {}", self.versions_checked)?;
        writeln!(f, "reconstructed:    {}", self.reconstructed)?;
        writeln!(f, "wal records:      {}", self.wal_records)?;
        writeln!(f, "wal torn bytes:   {}", self.torn_bytes)?;
        writeln!(f, "index checkpoint: {}", self.index_checkpoint)?;
        writeln!(f, "journal:          {}", self.journal)?;
        if self.salvageable_docs > 0 {
            writeln!(
                f,
                "salvageable docs: {} (catalog can be rebuilt from surviving heap pages)",
                self.salvageable_docs
            )?;
        }
        for e in &self.errors {
            writeln!(f, "error: {e}")?;
        }
        write!(f, "status:           {}", if self.is_clean() { "clean" } else { "CORRUPT" })
    }
}

const WAL_PUT: u8 = 1;
const WAL_DELETE: u8 = 2;
const WAL_VACUUM: u8 = 3;

/// Shard count of the decoded-metadata cache. Like the version cache's
/// sharding, this keeps a fleet of concurrent readers from convoying on
/// one mutex; 16 shards make same-shard collisions rare at the thread
/// counts the store targets (≤ 16 concurrent readers per core group).
const META_SHARDS: usize = 16;

/// One cached entry: the record id of the metadata record plus its
/// decoded form, shared with every reader that hit the cache.
type CachedMeta = Arc<(RecordId, DocMeta)>;
type MetaShard = Mutex<std::collections::HashMap<DocId, CachedMeta>>;

/// Sharded decoded-metadata cache (doc id → `Arc<(meta rid, DocMeta)>`).
/// Readers on different documents take different mutexes; each lock is
/// held only for a `HashMap` probe — never across I/O.
struct MetaCache {
    shards: Vec<MetaShard>,
}

impl MetaCache {
    fn new() -> MetaCache {
        MetaCache {
            shards: (0..META_SHARDS)
                .map(|_| Mutex::new(std::collections::HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, doc: DocId) -> &MetaShard {
        &self.shards[doc.0 as usize % META_SHARDS]
    }

    fn get(&self, doc: DocId) -> Option<CachedMeta> {
        self.shard(doc).lock().get(&doc).cloned()
    }

    fn insert(&self, doc: DocId, meta: CachedMeta) {
        self.shard(doc).lock().insert(doc, meta);
    }

    fn remove(&self, doc: DocId) {
        self.shard(doc).lock().remove(&doc);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// The document store.
pub struct DocumentStore {
    pool: Arc<BufferPool>,
    heap: Heap,
    catalog: BTree,
    docs: BTree,
    wal: Wal,
    /// Serialized-index checkpoint blob, rooted at [`roots::FTI_META`].
    ckpt: CheckpointStore,
    opts: StoreOptions,
    /// Single-writer / multi-reader isolation: writers relocate heap
    /// records in place (the current-version record is updated on every
    /// put), so readers must not observe a half-applied operation. The
    /// write-side critical section covers validate + WAL append + page
    /// apply only — the commit fsync happens *after* the guard drops, so
    /// readers and other committers proceed while the leader syncs.
    sync: RwLock<()>,
    /// Decoded-metadata cache: document metadata (the delta index) is read
    /// on every temporal lookup; decoding the record each time would make
    /// `version_at` O(versions) per call. Sharded so concurrent readers
    /// don't convoy on one mutex. Writers invalidate.
    meta_cache: MetaCache,
    /// Live snapshot pins: vacuum's purge horizon is clamped below the
    /// oldest pinned timestamp (before WAL logging, so replay reproduces
    /// exactly what was applied).
    snapshots: Arc<SnapshotRegistry>,
    /// Materialized-version cache (§7.3.3 reconstruction results), byte-
    /// budgeted by [`StoreOptions::cache_bytes`]. Writers invalidate per
    /// document; `fsck` bypasses it so the check exercises real chains.
    vcache: crate::vcache::VersionCache,
    /// Set when the store degraded to read-only salvage mode at open;
    /// never cleared for the lifetime of the handle. The string is the
    /// reason, surfaced through [`Error::ReadOnly`].
    read_only: Mutex<Option<String>>,
    /// The metrics registry every component of this store reports into
    /// (buffer pool, WAL, vcache, reconstruction, recovery) — shared
    /// with the caller when [`StoreOptions::metrics`] was set.
    metrics: Arc<Registry>,
    /// Cached hot-path counter handles (one registry lookup at open).
    obs: StoreObs,
}

/// Hot-path counter handles cached at open so steady-state instrumentation
/// is a relaxed atomic increment, never a registry lookup.
struct StoreObs {
    /// Reconstructions performed (`reconstruct.calls`).
    reconstructs: Counter,
    /// Deltas applied across all reconstructions
    /// (`reconstruct.deltas_applied`) — the paper's E4 cost metric.
    reconstruct_deltas: Counter,
    /// Reconstructions seeded from a snapshot record
    /// (`reconstruct.snapshot_seeds`).
    snapshot_seeds: Counter,
}

impl StoreObs {
    fn registered(reg: &Registry) -> StoreObs {
        StoreObs {
            reconstructs: reg.counter("reconstruct.calls"),
            reconstruct_deltas: reg.counter("reconstruct.deltas_applied"),
            snapshot_seeds: reg.counter("reconstruct.snapshot_seeds"),
        }
    }
}

impl DocumentStore {
    /// Opens (or creates) a store, running WAL recovery when needed.
    pub fn open(opts: StoreOptions) -> Result<(DocumentStore, RecoveryReport)> {
        let metrics = opts.metrics.clone().unwrap_or_else(|| Arc::new(Registry::new()));
        if let Some(path) = &opts.event_log {
            metrics.set_sink(Arc::new(JsonLinesSink::create(path)?));
        }
        let mut journal_outcome = crate::journal::RecoverOutcome {
            state: crate::journal::JournalState::Absent.to_string(),
            ..Default::default()
        };
        let (pager, mut wal) = match &opts.path {
            None => (Pager::memory(), Wal::memory()),
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let vfs: &dyn Vfs = opts.vfs.as_deref().unwrap_or(&RealVfs);
                // A sealed double-write journal must be replayed before
                // the pager reads a single page: the crash that left it
                // behind may have torn any home page — page 0 included —
                // and the journal holds the only good image.
                journal_outcome = crate::journal::recover(vfs, dir)?;
                (
                    Pager::open_with(vfs, &dir.join("data.db"))?,
                    Wal::open_with(vfs, &dir.join("wal.log"), opts.wal_sync)?,
                )
            }
        };
        wal.set_metrics(WalMetrics::registered(&metrics));
        let pool = Arc::new(BufferPool::with_metrics(pager, opts.buffer_pages, &metrics));
        let heap = Heap::open(pool.clone(), roots::HEAP)?;
        let catalog = BTree::open(pool.clone(), roots::CATALOG)?;
        let docs = BTree::open(pool.clone(), roots::DOCS)?;
        let vcache = crate::vcache::VersionCache::with_metrics(opts.cache_bytes, &metrics);
        let ckpt = CheckpointStore::new(pool.clone(), roots::FTI_META);
        let obs = StoreObs::registered(&metrics);
        let store = DocumentStore {
            pool,
            heap,
            catalog,
            docs,
            wal,
            ckpt,
            opts,
            sync: RwLock::new(()),
            meta_cache: MetaCache::new(),
            snapshots: Arc::new(SnapshotRegistry::new(metrics.gauge("db.active_snapshots"))),
            vcache,
            read_only: Mutex::new(None),
            metrics,
            obs,
        };
        // Recovery, phase 2 (journal replay above was phase 1): replay
        // the WAL tail against the checkpointed page image.
        let mut report = RecoveryReport {
            journal_state: journal_outcome.state,
            journal_replayed_pages: journal_outcome.replayed_pages,
            journal_fenced: journal_outcome.fenced,
            journal_stale_retired: journal_outcome.stale_retired,
            ..RecoveryReport::default()
        };
        // Register unconditionally so the counters appear (at zero) in
        // every metrics snapshot, fault-injected open or not.
        let journal_replays = store.metrics.counter("recovery.journal_replays");
        let residue_retired = store.metrics.counter("recovery.journal_residue_retired");
        if report.journal_replayed_pages > 0 {
            journal_replays.inc();
            store.metrics.emit(
                "recovery.journal_replay",
                &[
                    ("pages", EventValue::U64(report.journal_replayed_pages as u64)),
                    ("state", EventValue::Str(&report.journal_state)),
                ],
            );
        }
        if report.journal_stale_retired {
            residue_retired.inc();
            store.metrics.emit(
                "recovery.journal_residue_retired",
                &[("state", EventValue::Str(&report.journal_state))],
            );
        }
        match store.wal.replay() {
            Ok(summary) => {
                report.torn_bytes = summary.torn_bytes;
                for rec in &summary.records {
                    match store.replay_record(rec) {
                        Ok(()) => report.replayed += 1,
                        // A logically-invalid record (rejected input that
                        // slipped into the log, or an op from a newer
                        // client) must not wedge the store forever: skip
                        // it and keep going.
                        Err(Error::QueryInvalid(_))
                        | Err(Error::XmlParse { .. })
                        | Err(Error::TimeParse(_)) => report.skipped += 1,
                        // Structural damage beyond the torn tail (page
                        // checksum failures, broken references, a corrupt
                        // log body): stop replaying and degrade to
                        // read-only salvage mode rather than refusing to
                        // open. Everything replayed so far plus the
                        // checkpointed image stays readable.
                        Err(e) => {
                            report.salvage = Some(format!(
                                "WAL replay failed after {} record(s): {e}",
                                report.replayed
                            ));
                            break;
                        }
                    }
                }
            }
            Err(e) => {
                report.salvage = Some(format!("WAL unreadable: {e}"));
            }
        }
        store.metrics.counter("recovery.wal_records_replayed").add(report.replayed as u64);
        store.metrics.counter("recovery.wal_records_skipped").add(report.skipped as u64);
        store.metrics.counter("recovery.wal_torn_bytes").add(report.torn_bytes);
        if let Some(reason) = &report.salvage {
            *store.read_only.lock() = Some(reason.clone());
            store.metrics.counter("recovery.salvage_opens").inc();
            store.metrics.emit("recovery.salvage", &[("reason", EventValue::Str(reason))]);
        } else if report.replayed > 0 || report.skipped > 0 {
            // No checkpoint in salvage mode: the WAL is evidence and the
            // remedy (`fsck --repair-tail`) must still find it intact.
            store.checkpoint()?;
        }
        Ok((store, report))
    }

    /// Convenience: open a fresh in-memory store.
    pub fn in_memory() -> DocumentStore {
        DocumentStore::open(StoreOptions::default()).expect("in-memory open cannot fail").0
    }

    /// Buffer-pool statistics (the I/O-cost metric in experiments).
    pub fn buffer_stats(&self) -> &BufferStats {
        &self.pool.stats
    }

    /// The store's metrics registry — every component (buffer pool, WAL,
    /// vcache, reconstruction, recovery) reports here, and `txdb
    /// metrics` / the bench binaries render it.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Refreshes the derived gauges (cache hit ratios in basis points,
    /// residency, WAL size) from the live counters. Called just before a
    /// snapshot is rendered; the hot paths never pay for division.
    pub fn update_derived_metrics(&self) {
        let (gets, hits, ..) = self.pool.stats.snapshot();
        let bp = (hits * 10_000).checked_div(gets).unwrap_or(0);
        self.metrics.gauge("buffer.hit_ratio_bp").set(bp);
        self.metrics.gauge("buffer.cached_pages").set(self.pool.cached() as u64);
        let (vhits, vmisses, ..) = self.vcache.stats.snapshot();
        let vbp = (vhits * 10_000).checked_div(vhits + vmisses).unwrap_or(0);
        self.metrics.gauge("vcache.hit_ratio_bp").set(vbp);
        self.metrics.gauge("vcache.entries").set(self.vcache.len() as u64);
        self.metrics.gauge("vcache.resident_bytes").set(self.vcache.resident_bytes() as u64);
        if let Ok(size) = self.wal.size() {
            self.metrics.gauge("wal.size_bytes").set(size);
        }
    }

    /// The underlying buffer pool (shared with indexes).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// True when the store opened in read-only salvage mode.
    pub fn is_read_only(&self) -> bool {
        self.read_only.lock().is_some()
    }

    /// The salvage reason, when the store is read-only.
    pub fn read_only_reason(&self) -> Option<String> {
        self.read_only.lock().clone()
    }

    fn ensure_writable(&self) -> Result<()> {
        match &*self.read_only.lock() {
            Some(reason) => Err(Error::ReadOnly(reason.clone())),
            None => Ok(()),
        }
    }

    fn replay_record(&self, rec: &[u8]) -> Result<()> {
        if rec.is_empty() {
            return Err(Error::WalCorrupt(0, "empty record".into()));
        }
        match rec[0] {
            WAL_PUT => {
                let (name, rest) = decode_str(&rec[1..])?;
                let ts = Timestamp::from_micros(u64::from_le_bytes(
                    rest.get(0..8)
                        .ok_or_else(|| Error::WalCorrupt(0, "short put".into()))?
                        .try_into()
                        .expect("fixed-width slice"),
                ));
                let tree = decode_tree(&rest[8..])?;
                self.apply_put(&name, tree, ts)?;
                Ok(())
            }
            WAL_DELETE => {
                let (name, rest) = decode_str(&rec[1..])?;
                let ts = Timestamp::from_micros(u64::from_le_bytes(
                    rest.get(0..8)
                        .ok_or_else(|| Error::WalCorrupt(0, "short delete".into()))?
                        .try_into()
                        .expect("fixed-width slice"),
                ));
                self.apply_delete(&name, ts)?;
                Ok(())
            }
            WAL_VACUUM => {
                let (name, rest) = decode_str(&rec[1..])?;
                let before = Timestamp::from_micros(u64::from_le_bytes(
                    rest.get(0..8)
                        .ok_or_else(|| Error::WalCorrupt(0, "short vacuum".into()))?
                        .try_into()
                        .expect("fixed-width slice"),
                ));
                self.apply_vacuum(&name, before)?;
                Ok(())
            }
            x => Err(Error::WalCorrupt(0, format!("unknown wal op {x}"))),
        }
    }

    /// Stores a new version of `name` from XML text (parses, then
    /// [`DocumentStore::put_tree`]).
    pub fn put(&self, name: &str, xml: &str, ts: Timestamp) -> Result<PutResult> {
        let tree = txdb_xml::parse::parse_document(xml)?;
        self.put_tree(name, tree, ts)
    }

    /// Stores a new version of `name`. Creates the document if absent,
    /// diffs against the current version otherwise; assigns XIDs.
    pub fn put_tree(&self, name: &str, tree: Tree, ts: Timestamp) -> Result<PutResult> {
        let (result, seq) = {
            // Announce before queueing on the writer lock: a group-commit
            // leader mid-fsync-decision will hold its barrier briefly so
            // this record joins the batch.
            let _announced = self.wal.announce();
            let _g = self.sync.write();
            self.ensure_writable()?;
            // Validate BEFORE logging: a record that can never apply must
            // not reach the WAL, or it would poison every future recovery.
            self.check_monotonic(name, ts)?;
            // WAL first. The logged tree is the raw parsed content (XIDs
            // are assigned deterministically during apply, so replay is
            // exact).
            let mut rec = vec![WAL_PUT];
            encode_str(&mut rec, name);
            rec.extend_from_slice(&ts.micros().to_le_bytes());
            rec.extend_from_slice(&encode_tree(&tree));
            let seq = self.wal.append(&rec)?;
            (self.apply_put(name, tree, ts)?, seq)
        };
        // Group-commit durability barrier, *outside* the writer lock:
        // while this thread waits for the fsync (its own, or the current
        // leader's), other committers append + apply freely, so N
        // concurrent committers share ~1 fsync instead of paying N.
        self.wal.commit(seq)?;
        Ok(result)
    }

    fn apply_put(&self, name: &str, mut tree: Tree, ts: Timestamp) -> Result<PutResult> {
        match self.lookup_meta(name)? {
            None => {
                // Fresh document: assign XIDs in document order.
                let mut next = Xid::FIRST;
                let ids: Vec<_> = tree.iter().collect();
                for id in ids {
                    tree.node_mut(id).xid = next;
                    next = next.next();
                }
                tree.stamp_all(ts);
                let doc = self.alloc_doc_id();
                let current_rid = self.heap.insert(&encode_tree(&tree))?;
                let meta = DocMeta {
                    doc,
                    name: name.to_string(),
                    next_xid: next,
                    current_rid: Some(current_rid),
                    entries: vec![VersionEntry {
                        version: VersionId::FIRST,
                        ts,
                        kind: VersionKind::Content,
                        delta_rid: None,
                        snapshot_rid: None,
                    }],
                };
                let meta_rid = self.heap.insert(&meta.encode())?;
                self.catalog.insert(name.as_bytes(), &doc.0.to_be_bytes())?;
                self.docs.insert(&doc.0.to_be_bytes(), &meta_rid.to_bytes())?;
                Ok(PutResult {
                    doc,
                    version: VersionId::FIRST,
                    ts,
                    created: true,
                    changed: true,
                    delta: None,
                    old_tree: None,
                    new_tree: tree,
                })
            }
            Some((doc, meta_rid, mut meta)) => {
                let last_ts = meta.last().map(|e| e.ts).unwrap_or(Timestamp::ZERO);
                if ts <= last_ts {
                    return Err(Error::QueryInvalid(format!(
                        "non-monotonic put: {ts} <= last version time {last_ts}"
                    )));
                }
                if meta.last_content().is_none() {
                    // Resurrection after a full vacuum: every content
                    // version below the tombstone was purged, so there is
                    // nothing to diff against — store the new version
                    // complete, like a fresh base (XIDs keep drawing from
                    // the document's counter; they are never reused).
                    let mut next = meta.next_xid;
                    let ids: Vec<_> = tree.iter().collect();
                    for id in ids {
                        tree.node_mut(id).xid = next;
                        next = next.next();
                    }
                    tree.stamp_all(ts);
                    let new_bytes = encode_tree(&tree);
                    let current_rid = match meta.current_rid {
                        Some(rid) => self.heap.update(rid, &new_bytes)?,
                        None => self.heap.insert(&new_bytes)?,
                    };
                    let version = VersionId(meta.entries.len() as u32);
                    meta.current_rid = Some(current_rid);
                    meta.next_xid = next;
                    meta.entries.push(VersionEntry {
                        version,
                        ts,
                        kind: VersionKind::Content,
                        delta_rid: None,
                        snapshot_rid: None,
                    });
                    let new_meta_rid = self.heap.update(meta_rid, &meta.encode())?;
                    self.docs.insert(&doc.0.to_be_bytes(), &new_meta_rid.to_bytes())?;
                    self.invalidate_meta(doc);
                    self.vcache.invalidate_doc(doc);
                    return Ok(PutResult {
                        doc,
                        version,
                        ts,
                        created: false,
                        changed: true,
                        delta: None,
                        old_tree: None,
                        new_tree: tree,
                    });
                }
                let old_tree = self.current_tree_of(&meta)?;
                let from_entry = meta
                    .last_content()
                    .ok_or_else(|| Error::Corrupt("document has no content version".into()))?;
                let (from_version, from_ts) = (from_entry.version, from_entry.ts);
                let mut next_xid = meta.next_xid;
                let result =
                    diff_trees(&old_tree, &mut tree, &mut next_xid, from_version, from_ts, ts)?;
                if result.delta.is_empty() && !meta.is_deleted() {
                    // Unchanged content: no new version (re-crawl of an
                    // identical page, §3.1).
                    return Ok(PutResult {
                        doc,
                        version: from_version,
                        ts,
                        created: false,
                        changed: false,
                        delta: None,
                        old_tree: Some(old_tree),
                        new_tree: tree,
                    });
                }
                let version = VersionId(meta.entries.len() as u32);
                // Store the delta as an XML document (§7.1).
                let mut delta = result.delta;
                delta.to_version = version;
                let delta_xml = txdb_xml::serialize::to_string(&delta_to_xml(&delta));
                let delta_rid = self.heap.insert(delta_xml.as_bytes())?;
                // Replace the current version.
                let new_bytes = encode_tree(&tree);
                let current_rid = match meta.current_rid {
                    Some(rid) => self.heap.update(rid, &new_bytes)?,
                    None => self.heap.insert(&new_bytes)?,
                };
                // Snapshot policy (§7.3.3).
                let snapshot_rid = match self.opts.snapshot_every {
                    Some(k) if k > 0 && version.0.is_multiple_of(k) => {
                        Some(self.heap.insert(&new_bytes)?)
                    }
                    _ => None,
                };
                meta.current_rid = Some(current_rid);
                meta.next_xid = next_xid;
                meta.entries.push(VersionEntry {
                    version,
                    ts,
                    kind: VersionKind::Content,
                    delta_rid: Some(delta_rid),
                    snapshot_rid,
                });
                let new_meta_rid = self.heap.update(meta_rid, &meta.encode())?;
                self.docs.insert(&doc.0.to_be_bytes(), &new_meta_rid.to_bytes())?;
                self.invalidate_meta(doc);
                self.vcache.invalidate_doc(doc);
                Ok(PutResult {
                    doc,
                    version,
                    ts,
                    created: false,
                    changed: true,
                    delta: Some(delta),
                    old_tree: Some(old_tree),
                    new_tree: tree,
                })
            }
        }
    }

    /// Deletes `name` at time `ts` (records a tombstone version; history
    /// stays queryable). Returns `None` if the document does not exist or
    /// is already deleted.
    pub fn delete(&self, name: &str, ts: Timestamp) -> Result<Option<DeleteResult>> {
        let (result, seq) = {
            let _announced = self.wal.announce();
            let _g = self.sync.write();
            self.ensure_writable()?;
            // No-op deletes (unknown or already-deleted documents) must
            // not reach the WAL.
            match self.lookup_meta(name)? {
                None => return Ok(None),
                Some((.., meta)) if meta.is_deleted() => return Ok(None),
                Some(_) => {}
            }
            self.check_monotonic(name, ts)?;
            let mut rec = vec![WAL_DELETE];
            encode_str(&mut rec, name);
            rec.extend_from_slice(&ts.micros().to_le_bytes());
            let seq = self.wal.append(&rec)?;
            (self.apply_delete(name, ts)?, seq)
        };
        self.wal.commit(seq)?;
        Ok(result)
    }

    fn apply_delete(&self, name: &str, ts: Timestamp) -> Result<Option<DeleteResult>> {
        let Some((doc, meta_rid, mut meta)) = self.lookup_meta(name)? else {
            return Ok(None);
        };
        if meta.is_deleted() {
            return Ok(None);
        }
        let last_ts = meta.last().map(|e| e.ts).unwrap_or(Timestamp::ZERO);
        if ts <= last_ts {
            return Err(Error::QueryInvalid(format!(
                "non-monotonic delete: {ts} <= last version time {last_ts}"
            )));
        }
        let old_tree = self.current_tree_of(&meta)?;
        let version = VersionId(meta.entries.len() as u32);
        meta.entries.push(VersionEntry {
            version,
            ts,
            kind: VersionKind::Tombstone,
            delta_rid: None,
            snapshot_rid: None,
        });
        let new_meta_rid = self.heap.update(meta_rid, &meta.encode())?;
        self.docs.insert(&doc.0.to_be_bytes(), &new_meta_rid.to_bytes())?;
        self.invalidate_meta(doc);
        self.vcache.invalidate_doc(doc);
        Ok(Some(DeleteResult { doc, version, ts, old_tree }))
    }

    /// Purges history: every version whose validity interval ends at or
    /// before `before` loses its stored payload (deltas and snapshots are
    /// freed; the version entry remains, marked [`VersionKind::Purged`], so
    /// version numbering — which the full-text index relies on — stays
    /// dense). Versions valid at or after `before` are untouched, and the
    /// backward reconstruction chain of every retained version remains
    /// complete (it only uses deltas of *newer* versions). Returns `None`
    /// if the document does not exist.
    ///
    /// After a vacuum, temporal queries before the horizon return nothing
    /// and `CreTime` delta traversal bottoms out at the horizon; the
    /// EID-time index keeps exact create times.
    ///
    /// Live snapshot pins clamp the horizon: a reader pinned at `t < before`
    /// caps the effective purge horizon at `t`, so no version that pinned
    /// reader can still see is freed. The returned stats carry the
    /// effective horizon in [`VacuumStats::horizon`].
    pub fn vacuum(&self, name: &str, before: Timestamp) -> Result<Option<VacuumStats>> {
        let (result, seq) = {
            let _announced = self.wal.announce();
            let _g = self.sync.write();
            self.ensure_writable()?;
            if self.lookup_meta(name)?.is_none() {
                return Ok(None);
            }
            // Clamp below the oldest pinned snapshot BEFORE logging: the
            // WAL must carry the *effective* horizon, because recovery
            // replays with no pins alive and has to reproduce exactly
            // what was applied here.
            let before = self.snapshots.clamp(before);
            let mut rec = vec![WAL_VACUUM];
            encode_str(&mut rec, name);
            rec.extend_from_slice(&before.micros().to_le_bytes());
            let seq = self.wal.append(&rec)?;
            (self.apply_vacuum(name, before)?, seq)
        };
        self.wal.commit(seq)?;
        Ok(result)
    }

    fn apply_vacuum(&self, name: &str, before: Timestamp) -> Result<Option<VacuumStats>> {
        let Some((doc, meta_rid, mut meta)) = self.lookup_meta(name)? else {
            return Ok(None);
        };
        let mut stats = VacuumStats { horizon: before, ..Default::default() };
        let n = meta.entries.len();
        for i in 0..n {
            let end = meta.entries.get(i + 1).map(|e| e.ts).unwrap_or(Timestamp::FOREVER);
            let e = &mut meta.entries[i];
            // The last entry (validity open-ended) is never purged, even
            // with `before = FOREVER`: the current state always survives.
            if end >= before || end == Timestamp::FOREVER || e.kind == VersionKind::Purged {
                continue;
            }
            if let Some(rid) = e.delta_rid.take() {
                stats.freed_bytes += self.heap.get(rid)?.len() as u64;
                self.heap.delete(rid)?;
            }
            if let Some(rid) = e.snapshot_rid.take() {
                stats.freed_bytes += self.heap.get(rid)?.len() as u64;
                self.heap.delete(rid)?;
            }
            if e.kind == VersionKind::Content {
                stats.purged_versions += 1;
            }
            e.kind = VersionKind::Purged;
        }
        // The delta *into* the first retained content version transforms a
        // purged version into it — it can never be applied again. Free it.
        let mut prev_content_purged = false;
        for i in 0..n {
            match meta.entries[i].kind {
                VersionKind::Purged => prev_content_purged = true,
                VersionKind::Tombstone => {}
                VersionKind::Content => {
                    if prev_content_purged {
                        if let Some(rid) = meta.entries[i].delta_rid.take() {
                            stats.freed_bytes += self.heap.get(rid)?.len() as u64;
                            self.heap.delete(rid)?;
                        }
                    }
                    prev_content_purged = false;
                }
            }
        }
        if stats.purged_versions > 0 || stats.freed_bytes > 0 {
            let new_meta_rid = self.heap.update(meta_rid, &meta.encode())?;
            self.docs.insert(&doc.0.to_be_bytes(), &new_meta_rid.to_bytes())?;
            self.invalidate_meta(doc);
            self.vcache.invalidate_doc(doc);
        }
        Ok(Some(stats))
    }

    /// Pre-WAL validation: the new timestamp must exceed the last version
    /// time of an existing document.
    fn check_monotonic(&self, name: &str, ts: Timestamp) -> Result<()> {
        if let Some((_, _, meta)) = self.lookup_meta(name)? {
            if let Some(last) = meta.last() {
                if ts <= last.ts {
                    return Err(Error::QueryInvalid(format!(
                        "non-monotonic write: {ts} <= last version time {}",
                        last.ts
                    )));
                }
            }
        }
        Ok(())
    }

    fn alloc_doc_id(&self) -> DocId {
        // The NEXT_DOC root slot doubles as a monotone counter.
        let next = self.pool.pager().root(roots::NEXT_DOC).0 + 1;
        self.pool.pager().set_root(roots::NEXT_DOC, crate::pager::PageId(next));
        DocId(next as u32)
    }

    fn lookup_meta(&self, name: &str) -> Result<Option<(DocId, RecordId, DocMeta)>> {
        let Some(docid_bytes) = self.catalog.get(name.as_bytes())? else {
            return Ok(None);
        };
        if docid_bytes.len() != 4 {
            return Err(Error::Corrupt("bad doc id in catalog".into()));
        }
        let doc =
            DocId(u32::from_be_bytes(docid_bytes[..4].try_into().expect("fixed-width slice")));
        let (rid, meta) = self.meta_of(doc)?;
        Ok(Some((doc, rid, meta)))
    }

    fn meta_of(&self, doc: DocId) -> Result<(RecordId, DocMeta)> {
        let cached = self.meta_arc(doc)?;
        Ok((cached.0, cached.1.clone()))
    }

    /// Cached decode of a document's metadata record. Readers share the
    /// `Arc` without cloning the (possibly long) entry vector.
    fn meta_arc(&self, doc: DocId) -> Result<Arc<(RecordId, DocMeta)>> {
        if let Some(hit) = self.meta_cache.get(doc) {
            return Ok(hit);
        }
        let rid_bytes = self.docs.get(&doc.0.to_be_bytes())?.ok_or(Error::NoSuchDocId(doc))?;
        let rid = RecordId::from_bytes(&rid_bytes)?;
        let meta = DocMeta::decode(&self.heap.get(rid)?)?;
        let arc = Arc::new((rid, meta));
        self.meta_cache.insert(doc, arc.clone());
        Ok(arc)
    }

    fn invalidate_meta(&self, doc: DocId) {
        self.meta_cache.remove(doc);
    }

    fn current_tree_of(&self, meta: &DocMeta) -> Result<Tree> {
        let rid = meta
            .current_rid
            .ok_or_else(|| Error::Corrupt("document without current version".into()))?;
        decode_tree(&self.heap.get(rid)?)
    }

    /// The live snapshot-pin registry. Callers pin a commit timestamp
    /// (`store.snapshots().pin(ts)`) to guarantee vacuum never purges a
    /// version that timestamp can still see; the pin releases on drop.
    pub fn snapshots(&self) -> &Arc<SnapshotRegistry> {
        &self.snapshots
    }

    /// The doc id of a name, if present. Reads the catalog directly —
    /// no metadata record is touched or cloned.
    pub fn doc_id(&self, name: &str) -> Result<Option<DocId>> {
        let _g = self.sync.read();
        let Some(docid_bytes) = self.catalog.get(name.as_bytes())? else {
            return Ok(None);
        };
        if docid_bytes.len() != 4 {
            return Err(Error::Corrupt("bad doc id in catalog".into()));
        }
        Ok(Some(DocId(u32::from_be_bytes(docid_bytes[..4].try_into().expect("fixed-width slice")))))
    }

    /// The name of a doc id.
    pub fn doc_name(&self, doc: DocId) -> Result<String> {
        let _g = self.sync.read();
        Ok(self.meta_arc(doc)?.1.name.clone())
    }

    /// All documents (id, name), in id order.
    pub fn list(&self) -> Result<Vec<(DocId, String)>> {
        let _g = self.sync.read();
        let mut out = Vec::new();
        for entry in self.docs.iter()? {
            let (k, _) = entry?;
            let doc = DocId(u32::from_be_bytes(k[..4].try_into().expect("fixed-width slice")));
            out.push((doc, self.meta_arc(doc)?.1.name.clone()));
        }
        Ok(out)
    }

    /// The document's delta index: every version with timestamp, kind and
    /// record locations (§7.1, §7.3.7).
    pub fn versions(&self, doc: DocId) -> Result<Vec<VersionEntry>> {
        let _g = self.sync.read();
        Ok(self.meta_arc(doc)?.1.entries.clone())
    }

    /// True when the document's last version is a tombstone.
    pub fn is_deleted(&self, doc: DocId) -> Result<bool> {
        let _g = self.sync.read();
        Ok(self.meta_arc(doc)?.1.is_deleted())
    }

    /// The XID high-water mark (next to be assigned).
    pub fn next_xid(&self, doc: DocId) -> Result<Xid> {
        let _g = self.sync.read();
        Ok(self.meta_arc(doc)?.1.next_xid)
    }

    /// The current tree (last content version). Errors if the document is
    /// deleted — use [`DocumentStore::version_tree`] for history.
    pub fn current_tree(&self, doc: DocId) -> Result<Tree> {
        let _g = self.sync.read();
        let meta = self.meta_arc(doc)?;
        if meta.1.is_deleted() {
            return Err(Error::NotValidAt(doc, Timestamp::FOREVER));
        }
        self.current_tree_of(&meta.1)
    }

    /// The version valid at time `ts`, if any (the snapshot selector used
    /// by `TPatternScan` and friends). Tombstone intervals yield `None`.
    pub fn version_at(&self, doc: DocId, ts: Timestamp) -> Result<Option<VersionId>> {
        let _g = self.sync.read();
        let meta = &self.meta_arc(doc)?.1;
        let mut found = None;
        for e in &meta.entries {
            if e.ts <= ts {
                found = Some(e);
            } else {
                break;
            }
        }
        Ok(match found {
            Some(e) if e.kind == VersionKind::Content => Some(e.version),
            _ => None,
        })
    }

    /// The validity interval of version `v`: `[ts_v, ts_of_next_entry)`,
    /// `FOREVER`-bounded for the last entry.
    pub fn version_interval(&self, doc: DocId, v: VersionId) -> Result<Interval> {
        let _g = self.sync.read();
        let meta = &self.meta_arc(doc)?.1;
        let e = meta.entries.get(v.0 as usize).ok_or(Error::NoSuchVersion(doc, v))?;
        let end = meta.entries.get(v.0 as usize + 1).map(|n| n.ts).unwrap_or(Timestamp::FOREVER);
        Ok(Interval::new(e.ts, end))
    }

    /// Reconstructs version `v` (§7.3.3): finds the nearest complete
    /// materialisation at or after `v` — a cached version, a snapshot, or
    /// the current version, whichever is closest — and applies completed
    /// deltas backwards. Returns the tree and the number of deltas applied
    /// (the cost metric of experiment E4; a cache hit costs 0).
    pub fn version_tree_counted(&self, doc: DocId, v: VersionId) -> Result<(Tree, usize)> {
        let _g = self.sync.read();
        let meta = self.meta_arc(doc)?;
        self.reconstruct_counted(&meta.1, doc, v, true)
    }

    /// Lock-free reconstruction core, shared with [`DocumentStore::fsck`]
    /// (which holds the lock for its whole sweep and passes
    /// `use_cache = false` so the check exercises the real delta chains).
    fn reconstruct_counted(
        &self,
        meta: &DocMeta,
        doc: DocId,
        v: VersionId,
        use_cache: bool,
    ) -> Result<(Tree, usize)> {
        let e = meta.entries.get(v.0 as usize).ok_or(Error::NoSuchVersion(doc, v))?;
        if e.kind != VersionKind::Content {
            return Err(Error::NoSuchVersion(doc, v));
        }
        self.obs.reconstructs.inc();
        let _op = txdb_base::obs::trace_op("storage.reconstruct_us").map(|mut op| {
            op.add_field("doc", doc.0 as u64);
            op.add_field("version", v.0 as u64);
            op
        });
        // Direct hits first: the cache, then a materialized snapshot, then
        // the current version.
        if use_cache {
            if let Some(t) = self.vcache.get(doc, v) {
                return Ok(((*t).clone(), 0));
            }
        }
        if let Some(rid) = e.snapshot_rid {
            self.obs.snapshot_seeds.inc();
            return Ok((decode_tree(&self.heap.get(rid)?)?, 0));
        }
        let last_content =
            meta.last_content().ok_or_else(|| Error::Corrupt("no content version".into()))?;
        if last_content.version == v {
            return Ok((self.current_tree_of(meta)?, 0));
        }
        // Nearest materialisation after v: walking forward from v, the
        // first cached version or snapshot ("processing start using the
        // oldest snapshot with timestamp greater or equal to t"), else the
        // current version. Only versions *after* v can seed, because
        // completed deltas apply backwards.
        let mut start = last_content.version;
        let mut tree = None;
        for e2 in &meta.entries[(v.0 as usize + 1)..] {
            if use_cache {
                if let Some(t) = self.vcache.peek(doc, e2.version) {
                    // `get` refreshes the seed's LRU slot and counts the hit.
                    let t = self.vcache.get(doc, e2.version).unwrap_or(t);
                    start = e2.version;
                    tree = Some((*t).clone());
                    break;
                }
            }
            if let Some(rid) = e2.snapshot_rid {
                start = e2.version;
                tree = Some(decode_tree(&self.heap.get(rid)?)?);
                self.obs.snapshot_seeds.inc();
                break;
            }
        }
        let mut tree = match tree {
            Some(t) => t,
            None => self.current_tree_of(meta)?,
        };
        // Apply deltas backwards from `start` down to `v`.
        let mut applied = 0usize;
        for u in ((v.0 + 1)..=start.0).rev() {
            let entry = &meta.entries[u as usize];
            let Some(rid) = entry.delta_rid else { continue }; // tombstone
            let delta = self.load_delta(rid)?;
            delta.apply_backward(&mut tree)?;
            applied += 1;
        }
        if use_cache && applied > 0 {
            self.vcache.insert(doc, v, Arc::new(tree.clone()));
        }
        self.obs.reconstruct_deltas.add(applied as u64);
        Ok((tree, applied))
    }

    /// The materialized-version cache's counters (hits, misses, inserts,
    /// evictions, invalidations), mirroring [`DocumentStore::buffer_stats`].
    pub fn vcache_stats(&self) -> &crate::vcache::VersionCacheStats {
        &self.vcache.stats
    }

    /// The materialized-version cache itself (residency inspection).
    pub fn vcache(&self) -> &crate::vcache::VersionCache {
        &self.vcache
    }

    /// The cached tree of `(doc, v)`, if resident (counts a hit/miss).
    /// Used by the incremental history walk in `txdb-core` to seed from
    /// the nearest cached version instead of re-reconstructing.
    pub fn cached_version(&self, doc: DocId, v: VersionId) -> Option<Tree> {
        self.vcache.get(doc, v).map(|t| (*t).clone())
    }

    /// Offers a reconstructed tree to the cache (no-op when disabled).
    /// The incremental history walk materializes every intermediate
    /// version anyway; caching them makes later point queries free.
    pub fn cache_version(&self, doc: DocId, v: VersionId, tree: &Tree) {
        if !self.vcache.is_disabled() {
            self.vcache.insert(doc, v, Arc::new(tree.clone()));
        }
    }

    /// Reconstructs version `v` (§7.3.3).
    pub fn version_tree(&self, doc: DocId, v: VersionId) -> Result<Tree> {
        Ok(self.version_tree_counted(doc, v)?.0)
    }

    /// The completed delta leading into version `v` (None for the first
    /// version and tombstones).
    pub fn delta(&self, doc: DocId, v: VersionId) -> Result<Option<Delta>> {
        let _g = self.sync.read();
        let meta = &self.meta_arc(doc)?.1;
        let e = meta.entries.get(v.0 as usize).ok_or(Error::NoSuchVersion(doc, v))?;
        match e.delta_rid {
            Some(rid) => Ok(Some(self.load_delta(rid)?)),
            None => Ok(None),
        }
    }

    fn load_delta(&self, rid: RecordId) -> Result<Delta> {
        let text = String::from_utf8(self.heap.get(rid)?)
            .map_err(|_| Error::Corrupt("delta record is not UTF-8".into()))?;
        // keep_whitespace: delta payloads may contain whitespace-only text
        // nodes that the default parser would drop.
        let tree = parse_with(&text, ParseOptions { keep_whitespace: true, allow_forest: true })?;
        delta_from_xml(&tree)
    }

    /// Flushes all dirty pages atomically, syncs, and truncates the WAL.
    ///
    /// File-backed stores use the double-write protocol
    /// ([`crate::journal`]): the batch of dirty page images — the header
    /// page included — is sealed into `journal.db` and fsynced *before*
    /// any home location is overwritten. A crash at any point inside the
    /// flush therefore leaves every page recoverable: either the old
    /// image survives untouched (journal not yet sealed) or the new one
    /// is replayed from the journal at the next open. The journaled
    /// header carries a bumped [`roots::CKPT_GEN`] generation, which
    /// fences replay once the apply provably reached disk.
    pub fn checkpoint(&self) -> Result<()> {
        let _span = self.metrics.span("checkpoint.write_us");
        let _g = self.sync.write();
        self.ensure_writable()?;
        // Checkpointing under live readers is safe — pages flush atomically
        // through the journal and pinned versions are immutable — but the
        // count is operationally interesting (a long-pinned reader holds
        // back vacuum), so leave a trace.
        let active = self.snapshots.active();
        if active > 0 {
            self.metrics
                .emit("checkpoint.active_snapshots", &[("count", EventValue::U64(active as u64))]);
        }
        match &self.opts.path {
            Some(dir) => {
                let pager = self.pool.pager();
                let dirty = self.pool.dirty_pages();
                if dirty.is_empty() && !pager.header_dirty() {
                    // Nothing will be overwritten: no torn-page exposure,
                    // no journal needed.
                    self.pool.flush_all()?;
                } else {
                    let generation = pager.root(roots::CKPT_GEN).0.wrapping_add(1);
                    pager.set_root(roots::CKPT_GEN, crate::pager::PageId(generation));
                    let header = pager.header_image();
                    let mut batch: Vec<(u64, &[u8])> = Vec::with_capacity(dirty.len() + 1);
                    batch.push((0, &header[..]));
                    batch.extend(dirty.iter().map(|(id, buf)| (id.0, &buf[..])));
                    let vfs: &dyn Vfs = self.opts.vfs.as_deref().unwrap_or(&RealVfs);
                    let mut journal = vfs.open(&crate::journal::journal_path(dir))?;
                    crate::journal::write_batch(journal.as_mut(), generation, &batch)?;
                    self.pool.flush_all()?;
                    crate::journal::retire(journal.as_mut())?;
                }
            }
            None => self.pool.flush_all()?,
        }
        self.wal.reset()
    }

    /// Persists a serialized index checkpoint blob (see
    /// [`crate::ckpt::CheckpointStore`]) and returns its generation. The
    /// pages land on disk with the next [`DocumentStore::checkpoint`];
    /// callers write the blob first, then checkpoint, so blob and page
    /// image are flushed together.
    pub fn write_index_checkpoint(&self, blob: &[u8]) -> Result<u64> {
        let _g = self.sync.write();
        self.ensure_writable()?;
        self.ckpt.write(blob)
    }

    /// Reads the persisted index checkpoint blob. `Ok(None)` = never
    /// written; an error means the checkpoint is unusable (callers fall
    /// back to a full index rebuild).
    pub fn read_index_checkpoint(&self) -> Result<Option<Vec<u8>>> {
        let _g = self.sync.read();
        self.ckpt.read()
    }

    /// Drops the persisted index checkpoint, if any.
    pub fn clear_index_checkpoint(&self) -> Result<()> {
        let _g = self.sync.write();
        self.ensure_writable()?;
        self.ckpt.clear()
    }

    /// Generation/size summary of the persisted index checkpoint
    /// (`Ok(None)` when absent).
    pub fn index_checkpoint_info(&self) -> Result<Option<CheckpointInfo>> {
        let _g = self.sync.read();
        self.ckpt.info()
    }

    /// Space accounting for the storage experiments (E8).
    pub fn space_stats(&self) -> Result<SpaceStats> {
        let _g = self.sync.read();
        let mut s = SpaceStats { pages: self.pool.pager().page_count(), ..Default::default() };
        for entry in self.docs.iter()? {
            let (_, rid_bytes) = entry?;
            let rid = RecordId::from_bytes(&rid_bytes)?;
            let meta_bytes = self.heap.get(rid)?;
            s.meta_bytes += meta_bytes.len() as u64;
            let meta = DocMeta::decode(&meta_bytes)?;
            if let Some(rid) = meta.current_rid {
                s.current_bytes += self.heap.get(rid)?.len() as u64;
            }
            for e in &meta.entries {
                if let Some(rid) = e.delta_rid {
                    s.delta_bytes += self.heap.get(rid)?.len() as u64;
                }
                if let Some(rid) = e.snapshot_rid {
                    s.snapshot_bytes += self.heap.get(rid)?.len() as u64;
                }
            }
        }
        Ok(s)
    }

    /// Offline integrity check: verifies every page checksum, walks the
    /// catalog and every document's delta index, confirms every stored
    /// record (current version, deltas, snapshots, metadata) is readable,
    /// and reconstructs every unpurged content version through its
    /// backward delta chain. Collects problems instead of failing on the
    /// first one — the report describes everything wrong with the store.
    pub fn fsck(&self) -> FsckReport {
        let _g = self.sync.read();
        let mut r = FsckReport { pages: self.pool.pager().page_count(), ..Default::default() };
        match self.pool.pager().verify_checksums() {
            Ok(bad) => r.bad_pages = bad,
            Err(e) => r.errors.push(format!("checksum sweep failed: {e}")),
        }
        match self.wal.replay() {
            Ok(s) => {
                r.wal_records = s.records.len();
                r.torn_bytes = s.torn_bytes;
            }
            Err(e) => r.errors.push(format!("WAL unreadable: {e}")),
        }
        // The index checkpoint is advisory: report its state, but an
        // unreadable one is not corruption of *data* — open degrades to a
        // full rebuild — so it never flips the store to CORRUPT.
        r.index_checkpoint = match self.ckpt.read() {
            Ok(None) => "absent".into(),
            Ok(Some(blob)) => match self.ckpt.info() {
                Ok(Some(info)) => format!(
                    "ok (generation {}, {} bytes in {} page(s))",
                    info.generation,
                    blob.len(),
                    info.pages
                ),
                _ => format!("ok ({} bytes)", blob.len()),
            },
            Err(e) => format!("unreadable ({e}); open falls back to full index rebuild"),
        };
        // Journal residue is likewise advisory: a sealed journal is
        // replayed by the next open, stale residue was never applied.
        r.journal = match &self.opts.path {
            None => crate::journal::JournalState::Absent.to_string(),
            Some(dir) => {
                let vfs: &dyn Vfs = self.opts.vfs.as_deref().unwrap_or(&RealVfs);
                match vfs.open(&crate::journal::journal_path(dir)) {
                    Ok(mut f) => crate::journal::inspect(f.as_mut()).to_string(),
                    Err(e) => {
                        crate::journal::JournalState::Stale { reason: e.to_string() }.to_string()
                    }
                }
            }
        };
        let iter = match self.docs.iter() {
            Ok(i) => i,
            Err(e) => {
                r.errors.push(format!("document btree unreadable: {e}"));
                // The catalog structure is gone, but the self-identifying
                // metadata records may survive in the heap: count what a
                // salvage rebuild could restore.
                r.salvageable_docs = crate::heap::salvage_scan(&self.pool)
                    .into_iter()
                    .filter(|(_, payload)| DocMeta::decode(payload).is_ok())
                    .count();
                return r;
            }
        };
        for entry in iter {
            let (k, rid_bytes) = match entry {
                Ok(kv) => kv,
                Err(e) => {
                    r.errors.push(format!("document btree walk failed: {e}"));
                    break;
                }
            };
            if k.len() != 4 {
                r.errors.push(format!("bad doc key of {} bytes", k.len()));
                continue;
            }
            let doc = DocId(u32::from_be_bytes(k[..4].try_into().expect("fixed-width slice")));
            r.docs += 1;
            let meta = match RecordId::from_bytes(&rid_bytes)
                .and_then(|rid| self.heap.get(rid))
                .and_then(|b| DocMeta::decode(&b))
            {
                Ok(m) => m,
                Err(e) => {
                    r.errors.push(format!("doc {doc}: metadata unreadable: {e}"));
                    continue;
                }
            };
            if meta.doc != doc {
                r.errors.push(format!(
                    "doc {doc} ({}): metadata claims doc id {}",
                    meta.name, meta.doc
                ));
            }
            if let Some(rid) = meta.current_rid {
                if let Err(e) = self.heap.get(rid).and_then(|b| decode_tree(&b)) {
                    r.errors.push(format!(
                        "doc {doc} ({}): current version unreadable: {e}",
                        meta.name
                    ));
                }
            }
            for e in &meta.entries {
                r.versions_checked += 1;
                for rid in [e.delta_rid, e.snapshot_rid].into_iter().flatten() {
                    if let Err(err) = self.heap.get(rid) {
                        r.errors.push(format!(
                            "doc {doc} ({}) v{}: stored record unreadable: {err}",
                            meta.name, e.version
                        ));
                    }
                }
            }
            for e in &meta.entries {
                if e.kind != VersionKind::Content {
                    continue;
                }
                match self.reconstruct_counted(&meta, doc, e.version, false) {
                    Ok(_) => r.reconstructed += 1,
                    Err(err) => r.errors.push(format!(
                        "doc {doc} ({}) v{}: reconstruction failed: {err}",
                        meta.name, e.version
                    )),
                }
            }
        }
        // Classify checksum failures by reachability: a CRC-dirty page no
        // live structure references is a *leak* (salvage abandons btree
        // pages by design), not corruption — report it without failing
        // the sweep. This partition is skipped on the unreadable-btree
        // early return above, where reachability cannot be established.
        if !r.bad_pages.is_empty() {
            let reachable = self.reachable_pages();
            let (bad, leaked) =
                std::mem::take(&mut r.bad_pages).into_iter().partition(|p| reachable.contains(p));
            r.bad_pages = bad;
            r.leaked_pages = leaked;
        }
        r
    }

    /// Every page id reachable from a live structure, best-effort: the
    /// header, the free list, the heap's slotted chain, every record's
    /// overflow chain, the catalog / document-directory / EID btrees and
    /// the index-checkpoint chain. Unreadable links contribute the
    /// referenced page id itself (so a corrupt-but-referenced page counts
    /// as reachable) and end their walk.
    fn reachable_pages(&self) -> std::collections::HashSet<u64> {
        use crate::pager::PageId;
        let mut reach = std::collections::HashSet::new();
        reach.insert(0u64); // header page
                            // Free-list chain: each free page holds the next id in its first
                            // 8 bytes. The insert doubles as the cycle guard.
        let mut next = self.pool.pager().free_head();
        while next != 0 && reach.insert(next) {
            match self.pool.get(PageId(next)) {
                Ok(frame) => {
                    let buf = frame.read();
                    next = u64::from_le_bytes(buf[0..8].try_into().expect("fixed-width slice"));
                }
                Err(_) => break,
            }
        }
        for p in self.heap.pages() {
            reach.insert(p.0);
        }
        for p in self.catalog.pages() {
            reach.insert(p.0);
        }
        for p in self.docs.pages() {
            reach.insert(p.0);
        }
        // The EID index root slot belongs to txdb-index; only walk it when
        // a tree was ever planted (BTree::open would allocate one — fsck
        // must not mutate the store).
        if !self.pool.pager().root(roots::EID_INDEX).is_null() {
            if let Ok(eid) = BTree::open(self.pool.clone(), roots::EID_INDEX) {
                for p in eid.pages() {
                    reach.insert(p.0);
                }
            }
        }
        for p in self.ckpt.pages() {
            reach.insert(p.0);
        }
        // Overflow chains hang off individual records, not the slotted
        // chain: walk every record the document directory references.
        if let Ok(iter) = self.docs.iter() {
            for (_, rid_bytes) in iter.flatten() {
                let Ok(rid) = RecordId::from_bytes(&rid_bytes) else { continue };
                for p in self.heap.record_pages(rid) {
                    reach.insert(p.0);
                }
                let Ok(meta) = self.heap.get(rid).and_then(|b| DocMeta::decode(&b)) else {
                    continue;
                };
                let rids = meta.current_rid.into_iter().chain(
                    meta.entries.iter().flat_map(|e| e.delta_rid.into_iter().chain(e.snapshot_rid)),
                );
                for r2 in rids {
                    for p in self.heap.record_pages(r2) {
                        reach.insert(p.0);
                    }
                }
            }
        }
        reach
    }

    /// Physically truncates a torn WAL tail, making the log end at the
    /// last intact record. Returns the bytes removed. Allowed even in
    /// salvage mode — it is part of the repair path — but note it does
    /// not clear read-only: reopen the store after repairing.
    pub fn repair_wal_tail(&self) -> Result<u64> {
        let _g = self.sync.write();
        self.wal.repair_tail()
    }

    /// Removes journal residue: retires a stale (torn, never-replayable)
    /// journal, or a sealed one whose generation the fence proves fully
    /// applied. Returns `true` when residue was removed. A sealed journal
    /// that is *not* provably applied is left alone — it would be needed
    /// at the next open — though through this handle that state cannot
    /// arise: open replayed (and retired) any sealed journal it found.
    /// Allowed in salvage mode: it is part of the repair path.
    pub fn retire_journal(&self) -> Result<bool> {
        let _g = self.sync.write();
        let Some(dir) = &self.opts.path else {
            return Ok(false);
        };
        let vfs: &dyn Vfs = self.opts.vfs.as_deref().unwrap_or(&RealVfs);
        let mut file = vfs.open(&crate::journal::journal_path(dir))?;
        match crate::journal::inspect(file.as_mut()) {
            crate::journal::JournalState::Absent => Ok(false),
            crate::journal::JournalState::Stale { .. } => {
                crate::journal::retire(file.as_mut())?;
                Ok(true)
            }
            crate::journal::JournalState::Sealed { generation, .. } => {
                if generation <= self.pool.pager().root(roots::CKPT_GEN).0 {
                    crate::journal::retire(file.as_mut())?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Rebuilds the catalog and document-directory B+-trees from
    /// surviving heap records — the deep salvage path for when corruption
    /// hit the btree pages themselves (or the metadata records they point
    /// at). Metadata records are self-identifying (magic prefix plus
    /// embedded document id), so the full `name → id → metadata` mapping
    /// is reconstructible from a raw page sweep alone. Returns the number
    /// of documents restored.
    ///
    /// The old btree pages are abandoned, not freed: salvage must not
    /// trust broken structures enough to walk them, so their pages leak
    /// until the file is rebuilt (`fsck` stays the judge of what else is
    /// damaged). Allowed in salvage mode; reopen the store afterwards to
    /// clear read-only and rebuild the in-memory indexes.
    pub fn salvage_rebuild_catalog(&self) -> Result<usize> {
        let _g = self.sync.write();
        let mut metas: std::collections::HashMap<DocId, (RecordId, DocMeta)> =
            std::collections::HashMap::new();
        for (rid, payload) in crate::heap::salvage_scan(&self.pool) {
            let Ok(meta) = DocMeta::decode(&payload) else {
                continue;
            };
            // One live metadata record per document is the invariant;
            // if corruption broke it, keep the longest history.
            match metas.entry(meta.doc) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((rid, meta));
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if meta.entries.len() > o.get().1.entries.len() {
                        o.insert((rid, meta));
                    }
                }
            }
        }
        let pager = self.pool.pager();
        pager.set_root(roots::CATALOG, crate::pager::PageId::NULL);
        pager.set_root(roots::DOCS, crate::pager::PageId::NULL);
        // BTree handles are stateless (pool + root slot); re-opening with
        // a NULL slot plants a fresh empty root that `self.catalog` /
        // `self.docs` pick up on their next operation.
        let catalog = BTree::open(self.pool.clone(), roots::CATALOG)?;
        let docs = BTree::open(self.pool.clone(), roots::DOCS)?;
        let mut max_id = 0u64;
        for (doc, (rid, meta)) in &metas {
            catalog.insert(meta.name.as_bytes(), &doc.0.to_be_bytes())?;
            docs.insert(&doc.0.to_be_bytes(), &rid.to_bytes())?;
            max_id = max_id.max(doc.0 as u64);
        }
        // NEXT_DOC holds the last id handed out; never let it fall below
        // a salvaged id (ids must stay unique across the rebuild).
        let next = pager.root(roots::NEXT_DOC).0.max(max_id);
        pager.set_root(roots::NEXT_DOC, crate::pager::PageId(next));
        self.meta_cache.clear();
        self.vcache.clear();
        self.pool.flush_all()?;
        Ok(metas.len())
    }

    /// Returns leaked pages — CRC-dirty pages no live structure
    /// references, the residue [`DocumentStore::salvage_rebuild_catalog`]
    /// leaves behind when it abandons broken btree pages — to the free
    /// list. Freeing rewrites each page (zeroed, next-free pointer in the
    /// first 8 bytes), so afterwards a full checksum sweep comes back
    /// clean and `allocate` reuses the space. Returns the reclaimed ids.
    ///
    /// Only *unreachable* checksum failures are touched: a CRC-dirty page
    /// something still references is real corruption and is left in place
    /// for `fsck` to report. The freed images land through the buffer
    /// pool (journal-protected) and are made durable by a checkpoint
    /// before this returns, so a crash can't resurrect half a free list.
    pub fn reclaim_leaked_pages(&self) -> Result<Vec<u64>> {
        let leaked = {
            let _g = self.sync.write();
            self.ensure_writable()?;
            let bad = self.pool.pager().verify_checksums()?;
            if bad.is_empty() {
                return Ok(Vec::new());
            }
            let reachable = self.reachable_pages();
            let leaked: Vec<u64> = bad.into_iter().filter(|p| !reachable.contains(p)).collect();
            for &p in &leaked {
                self.pool.free_page(crate::pager::PageId(p))?;
            }
            leaked
        };
        // The store lock is released before checkpointing — checkpoint
        // takes it itself (the locks are not re-entrant). Nothing can
        // re-reference the freed pages in the window: they are on the
        // free list, and allocation from it is also behind the lock.
        if !leaked.is_empty() {
            self.checkpoint()?;
            self.metrics.counter("fsck.pages_reclaimed").add(leaked.len() as u64);
        }
        Ok(leaked)
    }
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(b: &[u8]) -> Result<(String, &[u8])> {
    if b.len() < 4 {
        return Err(Error::WalCorrupt(0, "short string".into()));
    }
    let len = u32::from_le_bytes(b[..4].try_into().expect("fixed-width slice")) as usize;
    if b.len() < 4 + len {
        return Err(Error::WalCorrupt(0, "truncated string".into()));
    }
    let s = String::from_utf8(b[4..4 + len].to_vec())
        .map_err(|_| Error::WalCorrupt(0, "bad utf8".into()))?;
    Ok((s, &b[4 + len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::serialize::to_string;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    #[test]
    fn create_and_read_back() {
        let store = DocumentStore::in_memory();
        let r = store
            .put("guide.com/restaurants", "<guide><r><n>Napoli</n></r></guide>", ts(1))
            .unwrap();
        assert!(r.created && r.changed);
        assert_eq!(r.version, VersionId(0));
        let t = store.current_tree(r.doc).unwrap();
        assert_eq!(to_string(&t), "<guide><r><n>Napoli</n></r></guide>");
        // XIDs assigned 1..
        assert!(t.iter().all(|n| !t.node(n).xid.is_none()));
        assert_eq!(store.doc_id("guide.com/restaurants").unwrap(), Some(r.doc));
        assert_eq!(store.doc_name(r.doc).unwrap(), "guide.com/restaurants");
        assert_eq!(store.list().unwrap().len(), 1);
    }

    #[test]
    fn update_chain_and_reconstruct() {
        let store = DocumentStore::in_memory();
        let r0 = store.put("d", "<g><p>1</p></g>", ts(1)).unwrap();
        let doc = r0.doc;
        for (i, price) in [(2u64, "2"), (3, "3"), (4, "4")] {
            let r = store.put("d", &format!("<g><p>{price}</p></g>"), ts(i)).unwrap();
            assert!(r.changed && !r.created);
            assert!(r.delta.is_some());
        }
        // Version entries (delta index).
        let vs = store.versions(doc).unwrap();
        assert_eq!(vs.len(), 4);
        assert!(vs[0].delta_rid.is_none());
        assert!(vs[1..].iter().all(|e| e.delta_rid.is_some()));
        // Reconstruct every version.
        for (v, want) in [(0u32, "1"), (1, "2"), (2, "3"), (3, "4")] {
            let (t, applied) = store.version_tree_counted(doc, VersionId(v)).unwrap();
            assert_eq!(to_string(&t), format!("<g><p>{want}</p></g>"));
            assert_eq!(applied as u32, 3 - v, "backward chain length");
        }
    }

    #[test]
    fn unchanged_put_records_nothing() {
        let store = DocumentStore::in_memory();
        let r0 = store.put("d", "<a>same</a>", ts(1)).unwrap();
        let r1 = store.put("d", "<a>same</a>", ts(2)).unwrap();
        assert!(!r1.changed);
        assert_eq!(r1.version, r0.version);
        assert_eq!(store.versions(r0.doc).unwrap().len(), 1);
    }

    #[test]
    fn non_monotonic_time_rejected() {
        let store = DocumentStore::in_memory();
        store.put("d", "<a>1</a>", ts(5)).unwrap();
        assert!(store.put("d", "<a>2</a>", ts(5)).is_err());
        assert!(store.put("d", "<a>2</a>", ts(4)).is_err());
        assert!(store.delete("d", ts(3)).is_err());
    }

    #[test]
    fn version_at_timeline() {
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<a>1</a>", ts(10)).unwrap().doc;
        store.put("d", "<a>2</a>", ts(20)).unwrap();
        store.put("d", "<a>3</a>", ts(30)).unwrap();
        assert_eq!(store.version_at(doc, ts(5)).unwrap(), None);
        assert_eq!(store.version_at(doc, ts(10)).unwrap(), Some(VersionId(0)));
        assert_eq!(store.version_at(doc, ts(15)).unwrap(), Some(VersionId(0)));
        assert_eq!(store.version_at(doc, ts(20)).unwrap(), Some(VersionId(1)));
        assert_eq!(store.version_at(doc, ts(99)).unwrap(), Some(VersionId(2)));
        // Intervals.
        assert_eq!(
            store.version_interval(doc, VersionId(0)).unwrap(),
            Interval::new(ts(10), ts(20))
        );
        assert!(store.version_interval(doc, VersionId(2)).unwrap().is_current());
    }

    #[test]
    fn delete_and_tombstone_semantics() {
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<a>1</a>", ts(10)).unwrap().doc;
        store.put("d", "<a>2</a>", ts(20)).unwrap();
        let del = store.delete("d", ts(30)).unwrap().unwrap();
        assert_eq!(del.version, VersionId(2));
        assert!(store.is_deleted(doc).unwrap());
        assert!(store.current_tree(doc).is_err());
        // History still reconstructible.
        assert_eq!(to_string(&store.version_tree(doc, VersionId(1)).unwrap()), "<a>2</a>");
        // version_at inside the tombstone interval → None.
        assert_eq!(store.version_at(doc, ts(35)).unwrap(), None);
        assert_eq!(store.version_at(doc, ts(25)).unwrap(), Some(VersionId(1)));
        // Double delete is a no-op.
        assert!(store.delete("d", ts(40)).unwrap().is_none());
        // Deleting a non-existent doc is None.
        assert!(store.delete("nope", ts(50)).unwrap().is_none());
    }

    #[test]
    fn vacuum_invalidates_cached_versions() {
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<a>1</a>", ts(10)).unwrap().doc;
        for (i, p) in [(20u64, "2"), (30, "3"), (40, "4"), (50, "5")] {
            store.put("d", &format!("<a>{p}</a>"), ts(i)).unwrap();
        }
        // Warm the cache with every version (the current version costs no
        // deltas and is not auto-cached, so offer it explicitly).
        for v in 0..5u32 {
            let t = store.version_tree(doc, VersionId(v)).unwrap();
            store.cache_version(doc, VersionId(v), &t);
            assert!(store.cached_version(doc, VersionId(v)).is_some());
        }
        // Purge history before ts(45): v0..v2 go, v3 and the current v4 stay.
        let stats = store.vacuum("d", ts(45)).unwrap().unwrap();
        assert_eq!(stats.purged_versions, 3);
        // Every cached materialisation of the document is dropped — a
        // purged version must never be served from a stale cache entry.
        for v in 0..5u32 {
            assert!(
                store.cached_version(doc, VersionId(v)).is_none(),
                "v{v} survived vacuum in the cache"
            );
        }
        assert!(store.version_tree(doc, VersionId(0)).is_err());
        // Surviving versions reconstruct (and re-cache) correctly.
        let (t, applied) = store.version_tree_counted(doc, VersionId(3)).unwrap();
        assert_eq!(to_string(&t), "<a>4</a>");
        assert_eq!(applied, 1);
        assert!(store.cached_version(doc, VersionId(3)).is_some());
    }

    #[test]
    fn resurrection_after_delete() {
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<a><b>x</b></a>", ts(10)).unwrap().doc;
        store.delete("d", ts(20)).unwrap().unwrap();
        let r = store.put("d", "<a><b>x</b></a>", ts(30)).unwrap();
        assert_eq!(r.doc, doc);
        assert!(r.changed);
        assert_eq!(r.version, VersionId(2));
        assert!(!store.is_deleted(doc).unwrap());
        // Reintroduced content gets FRESH xids (never reused, §3.2)?
        // The content is identical, so the diff matches everything and
        // XIDs are preserved — identity survives a delete+restore of
        // identical content (the tombstone only interrupts validity).
        assert_eq!(store.version_at(doc, ts(25)).unwrap(), None);
        assert_eq!(store.version_at(doc, ts(30)).unwrap(), Some(VersionId(2)));
        let t = store.current_tree(doc).unwrap();
        assert_eq!(to_string(&t), "<a><b>x</b></a>");
    }

    #[test]
    fn snapshots_bound_reconstruction() {
        let store =
            DocumentStore::open(StoreOptions { snapshot_every: Some(4), ..Default::default() })
                .unwrap()
                .0;
        let doc = store.put("d", "<a><v>0</v></a>", ts(1)).unwrap().doc;
        for i in 1..=20u64 {
            store.put("d", &format!("<a><v>{i}</v></a>"), ts(1 + i)).unwrap();
        }
        // Snapshots exist at versions 4, 8, 12, 16, 20.
        let vs = store.versions(doc).unwrap();
        let snap_versions: Vec<u32> =
            vs.iter().filter(|e| e.snapshot_rid.is_some()).map(|e| e.version.0).collect();
        assert_eq!(snap_versions, vec![4, 8, 12, 16, 20]);
        // Reconstructing version 5 starts from snapshot 8: 3 deltas.
        let (t, applied) = store.version_tree_counted(doc, VersionId(5)).unwrap();
        assert_eq!(to_string(&t), "<a><v>5</v></a>");
        assert_eq!(applied, 3);
        // Direct snapshot hit: 0 deltas.
        let (_, applied) = store.version_tree_counted(doc, VersionId(8)).unwrap();
        assert_eq!(applied, 0);
        // Without snapshots it would have been 15 for version 5.
    }

    #[test]
    fn many_documents() {
        let store = DocumentStore::in_memory();
        for i in 0..50 {
            store.put(&format!("doc{i}"), &format!("<d><n>{i}</n></d>"), ts(i + 1)).unwrap();
        }
        assert_eq!(store.list().unwrap().len(), 50);
        let doc = store.doc_id("doc33").unwrap().unwrap();
        assert_eq!(to_string(&store.current_tree(doc).unwrap()), "<d><n>33</n></d>");
    }

    #[test]
    fn xids_preserved_across_versions() {
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<g><r><n>Napoli</n><p>15</p></r></g>", ts(1)).unwrap().doc;
        let t0 = store.current_tree(doc).unwrap();
        let r_xid = {
            let r = t0.iter().find(|&n| t0.node(n).name() == Some("r")).unwrap();
            t0.node(r).xid
        };
        store.put("d", "<g><r><n>Napoli</n><p>18</p></r></g>", ts(2)).unwrap();
        let t1 = store.current_tree(doc).unwrap();
        let r1 = t1.iter().find(|&n| t1.node(n).name() == Some("r")).unwrap();
        assert_eq!(t1.node(r1).xid, r_xid, "persistent identity across versions");
    }

    #[test]
    fn wal_recovery_replays_tail() {
        let dir = std::env::temp_dir().join(format!("txdb-repo-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
        {
            let (store, rep) = DocumentStore::open(opts.clone()).unwrap();
            assert_eq!(rep.replayed, 0);
            store.put("d", "<a>1</a>", ts(1)).unwrap();
            store.checkpoint().unwrap();
            // Post-checkpoint ops land only in the WAL...
            store.put("d", "<a>2</a>", ts(2)).unwrap();
            store.put("e", "<b>new</b>", ts(3)).unwrap();
            store.wal.sync().unwrap();
            // ...and the process "crashes" here (no checkpoint, drop
            // without flushing pages).
        }
        {
            let (store, rep) = DocumentStore::open(opts.clone()).unwrap();
            assert_eq!(rep.replayed, 2, "two ops after the checkpoint");
            let d = store.doc_id("d").unwrap().unwrap();
            assert_eq!(to_string(&store.current_tree(d).unwrap()), "<a>2</a>");
            assert_eq!(store.versions(d).unwrap().len(), 2);
            let e = store.doc_id("e").unwrap().unwrap();
            assert_eq!(to_string(&store.current_tree(e).unwrap()), "<b>new</b>");
            // Recovery checkpointed: reopening again replays nothing.
        }
        {
            let (_, rep) = DocumentStore::open(opts).unwrap();
            assert_eq!(rep.replayed, 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_reopen_without_crash() {
        let dir = std::env::temp_dir().join(format!("txdb-repo-p-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
        {
            let (store, _) = DocumentStore::open(opts.clone()).unwrap();
            for i in 1..=5u64 {
                store.put("d", &format!("<a>{i}</a>"), ts(i)).unwrap();
            }
            store.checkpoint().unwrap();
        }
        let (store, rep) = DocumentStore::open(opts).unwrap();
        assert_eq!(rep.replayed, 0);
        let d = store.doc_id("d").unwrap().unwrap();
        assert_eq!(store.versions(d).unwrap().len(), 5);
        for v in 0..5u32 {
            assert_eq!(
                to_string(&store.version_tree(d, VersionId(v)).unwrap()),
                format!("<a>{}</a>", v + 1)
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn space_stats_accumulate() {
        let store = DocumentStore::in_memory();
        store.put("d", "<a><b>content</b></a>", ts(1)).unwrap();
        store.put("d", "<a><b>changed</b></a>", ts(2)).unwrap();
        let s = store.space_stats().unwrap();
        assert!(s.current_bytes > 0);
        assert!(s.delta_bytes > 0);
        assert!(s.meta_bytes > 0);
        assert_eq!(s.snapshot_bytes, 0);
        assert!(s.pages > 0);
    }

    #[test]
    fn timestamps_in_stored_versions() {
        // §4: element timestamps reflect update times across versions.
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<g><r><n>N</n><p>15</p></r></g>", ts(100)).unwrap().doc;
        store.put("d", "<g><r><n>N</n><p>18</p></r></g>", ts(200)).unwrap();
        let t = store.current_tree(doc).unwrap();
        let root = t.root().unwrap();
        // Effective ts of the root reflects the price update.
        assert_eq!(t.effective_ts(root), ts(200));
        // The name element was not touched.
        let name = t.iter().find(|&n| t.node(n).name() == Some("n")).unwrap();
        assert_eq!(t.effective_ts(name), ts(100));
        // Reconstructed v0 has original timestamps everywhere.
        let t0 = store.version_tree(doc, VersionId(0)).unwrap();
        assert_eq!(t0.effective_ts(t0.root().unwrap()), ts(100));
    }

    #[test]
    fn vacuum_purges_history_keeps_tail() {
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<a><v>0</v></a>", ts(10)).unwrap().doc;
        for i in 1..=6u64 {
            store.put("d", &format!("<a><v>{i}</v></a>"), ts(10 + i * 10)).unwrap();
        }
        let before_space = store.space_stats().unwrap();
        // Purge everything not valid at/after t=45 → versions 0..3 end at
        // 20,30,40 — wait: v0 [10,20), v1 [20,30), v2 [30,40), v3 [40,50).
        // end <= 45 purges v0..v2; v3 (ends 50) survives.
        let stats = store.vacuum("d", Timestamp::from_micros(45 * 1000)).unwrap().unwrap();
        assert_eq!(stats.purged_versions, 3);
        assert!(stats.freed_bytes > 0);
        let after_space = store.space_stats().unwrap();
        assert!(after_space.delta_bytes < before_space.delta_bytes);
        // Purged versions are unselectable and unreconstructable.
        assert_eq!(store.version_at(doc, ts(15)).unwrap(), None);
        assert!(store.version_tree(doc, VersionId(1)).is_err());
        // Retained versions fully intact.
        assert_eq!(store.version_at(doc, ts(45)).unwrap(), Some(VersionId(3)));
        for v in 3..=6u32 {
            assert_eq!(
                to_string(&store.version_tree(doc, VersionId(v)).unwrap()),
                format!("<a><v>{v}</v></a>")
            );
        }
        // Idempotent: vacuuming again frees nothing more.
        let again = store.vacuum("d", Timestamp::from_micros(45 * 1000)).unwrap().unwrap();
        assert_eq!(again.purged_versions, 0);
        assert_eq!(again.freed_bytes, 0);
        // Unknown doc → None.
        assert!(store.vacuum("nope", ts(99)).unwrap().is_none());
    }

    #[test]
    fn vacuum_never_purges_current() {
        let store = DocumentStore::in_memory();
        let doc = store.put("d", "<a>only</a>", ts(10)).unwrap().doc;
        let stats = store.vacuum("d", Timestamp::FOREVER).unwrap().unwrap();
        // The current version's validity is [t, FOREVER) — end > any
        // horizon, so it always survives.
        assert_eq!(stats.purged_versions, 0);
        assert_eq!(to_string(&store.current_tree(doc).unwrap()), "<a>only</a>");
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("txdb-repo-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fsck_clean_on_healthy_store() {
        let store = DocumentStore::in_memory();
        store.put("d", "<a><v>1</v></a>", ts(1)).unwrap();
        store.put("d", "<a><v>2</v></a>", ts(2)).unwrap();
        store.put("e", "<b>x</b>", ts(3)).unwrap();
        store.delete("e", ts(4)).unwrap().unwrap();
        let r = store.fsck();
        assert!(r.is_clean(), "unexpected problems: {:?}", r.errors);
        assert_eq!(r.docs, 2);
        assert_eq!(r.versions_checked, 4);
        assert_eq!(r.reconstructed, 3, "two content versions of d, one of e");
        assert!(r.to_string().contains("clean"));
    }

    #[test]
    fn salvage_open_on_corrupt_wal_record() {
        let dir = tmpdir("salvage");
        let opts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
        {
            let (store, _) = DocumentStore::open(opts.clone()).unwrap();
            store.put("d", "<a>1</a>", ts(1)).unwrap();
            store.checkpoint().unwrap();
            store.put("d", "<a>2</a>", ts(2)).unwrap();
            // A structurally intact frame whose body is garbage: its CRC
            // passes, so this is damage beyond the torn tail and recovery
            // cannot simply drop it.
            store.wal.append(&[0xFF, 1, 2, 3]).unwrap();
            store.wal.sync().unwrap();
        }
        let (store, rep) = DocumentStore::open(opts).unwrap();
        let reason = rep.salvage.expect("recovery should degrade, not fail");
        assert!(reason.contains("unknown wal op"), "reason: {reason}");
        assert_eq!(rep.replayed, 1, "records before the damage still apply");
        assert!(store.is_read_only());
        assert!(store.read_only_reason().is_some());
        // Surviving data stays readable...
        let d = store.doc_id("d").unwrap().unwrap();
        assert_eq!(to_string(&store.current_tree(d).unwrap()), "<a>2</a>");
        // ...mutations are rejected with a structured error...
        assert!(matches!(store.put("d", "<a>3</a>", ts(3)), Err(Error::ReadOnly(_))));
        assert!(matches!(store.delete("d", ts(3)), Err(Error::ReadOnly(_))));
        assert!(matches!(store.checkpoint(), Err(Error::ReadOnly(_))));
        // ...and the WAL is preserved for diagnosis (no checkpoint ran).
        let r = store.fsck();
        assert!(r.wal_records > 0, "WAL preserved in salvage mode");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_on_corrupt_roots_is_a_structured_error() {
        let dir = tmpdir("corrupt-roots");
        let opts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
        {
            let (store, _) = DocumentStore::open(opts.clone()).unwrap();
            store.put("d", "<a>1</a>", ts(1)).unwrap();
            store.checkpoint().unwrap();
        }
        // Flip one byte in every data page except the header: the
        // component roots themselves are gone, so there is nothing left
        // to salvage — but the failure must still be a structured
        // checksum error, never a panic.
        let db = dir.join("data.db");
        let mut bytes = std::fs::read(&db).unwrap();
        let phys = crate::pager::PHYS_PAGE_SIZE;
        for page in 1..bytes.len() / phys {
            bytes[page * phys + 100] ^= 0x40;
        }
        std::fs::write(&db, &bytes).unwrap();
        match DocumentStore::open(opts) {
            Ok(_) => panic!("open should fail on corrupt root pages"),
            Err(Error::Corruption { .. }) => {}
            Err(e) => panic!("expected a checksum error, got: {e}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_reports_damaged_record_pages() {
        let dir = tmpdir("fsck-dirty");
        let opts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
        {
            let (store, _) = DocumentStore::open(opts.clone()).unwrap();
            // An over-page-size version goes to overflow pages at the end
            // of the file — the only pages `open` does not read (it walks
            // the slotted-page chain and the btree roots).
            store.put("d", "<a>small</a>", ts(1)).unwrap();
            let body = "x".repeat(3 * crate::pager::PAGE_SIZE);
            store.put("d", &format!("<a><v>{body}</v></a>"), ts(2)).unwrap();
            store.checkpoint().unwrap();
        }
        // Damage the last page of the file (an overflow page of the big
        // current version): open succeeds — nothing to replay, roots
        // intact — but fsck's full sweep must find the bad page.
        let db = dir.join("data.db");
        let mut bytes = std::fs::read(&db).unwrap();
        let phys = crate::pager::PHYS_PAGE_SIZE;
        let victim = bytes.len() / phys - 1;
        assert!(victim >= 1);
        bytes[victim * phys + 7] ^= 0x01;
        std::fs::write(&db, &bytes).unwrap();
        let (store, rep) = DocumentStore::open(opts).unwrap();
        assert!(rep.salvage.is_none(), "no WAL to replay, open stays clean");
        let r = store.fsck();
        assert!(!r.is_clean());
        assert_eq!(r.bad_pages, vec![victim as u64]);
        assert!(r.to_string().contains("CORRUPT"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_counts_leaked_pages_without_corrupt_verdict() {
        let dir = tmpdir("fsck-leak");
        let opts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
        let victim;
        {
            let (store, _) = DocumentStore::open(opts.clone()).unwrap();
            store.put("d", "<a>1</a>", ts(1)).unwrap();
            store.put("e", "<b>2</b>", ts(2)).unwrap();
            store.checkpoint().unwrap();
            // Salvage abandons the old catalog/directory btree pages by
            // design: it must not trust broken structures enough to walk
            // (and free) them, so they leak until the file is rebuilt.
            let abandoned = store.catalog.pages();
            assert!(!abandoned.is_empty());
            victim = abandoned[0].0;
            store.salvage_rebuild_catalog().unwrap();
            store.checkpoint().unwrap();
        }
        // Bit-rot on the leaked page: CRC-dirty, but nothing references
        // it — fsck must report a leak, not corruption.
        let db = dir.join("data.db");
        let mut bytes = std::fs::read(&db).unwrap();
        let phys = crate::pager::PHYS_PAGE_SIZE;
        bytes[victim as usize * phys + 7] ^= 0x01;
        std::fs::write(&db, &bytes).unwrap();
        let (store, _) = DocumentStore::open(opts).unwrap();
        let r = store.fsck();
        assert!(r.bad_pages.is_empty(), "leaked page misclassified as corrupt: {r}");
        assert_eq!(r.leaked_pages, vec![victim]);
        assert!(r.is_clean(), "a leak must not fail the sweep: {r}");
        assert!(r.to_string().contains("leaked pages"));
        // Data survives untouched.
        assert_eq!(store.list().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reclaim_returns_leaked_pages_to_the_free_list() {
        let dir = tmpdir("fsck-reclaim");
        let opts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
        let victim;
        {
            let (store, _) = DocumentStore::open(opts.clone()).unwrap();
            store.put("d", "<a>1</a>", ts(1)).unwrap();
            store.put("e", "<b>2</b>", ts(2)).unwrap();
            store.checkpoint().unwrap();
            let abandoned = store.catalog.pages();
            assert!(!abandoned.is_empty());
            victim = abandoned[0].0;
            store.salvage_rebuild_catalog().unwrap();
            store.checkpoint().unwrap();
        }
        // Bit-rot on the abandoned btree page, as in the leak test above.
        let db = dir.join("data.db");
        let mut bytes = std::fs::read(&db).unwrap();
        let phys = crate::pager::PHYS_PAGE_SIZE;
        bytes[victim as usize * phys + 7] ^= 0x01;
        std::fs::write(&db, &bytes).unwrap();
        let (store, _) = DocumentStore::open(opts.clone()).unwrap();
        let before = store.fsck();
        assert_eq!(before.leaked_pages, vec![victim]);
        let freed = store.reclaim_leaked_pages().unwrap();
        assert_eq!(freed, vec![victim]);
        // The freed page was rewritten: the full CRC sweep is clean and
        // the leak is gone from the report.
        let after = store.fsck();
        assert!(after.is_clean(), "{after}");
        assert!(after.bad_pages.is_empty(), "{after}");
        assert!(after.leaked_pages.is_empty(), "{after}");
        assert_eq!(store.list().unwrap().len(), 2);
        // Nothing left to do on a second pass.
        assert!(store.reclaim_leaked_pages().unwrap().is_empty());
        // The reclaimed page is genuinely reusable: new writes allocate
        // from the free list before growing the file.
        let pages_before = store.pool.pager().page_count();
        store.put("f", "<c>3</c>", ts(3)).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(store.pool.pager().page_count(), pages_before);
        // And it all survives a reopen.
        drop(store);
        let (store, _) = DocumentStore::open(opts).unwrap();
        assert!(store.fsck().is_clean());
        assert_eq!(store.list().unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_doc_errors() {
        let store = DocumentStore::in_memory();
        assert_eq!(store.doc_id("missing").unwrap(), None);
        assert!(store.doc_name(DocId(99)).is_err());
        assert!(store.current_tree(DocId(99)).is_err());
        let doc = store.put("d", "<a/>", ts(1)).unwrap().doc;
        assert!(store.version_tree(doc, VersionId(7)).is_err());
    }
}
