//! Durable index-checkpoint blob storage.
//!
//! The in-memory indexes (temporal full-text index and delta-content
//! index) are rebuilt at open by replaying document history — O(history).
//! To make open O(index) instead, the database layer serializes them into
//! a single blob at checkpoint time and [`CheckpointStore`] persists that
//! blob in ordinary storage pages, rooted at
//! [`crate::repo::roots::FTI_META`].
//!
//! ## Page format
//!
//! The root page holds a fixed header:
//!
//! ```text
//! [magic u32 "TXCK"][format u32][generation u64]
//! [total_len u64][total_crc u32][first_page u64][chain_pages u32]
//! ```
//!
//! The blob is chunked across a singly-linked chain of pages:
//!
//! ```text
//! [next u64][chunk_len u32][chunk_crc u32] payload…
//! ```
//!
//! Every chunk carries its own CRC32 (the same polynomial as the page
//! trailers and WAL records from PR 1) **in addition to** the pager's
//! physical page trailer. The application-level CRC matters because the
//! memory backend has no page trailers, and because a torn multi-page
//! checkpoint can be composed of individually-valid pages from two
//! different generations — the `total_crc` over the reassembled blob
//! catches exactly that.
//!
//! A checkpoint is strictly advisory: every read failure is surfaced as a
//! structured error that the open path treats as "no checkpoint, replay
//! everything". Corruption here can cost time, never data.

use std::sync::Arc;

use txdb_base::{Error, Result};

use crate::buffer::BufferPool;
use crate::pager::{PageId, PAGE_SIZE};
use crate::wal::crc32;

const MAGIC: u32 = 0x5458_434B; // "TXCK"
const FORMAT: u32 = 1;
const ROOT_HEADER: usize = 4 + 4 + 8 + 8 + 4 + 8 + 4;
const CHAIN_HEADER: usize = 8 + 4 + 4;
const CHUNK_CAP: usize = PAGE_SIZE - CHAIN_HEADER;

/// Summary of the stored checkpoint (for `stats` / `fsck`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Monotonic write counter (1 = first checkpoint ever written).
    pub generation: u64,
    /// Size of the serialized index blob in bytes.
    pub bytes: u64,
    /// Pages occupied by the blob chain (excluding the root page).
    pub pages: u32,
}

/// Blob storage for serialized indexes, rooted at a pager root slot.
///
/// Concurrency: callers serialize writes externally (the document store
/// invokes [`CheckpointStore::write`] under its writer lock); reads at
/// open time race with nothing.
pub struct CheckpointStore {
    pool: Arc<BufferPool>,
    slot: usize,
}

impl CheckpointStore {
    /// Attaches to `slot` of the pool's pager. No I/O happens until the
    /// first read or write.
    pub fn new(pool: Arc<BufferPool>, slot: usize) -> CheckpointStore {
        CheckpointStore { pool, slot }
    }

    fn read_root(&self) -> Result<Option<(Vec<u8>, PageId)>> {
        let root = self.pool.pager().root(self.slot);
        if root.is_null() {
            return Ok(None);
        }
        let frame = self.pool.get(root)?;
        let buf = frame.read().to_vec();
        Ok(Some((buf, root)))
    }

    fn parse_root(buf: &[u8]) -> Result<(u64, u64, u32, PageId, u32)> {
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("fixed-width slice"));
        if magic != MAGIC {
            return Err(Error::Corrupt(format!("index checkpoint: bad magic {magic:#010x}")));
        }
        let format = u32::from_le_bytes(buf[4..8].try_into().expect("fixed-width slice"));
        if format != FORMAT {
            return Err(Error::Corrupt(format!("index checkpoint: unknown format {format}")));
        }
        let generation = u64::from_le_bytes(buf[8..16].try_into().expect("fixed-width slice"));
        let total_len = u64::from_le_bytes(buf[16..24].try_into().expect("fixed-width slice"));
        let total_crc = u32::from_le_bytes(buf[24..28].try_into().expect("fixed-width slice"));
        let first = PageId(u64::from_le_bytes(buf[28..36].try_into().expect("fixed-width slice")));
        let pages = u32::from_le_bytes(buf[36..40].try_into().expect("fixed-width slice"));
        Ok((generation, total_len, total_crc, first, pages))
    }

    /// Reads the stored blob. `Ok(None)` means no checkpoint has ever
    /// been written; any structural or CRC problem is an error (callers
    /// fall back to a full rebuild).
    pub fn read(&self) -> Result<Option<Vec<u8>>> {
        let Some((root_buf, _)) = self.read_root()? else {
            return Ok(None);
        };
        let (_, total_len, total_crc, first, pages) = Self::parse_root(&root_buf)?;
        let mut blob = Vec::with_capacity(total_len as usize);
        let mut next = first;
        let mut walked = 0u32;
        while !next.is_null() {
            if walked >= pages {
                return Err(Error::Corrupt("index checkpoint: chain longer than header".into()));
            }
            walked += 1;
            let frame = self.pool.get(next)?;
            let page = frame.read();
            next = PageId(u64::from_le_bytes(page[0..8].try_into().expect("fixed-width slice")));
            let len =
                u32::from_le_bytes(page[8..12].try_into().expect("fixed-width slice")) as usize;
            let stored = u32::from_le_bytes(page[12..16].try_into().expect("fixed-width slice"));
            if len > CHUNK_CAP {
                return Err(Error::Corrupt(format!("index checkpoint: chunk of {len} bytes")));
            }
            let chunk = &page[CHAIN_HEADER..CHAIN_HEADER + len];
            let actual = crc32(chunk);
            if stored != actual {
                return Err(Error::Corrupt(format!(
                    "index checkpoint: chunk crc mismatch (stored {stored:#010x}, computed {actual:#010x})"
                )));
            }
            blob.extend_from_slice(chunk);
        }
        if walked != pages {
            return Err(Error::Corrupt(format!(
                "index checkpoint: chain ended after {walked} of {pages} page(s)"
            )));
        }
        if blob.len() as u64 != total_len {
            return Err(Error::Corrupt(format!(
                "index checkpoint: {} bytes reassembled, header says {total_len}",
                blob.len()
            )));
        }
        let actual = crc32(&blob);
        if actual != total_crc {
            return Err(Error::Corrupt(format!(
                "index checkpoint: blob crc mismatch (stored {total_crc:#010x}, computed {actual:#010x})"
            )));
        }
        Ok(Some(blob))
    }

    /// Writes a new blob, replacing any previous checkpoint, and returns
    /// the new generation number. Pages of the old chain are freed; the
    /// root page is reused in place so the root slot is written at most
    /// once in the store's lifetime.
    pub fn write(&self, blob: &[u8]) -> Result<u64> {
        // Inspect the old root (tolerating corruption: a damaged old
        // checkpoint must not block writing a fresh one).
        let old = self.read_root()?;
        let (generation, old_first, old_pages, root_id) = match &old {
            Some((buf, id)) => match Self::parse_root(buf) {
                Ok((generation, _, _, first, pages)) => (generation + 1, first, pages, *id),
                Err(_) => (1, PageId::NULL, 0, *id),
            },
            None => {
                let (id, _) = self.pool.allocate()?;
                (1, PageId::NULL, 0, id)
            }
        };

        // Write the new chain back-to-front so every `next` pointer is
        // known when its page is filled.
        let chunks: Vec<&[u8]> =
            if blob.is_empty() { Vec::new() } else { blob.chunks(CHUNK_CAP).collect() };
        let mut next = PageId::NULL;
        for chunk in chunks.iter().rev() {
            let (id, frame) = self.pool.allocate()?;
            {
                let mut page = frame.write();
                page[0..8].copy_from_slice(&next.0.to_le_bytes());
                page[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                page[12..16].copy_from_slice(&crc32(chunk).to_le_bytes());
                page[CHAIN_HEADER..CHAIN_HEADER + chunk.len()].copy_from_slice(chunk);
            }
            self.pool.mark_dirty(id);
            next = id;
        }

        // Point the root at the new chain, then retire the old one.
        let frame = self.pool.get(root_id)?;
        {
            let mut page = frame.write();
            page[..ROOT_HEADER].fill(0);
            page[0..4].copy_from_slice(&MAGIC.to_le_bytes());
            page[4..8].copy_from_slice(&FORMAT.to_le_bytes());
            page[8..16].copy_from_slice(&generation.to_le_bytes());
            page[16..24].copy_from_slice(&(blob.len() as u64).to_le_bytes());
            page[24..28].copy_from_slice(&crc32(blob).to_le_bytes());
            page[28..36].copy_from_slice(&next.0.to_le_bytes());
            page[36..40].copy_from_slice(&(chunks.len() as u32).to_le_bytes());
        }
        self.pool.mark_dirty(root_id);
        if old.is_none() {
            self.pool.pager().set_root(self.slot, root_id);
        }
        self.free_chain(old_first, old_pages);
        Ok(generation)
    }

    /// Drops any stored checkpoint, freeing its pages. The root slot is
    /// left pointing at the (now generation-preserving, zero-length-chain)
    /// root page only if one existed; absent stays absent.
    pub fn clear(&self) -> Result<()> {
        if let Some((buf, root_id)) = self.read_root()? {
            let (first, pages) = match Self::parse_root(&buf) {
                Ok((_, _, _, first, pages)) => (first, pages),
                Err(_) => (PageId::NULL, 0),
            };
            self.free_chain(first, pages);
            self.pool.pager().set_root(self.slot, PageId::NULL);
            self.pool.free_page(root_id)?;
        }
        Ok(())
    }

    /// Frees up to `pages` chain pages starting at `first`, stopping
    /// quietly on any damage — leaking pages beats failing a checkpoint.
    fn free_chain(&self, first: PageId, pages: u32) {
        let mut next = first;
        let mut walked = 0u32;
        while !next.is_null() && walked < pages {
            walked += 1;
            let Ok(frame) = self.pool.get(next) else { break };
            let after = PageId(u64::from_le_bytes(
                frame.read()[0..8].try_into().expect("fixed-width slice"),
            ));
            if self.pool.free_page(next).is_err() {
                break;
            }
            next = after;
        }
    }

    /// Every page the checkpoint occupies (root page plus blob chain).
    /// Best-effort: a referenced page is included even when it cannot be
    /// read, the walk just stops following the chain there. Used by
    /// fsck's reachability sweep.
    pub fn pages(&self) -> Vec<PageId> {
        let root = self.pool.pager().root(self.slot);
        if root.is_null() {
            return Vec::new();
        }
        let mut out = vec![root];
        let Ok(Some((buf, _))) = self.read_root() else { return out };
        let Ok((_, _, _, first, pages)) = Self::parse_root(&buf) else { return out };
        let mut next = first;
        let mut walked = 0u32;
        let mut seen = std::collections::HashSet::new();
        while !next.is_null() && walked <= pages && seen.insert(next.0) {
            out.push(next);
            walked += 1;
            let Ok(frame) = self.pool.get(next) else { break };
            next = PageId(u64::from_le_bytes(
                frame.read()[0..8].try_into().expect("fixed-width slice"),
            ));
        }
        out
    }

    /// Describes the stored checkpoint without validating chunk CRCs.
    /// `Ok(None)` when absent; an error when the root page itself is
    /// unreadable or malformed.
    pub fn info(&self) -> Result<Option<CheckpointInfo>> {
        let Some((buf, _)) = self.read_root()? else {
            return Ok(None);
        };
        let (generation, total_len, _, _, pages) = Self::parse_root(&buf)?;
        Ok(Some(CheckpointInfo { generation, bytes: total_len, pages }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn store() -> CheckpointStore {
        let pool = Arc::new(BufferPool::new(Pager::memory(), 64));
        CheckpointStore::new(pool, crate::repo::roots::FTI_META)
    }

    #[test]
    fn absent_reads_none() {
        let s = store();
        assert_eq!(s.read().unwrap(), None);
        assert_eq!(s.info().unwrap(), None);
    }

    #[test]
    fn round_trip_small_and_multi_page() {
        let s = store();
        for blob in [
            Vec::new(),
            b"hello".to_vec(),
            vec![0xabu8; PAGE_SIZE], // exactly forces 2 chunks
            (0..40_000u32).flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>(),
        ] {
            let generation = s.write(&blob).unwrap();
            assert!(generation >= 1);
            assert_eq!(s.read().unwrap().as_deref(), Some(blob.as_slice()));
            let info = s.info().unwrap().unwrap();
            assert_eq!(info.generation, generation);
            assert_eq!(info.bytes, blob.len() as u64);
        }
    }

    #[test]
    fn rewrite_bumps_generation_and_frees_old_chain() {
        let s = store();
        let big = vec![7u8; 3 * PAGE_SIZE];
        s.write(&big).unwrap();
        let generation = s.write(&big).unwrap();
        assert_eq!(generation, 2);
        // The new chain is allocated before the old one is freed, so the
        // second write grows the file once — but after that every rewrite
        // recycles the freed chain and the page count stays flat.
        let steady = s.pool.pager().page_count();
        for _ in 0..5 {
            s.write(&big).unwrap();
        }
        assert_eq!(s.pool.pager().page_count(), steady, "old chains leaked");
        assert_eq!(s.read().unwrap().as_deref(), Some(big.as_slice()));
        assert_eq!(s.info().unwrap().unwrap().generation, 7);
    }

    #[test]
    fn clear_removes_checkpoint() {
        let s = store();
        s.write(b"data").unwrap();
        s.clear().unwrap();
        assert_eq!(s.read().unwrap(), None);
        assert_eq!(s.info().unwrap(), None);
        // Writable again after clearing.
        s.write(b"again").unwrap();
        assert_eq!(s.read().unwrap().as_deref(), Some(&b"again"[..]));
    }

    #[test]
    fn chunk_corruption_is_a_structured_error() {
        let s = store();
        s.write(&[5u8; 100]).unwrap();
        // Flip a payload byte in the chain page behind the store's back.
        let root = s.pool.pager().root(crate::repo::roots::FTI_META);
        let root_buf = s.pool.get(root).unwrap().read().to_vec();
        let (_, _, _, first, _) = CheckpointStore::parse_root(&root_buf).unwrap();
        {
            let frame = s.pool.get(first).unwrap();
            frame.write()[CHAIN_HEADER + 3] ^= 0x40;
        }
        match s.read() {
            Err(Error::Corrupt(msg)) => assert!(msg.contains("crc"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_a_structured_error() {
        let s = store();
        s.write(b"x").unwrap();
        let root = s.pool.pager().root(crate::repo::roots::FTI_META);
        {
            let frame = s.pool.get(root).unwrap();
            frame.write()[0] ^= 0xff;
        }
        assert!(matches!(s.read(), Err(Error::Corrupt(_))));
        assert!(matches!(s.info(), Err(Error::Corrupt(_))));
        // And a fresh write recovers (generation restarts).
        let generation = s.write(b"y").unwrap();
        assert_eq!(generation, 1);
        assert_eq!(s.read().unwrap().as_deref(), Some(&b"y"[..]));
    }
}
