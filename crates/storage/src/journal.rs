//! Double-write checkpoint journal: atomic page flushes.
//!
//! A checkpoint overwrites live pages in place, and a crash mid-write can
//! tear a page — destroying the old image (on disk) *and* the new one
//! (in the torn write) at once. The journal closes that hole with the
//! classic double-write protocol: before any home location is touched,
//! the complete batch of new page images is written to `journal.db` and
//! fsynced; only then are the pages applied to `data.db` and synced, and
//! finally the journal is retired (truncated). On open, a sealed but
//! unretired journal is replayed — the entries are absolute page images,
//! so replay is idempotent — and a tear at *any* point leaves either the
//! old image (journal unsealed: nothing was applied) or the new one
//! (journal sealed: replay finishes the apply) recoverable.
//!
//! # File format
//!
//! ```text
//! header:  [magic u32][format u32][generation u64][n_pages u64]   24 bytes
//! entries: n × [page_id u64][payload PAGE_SIZE][crc32(payload) u32]
//! seal:    [crc32(header + entries) u32][seal magic u32]           8 bytes
//! ```
//!
//! The whole batch is a single `write_at(0)` + `set_len` + `sync`; the
//! seal CRC covers every preceding byte, so a torn journal write is
//! detected as **unsealed** residue and never replayed (the home pages
//! are still untouched at that point). `generation` fences a sealed
//! journal against a database that already moved past it: replay is
//! skipped when the durable header's checkpoint generation is at least
//! the journal's (the apply completed; only the retire was lost).
//!
//! # Write ordering (three fsyncs per checkpoint)
//!
//! 1. journal batch write, `sync(journal)` — the new images are durable;
//! 2. home-location page writes, `sync(data)` — the apply is durable;
//! 3. `set_len(0)`, `sync(journal)` — the journal is retired.
//!
//! A crash before (1) completes leaves an unsealed journal and pristine
//! home pages; between (1) and (2), a sealed journal replayed at open;
//! after (2), a sealed-but-applied journal that the generation fence
//! skips (and retires). Every outcome recovers the full committed state.

use std::path::{Path, PathBuf};

use txdb_base::{Error, Result};

use crate::pager::{PageBuf, PAGE_SIZE, PHYS_PAGE_SIZE};
use crate::repo::roots;
use crate::vfs::{with_retry, Vfs, VfsFile};
use crate::wal::crc32;

/// File name of the journal, next to `data.db` and `wal.log`.
pub const JOURNAL_FILE: &str = "journal.db";

const MAGIC: u32 = 0x7478_4A4C; // "txJL"
const FORMAT: u32 = 1;
const SEAL_MAGIC: u32 = 0x4C41_4553; // "SEAL"
const HEADER_SIZE: usize = 24;
const ENTRY_SIZE: usize = 8 + PAGE_SIZE + 4;
const SEAL_SIZE: usize = 8;
/// Sanity bound when parsing: no checkpoint batch journals more pages
/// than this (a corrupt count must not drive a huge allocation).
const MAX_PAGES: u64 = 1 << 24;

/// Path of the journal file inside a store directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// What a journal file holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalState {
    /// No journal (missing or empty file) — the normal steady state.
    Absent,
    /// A complete, CRC-sealed batch awaiting (or surviving) its apply.
    Sealed {
        /// Checkpoint generation the batch belongs to.
        generation: u64,
        /// Number of page images in the batch.
        pages: usize,
    },
    /// Unreplayable residue: a torn or corrupt journal write. Never
    /// replayed — the home pages were untouched when it was written —
    /// and removable with [`retire`].
    Stale {
        /// Why the residue is not a sealed batch.
        reason: String,
    },
}

impl std::fmt::Display for JournalState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalState::Absent => write!(f, "absent"),
            JournalState::Sealed { generation, pages } => {
                write!(f, "sealed (generation {generation}, {pages} page(s))")
            }
            JournalState::Stale { reason } => write!(f, "stale ({reason})"),
        }
    }
}

/// What journal recovery did at open time.
#[derive(Clone, Debug, Default)]
pub struct RecoverOutcome {
    /// State of the journal before recovery acted on it (as a display
    /// string — [`JournalState`] rendered).
    pub state: String,
    /// Page images written back to their home locations.
    pub replayed_pages: usize,
    /// True when a sealed journal was skipped because the durable header
    /// already carries its generation (the apply had completed; only the
    /// retire was lost).
    pub fenced: bool,
    /// True when stale (unsealed/torn) residue was found and retired.
    /// Such residue is never replayed — the home pages are untouched at
    /// the point a journal write tears — so truncating it on open is
    /// always safe and keeps it from being re-reported forever.
    pub stale_retired: bool,
}

/// Writes one sealed batch: header, entries, seal — a single buffer, one
/// `write_at(0)`, an exact `set_len`, one `sync`. Payloads must be
/// logical pages ([`PAGE_SIZE`] bytes).
pub fn write_batch(file: &mut dyn VfsFile, generation: u64, pages: &[(u64, &[u8])]) -> Result<()> {
    let total = HEADER_SIZE + pages.len() * ENTRY_SIZE + SEAL_SIZE;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&FORMAT.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&(pages.len() as u64).to_le_bytes());
    for (id, payload) in pages {
        debug_assert_eq!(payload.len(), PAGE_SIZE);
        buf.extend_from_slice(&id.to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    buf.extend_from_slice(&SEAL_MAGIC.to_le_bytes());
    with_retry(|| file.write_at(0, &buf))?;
    with_retry(|| file.set_len(total as u64))?;
    file.sync()?;
    Ok(())
}

/// Retires the journal: truncates to empty and syncs. Idempotent.
pub fn retire(file: &mut dyn VfsFile) -> Result<()> {
    with_retry(|| file.set_len(0))?;
    file.sync()?;
    Ok(())
}

/// Classifies the journal file without modifying it. I/O errors are
/// reported as [`JournalState::Stale`] — an unreadable journal is never
/// replayed, and the caller decides whether that is fatal.
pub fn inspect(file: &mut dyn VfsFile) -> JournalState {
    match read_sealed(file) {
        Ok(None) => JournalState::Absent,
        Ok(Some((generation, entries))) => {
            JournalState::Sealed { generation, pages: entries.len() }
        }
        Err(e) => JournalState::Stale { reason: e.to_string() },
    }
}

/// A decoded sealed batch: the header generation plus `(page_id, image)`
/// entries in journal order.
type SealedBatch = (u64, Vec<(u64, PageBuf)>);

/// Reads a sealed batch: `Ok(None)` when the file is absent-equivalent
/// (empty), `Err` when it holds anything but a valid sealed batch.
fn read_sealed(file: &mut dyn VfsFile) -> Result<Option<SealedBatch>> {
    let len = with_retry(|| file.len())?;
    if len == 0 {
        return Ok(None);
    }
    if len < (HEADER_SIZE + SEAL_SIZE) as u64 {
        return Err(Error::Corrupt(format!("journal too short ({len} bytes)")));
    }
    let mut header = [0u8; HEADER_SIZE];
    with_retry(|| file.read_at(0, &mut header))?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("fixed-width slice"));
    let format = u32::from_le_bytes(header[4..8].try_into().expect("fixed-width slice"));
    if magic != MAGIC {
        return Err(Error::Corrupt("bad journal magic".into()));
    }
    if format != FORMAT {
        return Err(Error::Corrupt(format!("unsupported journal format {format}")));
    }
    let generation = u64::from_le_bytes(header[8..16].try_into().expect("fixed-width slice"));
    let n = u64::from_le_bytes(header[16..24].try_into().expect("fixed-width slice"));
    if n > MAX_PAGES {
        return Err(Error::Corrupt(format!("implausible journal page count {n}")));
    }
    let expected = (HEADER_SIZE + n as usize * ENTRY_SIZE + SEAL_SIZE) as u64;
    if len < expected {
        return Err(Error::Corrupt(format!(
            "journal truncated: {len} bytes, sealed batch needs {expected}"
        )));
    }
    let mut body = vec![0u8; expected as usize];
    with_retry(|| file.read_at(0, &mut body))?;
    let sealed_at = body.len() - SEAL_SIZE;
    let seal_magic = u32::from_le_bytes(
        body[sealed_at + 4..sealed_at + 8].try_into().expect("fixed-width slice"),
    );
    let seal_crc =
        u32::from_le_bytes(body[sealed_at..sealed_at + 4].try_into().expect("fixed-width slice"));
    if seal_magic != SEAL_MAGIC || seal_crc != crc32(&body[..sealed_at]) {
        return Err(Error::Corrupt("journal unsealed (torn or incomplete batch)".into()));
    }
    let mut entries = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let off = HEADER_SIZE + i * ENTRY_SIZE;
        let id = u64::from_le_bytes(body[off..off + 8].try_into().expect("fixed-width slice"));
        let payload = &body[off + 8..off + 8 + PAGE_SIZE];
        let crc = u32::from_le_bytes(
            body[off + 8 + PAGE_SIZE..off + ENTRY_SIZE].try_into().expect("fixed-width slice"),
        );
        if crc != crc32(payload) {
            return Err(Error::Corrupt(format!("journal entry {i} (page {id}): bad CRC")));
        }
        entries.push((id, payload.to_vec().into_boxed_slice()));
    }
    Ok(Some((generation, entries)))
}

/// The checkpoint generation in the *durable* header of `data.db`, or
/// `None` when the header is unreadable (missing file, short file, torn
/// or corrupt page 0) — in which case a sealed journal must be replayed,
/// since it carries the header image itself.
fn durable_generation(vfs: &dyn Vfs, dir: &Path) -> Option<u64> {
    let mut file = vfs.open(&dir.join("data.db")).ok()?;
    if with_retry(|| file.len()).ok()? < PHYS_PAGE_SIZE as u64 {
        return None;
    }
    let mut phys = vec![0u8; PHYS_PAGE_SIZE];
    with_retry(|| file.read_at(0, &mut phys)).ok()?;
    let stored =
        u32::from_le_bytes(phys[PAGE_SIZE..PAGE_SIZE + 4].try_into().expect("fixed-width slice"));
    if stored != crc32(&phys[..PAGE_SIZE]) {
        return None;
    }
    let off = 24 + roots::CKPT_GEN * 8;
    Some(u64::from_le_bytes(phys[off..off + 8].try_into().expect("fixed-width slice")))
}

/// Recovery entry point, run at store open **before** the pager touches
/// `data.db` (the header page itself may be torn) and before WAL replay.
/// Replays a sealed journal to the home locations, syncs the data file,
/// and retires the journal. Unsealed (stale) residue is never replayed —
/// the home pages were untouched when the journal write tore — and is
/// retired on the spot, reported through
/// [`RecoverOutcome::stale_retired`] so the open can surface a recovery
/// event instead of leaving the residue around for a manual
/// `fsck --repair-tail`.
pub fn recover(vfs: &dyn Vfs, dir: &Path) -> Result<RecoverOutcome> {
    let mut journal = vfs.open(&journal_path(dir))?;
    let mut out = RecoverOutcome::default();
    let (generation, entries) = match read_sealed(journal.as_mut()) {
        Ok(None) => {
            out.state = JournalState::Absent.to_string();
            return Ok(out);
        }
        Ok(Some(sealed)) => sealed,
        Err(e) => {
            out.state = JournalState::Stale { reason: e.to_string() }.to_string();
            // Best-effort: failing to truncate residue must not fail the
            // open — the next one (or `fsck --repair-tail`) retries.
            out.stale_retired = retire(journal.as_mut()).is_ok();
            return Ok(out);
        }
    };
    out.state = JournalState::Sealed { generation, pages: entries.len() }.to_string();
    // Generation fence: if the durable data header already carries this
    // (or a later) generation, the apply completed and only the retire
    // was lost — replaying would be harmless, but skipping is cheaper
    // and proves the fence works.
    if let Some(durable) = durable_generation(vfs, dir) {
        if durable >= generation {
            out.fenced = true;
            retire(journal.as_mut())?;
            return Ok(out);
        }
    }
    let mut data = vfs.open(&dir.join("data.db"))?;
    for (id, payload) in &entries {
        let mut phys = vec![0u8; PHYS_PAGE_SIZE];
        phys[..PAGE_SIZE].copy_from_slice(payload);
        phys[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc32(payload).to_le_bytes());
        with_retry(|| data.write_at(id * PHYS_PAGE_SIZE as u64, &phys))?;
        out.replayed_pages += 1;
    }
    data.sync()?;
    retire(journal.as_mut())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::new_page;
    use crate::vfs::FaultyVfs;
    use proptest::prelude::*;
    use std::path::PathBuf;

    fn dir() -> PathBuf {
        PathBuf::from("/db")
    }

    fn page_filled(tag: u8) -> PageBuf {
        let mut p = new_page();
        p.iter_mut().enumerate().for_each(|(i, b)| *b = tag ^ (i as u8));
        p
    }

    /// Seeds `data.db` with `n` synced pages so replay targets exist.
    /// Page 0 is deliberately CRC-invalid (it is not a real txdb header),
    /// so the generation fence reads `None` and replay always proceeds.
    fn seed_data(vfs: &FaultyVfs, n: u64) {
        let mut f = vfs.open(&dir().join("data.db")).unwrap();
        for id in 0..n {
            let payload = page_filled(id as u8);
            let mut phys = vec![0u8; PHYS_PAGE_SIZE];
            phys[..PAGE_SIZE].copy_from_slice(&payload);
            if id != 0 {
                phys[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc32(&payload).to_le_bytes());
            }
            f.write_at(id * PHYS_PAGE_SIZE as u64, &phys).unwrap();
        }
        f.sync().unwrap();
    }

    fn read_data(vfs: &FaultyVfs) -> Vec<u8> {
        let mut f = vfs.open(&dir().join("data.db")).unwrap();
        let len = f.len().unwrap();
        let mut buf = vec![0u8; len as usize];
        f.read_at(0, &mut buf).unwrap();
        buf
    }

    #[test]
    fn absent_and_sealed_and_stale_states() {
        let vfs = FaultyVfs::new(1);
        let mut j = vfs.open(&journal_path(&dir())).unwrap();
        assert_eq!(inspect(j.as_mut()), JournalState::Absent);
        let img = page_filled(9);
        write_batch(j.as_mut(), 3, &[(2, &img)]).unwrap();
        assert_eq!(inspect(j.as_mut()), JournalState::Sealed { generation: 3, pages: 1 });
        // Chop the seal off: stale.
        let len = j.len().unwrap();
        j.set_len(len - 3).unwrap();
        assert!(matches!(inspect(j.as_mut()), JournalState::Stale { .. }));
        // Garbage is stale too, and retire clears it.
        j.set_len(0).unwrap();
        j.write_at(0, b"not a journal at all, just bytes").unwrap();
        assert!(matches!(inspect(j.as_mut()), JournalState::Stale { .. }));
        retire(j.as_mut()).unwrap();
        assert_eq!(inspect(j.as_mut()), JournalState::Absent);
    }

    #[test]
    fn sealed_journal_replays_and_retires() {
        let vfs = FaultyVfs::new(2);
        seed_data(&vfs, 4);
        let new2 = page_filled(0xAA);
        let new3 = page_filled(0xBB);
        {
            let mut j = vfs.open(&journal_path(&dir())).unwrap();
            write_batch(j.as_mut(), 7, &[(2, &new2), (3, &new3)]).unwrap();
        }
        // Tear page 3 on "disk" to simulate a crash mid-apply.
        vfs.corrupt_byte(&dir().join("data.db"), 3 * PHYS_PAGE_SIZE as u64 + 100, 0xFF);
        let out = recover(&vfs, &dir()).unwrap();
        assert_eq!(out.replayed_pages, 2);
        assert!(!out.fenced);
        let data = read_data(&vfs);
        assert_eq!(&data[2 * PHYS_PAGE_SIZE..2 * PHYS_PAGE_SIZE + PAGE_SIZE], &new2[..]);
        assert_eq!(&data[3 * PHYS_PAGE_SIZE..3 * PHYS_PAGE_SIZE + PAGE_SIZE], &new3[..]);
        let mut j = vfs.open(&journal_path(&dir())).unwrap();
        assert_eq!(inspect(j.as_mut()), JournalState::Absent, "replay retires");
    }

    #[test]
    fn unsealed_residue_is_never_replayed() {
        let vfs = FaultyVfs::new(3);
        seed_data(&vfs, 3);
        let before = read_data(&vfs);
        {
            let mut j = vfs.open(&journal_path(&dir())).unwrap();
            let img = page_filled(0xCC);
            write_batch(j.as_mut(), 5, &[(1, &img)]).unwrap();
            // Tear the seal: flip a byte inside the sealed region.
            let len = j.len().unwrap();
            j.set_len(len - 1).unwrap();
            j.sync().unwrap();
        }
        let out = recover(&vfs, &dir()).unwrap();
        assert_eq!(out.replayed_pages, 0);
        assert!(out.state.starts_with("stale"), "{}", out.state);
        assert_eq!(read_data(&vfs), before, "home pages untouched");
        // The residue itself is retired on the spot: a second recovery
        // sees a clean (absent) journal.
        assert!(out.stale_retired);
        let mut j = vfs.open(&journal_path(&dir())).unwrap();
        assert_eq!(inspect(j.as_mut()), JournalState::Absent, "residue truncated");
    }

    proptest! {
        /// Replaying a sealed journal twice leaves exactly the same data
        /// image as replaying it once — entries are absolute, so recovery
        /// interrupted and re-run converges.
        #[test]
        fn replay_is_idempotent(
            seed in 0u64..1000,
            ids in prop::collection::vec(1u64..8, 1..5),
            tags in prop::collection::vec(0u8..=255, 1..5),
        ) {
            let vfs = FaultyVfs::new(seed);
            seed_data(&vfs, 8);
            let mut ids = ids;
            ids.sort_unstable();
            ids.dedup();
            let batch: Vec<(u64, PageBuf)> = ids
                .iter()
                .zip(tags.iter().cycle())
                .map(|(&id, &t)| (id, page_filled(t)))
                .collect();
            let refs: Vec<(u64, &[u8])> =
                batch.iter().map(|(id, p)| (*id, &p[..])).collect();
            {
                let mut j = vfs.open(&journal_path(&dir())).unwrap();
                write_batch(j.as_mut(), 9, &refs).unwrap();
            }
            let first = recover(&vfs, &dir()).unwrap();
            prop_assert_eq!(first.replayed_pages, batch.len());
            let once = read_data(&vfs);
            // Re-seal the identical batch (as if the retire never made it
            // to disk) and recover again: the generation fence skips the
            // apply, and the image is unchanged.
            {
                let mut j = vfs.open(&journal_path(&dir())).unwrap();
                write_batch(j.as_mut(), 9, &refs).unwrap();
            }
            let second = recover(&vfs, &dir()).unwrap();
            let twice = read_data(&vfs);
            prop_assert_eq!(once, twice);
            // Page 0 of the synthetic file is not a valid header, so the
            // fence reads nothing and the second pass replays in full —
            // and still changes no byte.
            prop_assert_eq!(second.replayed_pages, batch.len());
        }
    }
}
