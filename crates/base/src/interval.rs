//! Half-open transaction-time intervals `[start, end)`.
//!
//! The paper's history operators take intervals written `[t1, t2⟩` — "the
//! time interval from t1 to t2, including t1 but not t2 (open-ended upper
//! bound)". An element version that became current at time `t` and was
//! superseded (or deleted) at time `t'` is valid over `[t, t')`; the current
//! version has `t' = FOREVER`.

use std::fmt;

use crate::time::Timestamp;

/// A half-open interval of transaction time: `[start, end)`.
///
/// Empty intervals (`start >= end`) are permitted and behave as the empty
/// set under all operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Exclusive upper bound.
    pub end: Timestamp,
}

impl Interval {
    /// The full transaction-time line `[ZERO, FOREVER)`.
    pub const ALL: Interval = Interval { start: Timestamp::ZERO, end: Timestamp::FOREVER };

    /// Creates `[start, end)`.
    #[inline]
    pub const fn new(start: Timestamp, end: Timestamp) -> Self {
        Interval { start, end }
    }

    /// The interval of a *current* version: `[start, FOREVER)`.
    #[inline]
    pub const fn from_onwards(start: Timestamp) -> Self {
        Interval { start, end: Timestamp::FOREVER }
    }

    /// True when the interval contains no instants.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }

    /// True when `t` lies inside `[start, end)`.
    #[inline]
    pub fn contains(self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// True when the two intervals share at least one instant.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        self.start < other.end && other.start < self.end && !self.is_empty() && !other.is_empty()
    }

    /// The intersection (possibly empty).
    #[inline]
    pub fn intersect(self, other: Interval) -> Interval {
        Interval { start: self.start.max(other.start), end: self.end.min(other.end) }
    }

    /// True when `self` fully covers `other` (any interval covers an empty one).
    #[inline]
    pub fn covers(self, other: Interval) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// True when the interval extends to `FOREVER`, i.e. is still current.
    #[inline]
    pub fn is_current(self) -> bool {
        self.end == Timestamp::FOREVER && !self.is_empty()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Timestamp::from_micros(a), Timestamp::from_micros(b))
    }

    #[test]
    fn contains_is_half_open() {
        let i = iv(10, 20);
        assert!(i.contains(Timestamp::from_micros(10)));
        assert!(i.contains(Timestamp::from_micros(19)));
        assert!(!i.contains(Timestamp::from_micros(20)));
        assert!(!i.contains(Timestamp::from_micros(9)));
    }

    #[test]
    fn empty_interval_contains_nothing() {
        let e = iv(10, 10);
        assert!(e.is_empty());
        assert!(!e.contains(Timestamp::from_micros(10)));
        assert!(!e.overlaps(iv(0, 100)));
        assert!(iv(0, 100).covers(e));
    }

    #[test]
    fn overlap_cases() {
        assert!(iv(0, 10).overlaps(iv(5, 15)));
        assert!(!iv(0, 10).overlaps(iv(10, 20)), "touching is not overlapping");
        assert!(iv(0, 100).overlaps(iv(40, 41)));
        assert!(!iv(0, 10).overlaps(iv(20, 30)));
    }

    #[test]
    fn intersect_and_covers() {
        assert_eq!(iv(0, 10).intersect(iv(5, 15)), iv(5, 10));
        assert!(iv(0, 10).intersect(iv(10, 20)).is_empty());
        assert!(iv(0, 20).covers(iv(5, 15)));
        assert!(!iv(5, 15).covers(iv(0, 20)));
    }

    #[test]
    fn current_interval() {
        let c = Interval::from_onwards(Timestamp::from_micros(7));
        assert!(c.is_current());
        assert!(c.contains(Timestamp::from_micros(1_000_000_000)));
        assert!(!iv(0, 5).is_current());
        assert!(Interval::ALL.is_current());
    }

    #[test]
    fn display() {
        assert_eq!(Interval::ALL.to_string(), "[1970-01-01, FOREVER)");
    }
}
