//! Observability: a lock-free metrics registry, latency histograms and
//! lightweight span tracing.
//!
//! The paper evaluates its operators by *counting* — page reads (§7.2),
//! delta applications per reconstruction (§7.3.3, E4), `FTI_lookup` /
//! `FTI_lookup_T` / `FTI_lookup_H` calls (§6). This module is the
//! measurement substrate those numbers flow through: every component
//! registers named [`Counter`]s, [`Gauge`]s and log-bucketed
//! [`Histogram`]s in a shared [`Registry`], and the CLI / bench binaries
//! render one snapshot from one source of truth.
//!
//! Design constraints:
//!
//! * **Hot paths are plain atomic increments.** A [`Counter`] is an
//!   `Arc<AtomicU64>`; components look their handles up *once* (at open)
//!   and cache the clone, so steady-state cost is a single relaxed
//!   `fetch_add` — no locks, no hashing, no allocation. The registry's
//!   maps are only locked at registration and snapshot time.
//! * **Histograms are fixed-size and wait-free.** 64 power-of-two buckets
//!   (bucket *b* holds values with bit-length *b*) give ≤ 2× relative
//!   error on p50/p95/p99 with zero allocation per record.
//! * **Tracing is optional.** A [`Span`] always records its duration into
//!   a histogram; only when an [`EventSink`] is attached does it also
//!   emit a JSON line. With no sink the extra cost is one `Option` check.
//! * **Zero dependencies.** `txdb-base` depends on nothing, so this
//!   module uses only `std` (`AtomicU64`, `std::sync::RwLock` on the
//!   cold registration path).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of histogram buckets: one per possible bit-length of a `u64`.
const BUCKETS: usize = 64;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic, so a component can cache a handle while the registry renders
/// the same value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (used between experiment phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge (e.g. resident bytes, hit ratio in basis
/// points). Same sharing semantics as [`Counter`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    /// `buckets[b]` counts recorded values whose bit-length is `b`
    /// (bucket 0 holds only the value 0; bucket `b ≥ 1` holds
    /// `[2^(b-1), 2^b - 1]`).
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log₂-bucketed latency/size histogram with percentile estimation.
///
/// Recording is wait-free (three relaxed atomic ops plus a `fetch_max`);
/// percentiles are read back as the upper bound of the bucket containing
/// the requested rank, clamped to the observed maximum — an estimate
/// within a factor of two, which is enough to tell a 50 µs fsync from a
/// 5 ms one.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.0.buckets[b.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket holding the `p`-quantile observation
    /// (`p` in `[0, 1]`), clamped to the observed maximum. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (b, bucket) in self.0.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= rank {
                // Bucket 0 holds only 0; the last bucket saturates, so
                // its only honest upper bound is the observed maximum.
                let ub = match b {
                    0 => 0,
                    b if b >= BUCKETS - 1 => self.max(),
                    b => (1u64 << b) - 1,
                };
                return ub.min(self.max());
            }
        }
        self.max()
    }

    /// A consistent-enough copy of the summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Receiver for trace events (one JSON object per call). Implementations
/// must tolerate concurrent calls and must never panic — a broken sink
/// silently drops events rather than failing the operation being traced.
pub trait EventSink: Send + Sync {
    /// Delivers one serialized JSON object (no trailing newline).
    fn event(&self, json: &str);
}

/// An [`EventSink`] appending JSON lines to a writer (typically a file
/// opened in append mode). Write errors are swallowed: tracing must
/// never fail the traced operation.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl JsonLinesSink {
    /// Opens (or creates) `path` in append mode.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonLinesSink> {
        let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonLinesSink::writer(Box::new(f)))
    }

    /// Wraps an arbitrary writer (tests).
    pub fn writer(out: Box<dyn std::io::Write + Send>) -> JsonLinesSink {
        JsonLinesSink { out: Mutex::new(out) }
    }
}

impl EventSink for JsonLinesSink {
    fn event(&self, json: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(json.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }
}

/// An [`EventSink`] collecting events in memory (tests).
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// All events received so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().map(|l| l.clone()).unwrap_or_default()
    }
}

impl EventSink for MemorySink {
    fn event(&self, json: &str) {
        if let Ok(mut lines) = self.lines.lock() {
            lines.push(json.to_string());
        }
    }
}

/// A value attached to a trace event.
#[derive(Clone, Copy, Debug)]
pub enum EventValue<'a> {
    /// An unsigned integer.
    U64(u64),
    /// A string (JSON-escaped on emission).
    Str(&'a str),
}

/// The metrics registry: named counters, gauges and histograms, plus an
/// optional event sink.
///
/// Registration is idempotent — asking for an existing name returns a
/// handle to the *same* underlying atomic — so every component can
/// `registry.counter("buffer.gets")` at construction and cache the
/// result. Names are dot-separated, lower-case, with duration histograms
/// suffixed `_us` (microseconds).
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
}

/// Recover from a poisoned `std` lock: the data is plain atomics /
/// strings, always valid, so we just take the guard.
macro_rules! lock {
    ($e:expr) => {
        match $e {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    };
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = lock!(self.counters.read()).get(name) {
            return c.clone();
        }
        lock!(self.counters.write()).entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = lock!(self.gauges.read()).get(name) {
            return g.clone();
        }
        lock!(self.gauges.write()).entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = lock!(self.histograms.read()).get(name) {
            return h.clone();
        }
        lock!(self.histograms.write()).entry(name.to_string()).or_default().clone()
    }

    /// Attaches the event sink (replacing any previous one).
    pub fn set_sink(&self, sink: Arc<dyn EventSink>) {
        *lock!(self.sink.write()) = Some(sink);
    }

    /// True when an event sink is attached.
    pub fn has_sink(&self) -> bool {
        lock!(self.sink.read()).is_some()
    }

    /// Emits a trace event `{"event": name, key: value, …}` if a sink is
    /// attached; otherwise a no-op after one lock-free-ish check.
    pub fn emit(&self, name: &str, fields: &[(&str, EventValue<'_>)]) {
        let sink = match lock!(self.sink.read()).clone() {
            Some(s) => s,
            None => return,
        };
        let mut json = String::with_capacity(48 + fields.len() * 24);
        json.push_str("{\"event\":\"");
        json.push_str(&json_escape(name));
        json.push('"');
        for (k, v) in fields {
            json.push_str(",\"");
            json.push_str(&json_escape(k));
            json.push_str("\":");
            match v {
                EventValue::U64(n) => json.push_str(&n.to_string()),
                EventValue::Str(s) => {
                    json.push('"');
                    json.push_str(&json_escape(s));
                    json.push('"');
                }
            }
        }
        json.push('}');
        sink.event(&json);
    }

    /// Starts a span: on drop, the elapsed time in microseconds is
    /// recorded into the histogram named `name` and, when a sink is
    /// attached, emitted as a trace event.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span { reg: self, hist: self.histogram(name), name, start: Instant::now() }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock!(self.counters.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock!(self.gauges.read()).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: lock!(self.histograms.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A timing guard created by [`Registry::span`]. Dropping it records the
/// elapsed microseconds.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span<'r> {
    reg: &'r Registry,
    hist: Histogram,
    name: &'static str,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        self.hist.record(us);
        self.reg.emit(self.name, &[("us", EventValue::U64(us))]);
    }
}

/// A rendered copy of a [`Registry`], sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, u64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Plain-text rendering, one metric per line (the `txdb metrics`
    /// default).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<36} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<36} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<36} count={} mean={:.1} p50={} p95={} p99={} max={}\n",
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.max
            ));
        }
        out
    }

    /// JSON rendering (the `txdb metrics --json` output and the bench
    /// `engine_metrics` block).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        out.push_str("\n  }\n}");
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        // A second lookup shares the same atomic.
        assert_eq!(reg.counter("a.b").get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = reg.gauge("g");
        g.set(42);
        g.set(7);
        assert_eq!(reg.gauge("g").get(), 7);
    }

    #[test]
    fn histogram_bucketing_boundaries() {
        let h = Histogram::default();
        // 0 lands in bucket 0; powers of two straddle bucket edges:
        // bucket b (b ≥ 1) holds [2^(b-1), 2^b - 1].
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 2072);
        assert_eq!(h.max(), 1024);
        // All mass at one value → every percentile is (clamped to) it.
        let one = Histogram::default();
        for _ in 0..100 {
            one.record(5);
        }
        assert_eq!(one.percentile(0.5), 5); // upper bound 7 clamped to max 5
        assert_eq!(one.percentile(0.99), 5);
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        // 90 fast observations (~10 µs) and 10 slow ones (~1000 µs).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        // p50 is in the fast bucket [8, 15]; p95/p99 in the slow bucket
        // [512, 1023], clamped to the observed max 1000.
        assert_eq!(h.percentile(0.50), 15);
        assert_eq!(h.percentile(0.95), 1000);
        assert_eq!(h.percentile(0.99), 1000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean() - 109.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_extreme() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.99), u64::MAX); // clamped to max
    }

    #[test]
    fn concurrent_counter_stress() {
        // The acceptance bar: hot-path increments are plain atomics and
        // concurrent snapshotting never poisons a lock or loses a count.
        let reg = Arc::new(Registry::new());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("stress.count");
                let h = reg.histogram("stress.lat_us");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(t * PER_THREAD + i);
                    if i % 1000 == 0 {
                        // Concurrent reads must not disturb writers.
                        let _ = reg.snapshot();
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no thread panicked");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("stress.count"), Some(THREADS * PER_THREAD));
        let hist = snap.histogram("stress.lat_us").expect("registered");
        assert_eq!(hist.count, THREADS * PER_THREAD);
    }

    #[test]
    fn span_records_and_emits() {
        let reg = Registry::new();
        let sink = Arc::new(MemorySink::default());
        reg.set_sink(sink.clone());
        {
            let _s = reg.span("unit.test_us");
        }
        assert_eq!(reg.histogram("unit.test_us").count(), 1);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"event\":\"unit.test_us\""), "{}", lines[0]);
        assert!(lines[0].contains("\"us\":"));
        // Events with string fields are escaped.
        reg.emit("note", &[("msg", EventValue::Str("a \"quoted\"\nline"))]);
        let lines = sink.lines();
        assert!(lines[1].contains("a \\\"quoted\\\"\\nline"), "{}", lines[1]);
    }

    #[test]
    fn no_sink_means_no_emission_cost_path() {
        let reg = Registry::new();
        assert!(!reg.has_sink());
        reg.emit("ignored", &[("k", EventValue::U64(1))]); // must be a no-op
        {
            let _s = reg.span("still.records_us");
        }
        assert_eq!(reg.histogram("still.records_us").count(), 1);
    }

    #[test]
    fn snapshot_render_text_and_json() {
        let reg = Registry::new();
        reg.counter("x.count").add(3);
        reg.gauge("x.gauge").set(9);
        reg.histogram("x.lat_us").record(100);
        let snap = reg.snapshot();
        let text = snap.to_text();
        assert!(text.contains("x.count"));
        assert!(text.contains("p95="));
        let json = snap.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"x.count\": 3"));
        assert!(json.contains("\"x.gauge\": 9"));
        assert!(json.contains("\"p95\""));
        // Balanced braces — cheap structural sanity (the CI smoke parses
        // the real output with python).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escape_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
