//! Observability: a lock-free metrics registry, latency histograms and
//! lightweight span tracing.
//!
//! The paper evaluates its operators by *counting* — page reads (§7.2),
//! delta applications per reconstruction (§7.3.3, E4), `FTI_lookup` /
//! `FTI_lookup_T` / `FTI_lookup_H` calls (§6). This module is the
//! measurement substrate those numbers flow through: every component
//! registers named [`Counter`]s, [`Gauge`]s and log-bucketed
//! [`Histogram`]s in a shared [`Registry`], and the CLI / bench binaries
//! render one snapshot from one source of truth.
//!
//! Design constraints:
//!
//! * **Hot paths are plain atomic increments.** A [`Counter`] is an
//!   `Arc<AtomicU64>`; components look their handles up *once* (at open)
//!   and cache the clone, so steady-state cost is a single relaxed
//!   `fetch_add` — no locks, no hashing, no allocation. The registry's
//!   maps are only locked at registration and snapshot time.
//! * **Histograms are fixed-size and wait-free.** 64 power-of-two buckets
//!   (bucket *b* holds values with bit-length *b*) give ≤ 2× relative
//!   error on p50/p95/p99 with zero allocation per record.
//! * **Tracing is optional.** A [`Span`] always records its duration into
//!   a histogram; only when an [`EventSink`] is attached does it also
//!   emit a JSON line. With no sink the extra cost is one `Option` check.
//! * **Traces are hierarchical and request-scoped.** A [`TraceContext`]
//!   installed on the current thread turns every [`Span`] (and every
//!   explicit [`trace_op`]) into a node of a span *tree*: trace id, span
//!   id, parent id, start offset, duration and key/value fields. The tree
//!   is assembled by [`TraceContext::finish`] with the invariant that a
//!   child's duration never exceeds its parent's, so exclusive times sum
//!   to the root's wall clock the same way EXPLAIN ANALYZE nodes sum to
//!   `ExecStats`. With no context installed the cost is one thread-local
//!   read per span.
//! * **Zero dependencies.** `txdb-base` depends on nothing, so this
//!   module uses only `std` (`AtomicU64`, `std::sync::RwLock` on the
//!   cold registration path).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of histogram buckets: one per possible bit-length of a `u64`.
const BUCKETS: usize = 64;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic, so a component can cache a handle while the registry renders
/// the same value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (used between experiment phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge (e.g. resident bytes, hit ratio in basis
/// points). Same sharing semantics as [`Counter`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    /// `buckets[b]` counts recorded values whose bit-length is `b`
    /// (bucket 0 holds only the value 0; bucket `b ≥ 1` holds
    /// `[2^(b-1), 2^b - 1]`).
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log₂-bucketed latency/size histogram with percentile estimation.
///
/// Recording is wait-free (three relaxed atomic ops plus a `fetch_max`);
/// percentiles are read back as the upper bound of the bucket containing
/// the requested rank, clamped to the observed maximum — an estimate
/// within a factor of two, which is enough to tell a 50 µs fsync from a
/// 5 ms one.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.0.buckets[b.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket holding the `p`-quantile observation
    /// (`p` in `[0, 1]`), clamped to the observed maximum. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (b, bucket) in self.0.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= rank {
                // Bucket 0 holds only 0; the last bucket saturates, so
                // its only honest upper bound is the observed maximum.
                let ub = match b {
                    0 => 0,
                    b if b >= BUCKETS - 1 => self.max(),
                    b => (1u64 << b) - 1,
                };
                return ub.min(self.max());
            }
        }
        self.max()
    }

    /// A consistent-enough copy of the summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Receiver for trace events (one JSON object per call). Implementations
/// must tolerate concurrent calls and must never panic — a broken sink
/// silently drops events rather than failing the operation being traced.
pub trait EventSink: Send + Sync {
    /// Delivers one serialized JSON object (no trailing newline).
    fn event(&self, json: &str);
}

/// An [`EventSink`] appending JSON lines to a writer (typically a file
/// opened in append mode). Write errors are swallowed: tracing must
/// never fail the traced operation.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl JsonLinesSink {
    /// Opens (or creates) `path` in append mode.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonLinesSink> {
        let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonLinesSink::writer(Box::new(f)))
    }

    /// Wraps an arbitrary writer (tests).
    pub fn writer(out: Box<dyn std::io::Write + Send>) -> JsonLinesSink {
        JsonLinesSink { out: Mutex::new(out) }
    }
}

impl EventSink for JsonLinesSink {
    fn event(&self, json: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(json.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }
}

/// An [`EventSink`] collecting events in memory (tests).
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// All events received so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().map(|l| l.clone()).unwrap_or_default()
    }
}

impl EventSink for MemorySink {
    fn event(&self, json: &str) {
        if let Ok(mut lines) = self.lines.lock() {
            lines.push(json.to_string());
        }
    }
}

/// A value attached to a trace event.
#[derive(Clone, Copy, Debug)]
pub enum EventValue<'a> {
    /// An unsigned integer.
    U64(u64),
    /// A string (JSON-escaped on emission).
    Str(&'a str),
}

/// The metrics registry: named counters, gauges and histograms, plus an
/// optional event sink.
///
/// Registration is idempotent — asking for an existing name returns a
/// handle to the *same* underlying atomic — so every component can
/// `registry.counter("buffer.gets")` at construction and cache the
/// result. Names are dot-separated, lower-case, with duration histograms
/// suffixed `_us` (microseconds).
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
}

/// Recover from a poisoned `std` lock: the data is plain atomics /
/// strings, always valid, so we just take the guard.
macro_rules! lock {
    ($e:expr) => {
        match $e {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    };
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = lock!(self.counters.read()).get(name) {
            return c.clone();
        }
        lock!(self.counters.write()).entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = lock!(self.gauges.read()).get(name) {
            return g.clone();
        }
        lock!(self.gauges.write()).entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = lock!(self.histograms.read()).get(name) {
            return h.clone();
        }
        lock!(self.histograms.write()).entry(name.to_string()).or_default().clone()
    }

    /// Attaches the event sink (replacing any previous one).
    pub fn set_sink(&self, sink: Arc<dyn EventSink>) {
        *lock!(self.sink.write()) = Some(sink);
    }

    /// True when an event sink is attached.
    pub fn has_sink(&self) -> bool {
        lock!(self.sink.read()).is_some()
    }

    /// Emits a trace event `{"event": name, key: value, …}` if a sink is
    /// attached; otherwise a no-op after one lock-free-ish check.
    pub fn emit(&self, name: &str, fields: &[(&str, EventValue<'_>)]) {
        let sink = match lock!(self.sink.read()).clone() {
            Some(s) => s,
            None => return,
        };
        let mut json = String::with_capacity(48 + fields.len() * 24);
        json.push_str("{\"event\":\"");
        json.push_str(&json_escape(name));
        json.push('"');
        for (k, v) in fields {
            json.push_str(",\"");
            json.push_str(&json_escape(k));
            json.push_str("\":");
            match v {
                EventValue::U64(n) => json.push_str(&n.to_string()),
                EventValue::Str(s) => {
                    json.push('"');
                    json.push_str(&json_escape(s));
                    json.push('"');
                }
            }
        }
        json.push('}');
        sink.event(&json);
    }

    /// Starts a span: on drop, the elapsed time in microseconds is
    /// recorded into the histogram named `name` and, when a sink is
    /// attached, emitted as a trace event. When a [`TraceContext`] is
    /// installed on the current thread the span additionally becomes a
    /// node of that trace's span tree (child of whatever span is open),
    /// with exactly the duration recorded into the histogram.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            reg: self,
            hist: self.histogram(name),
            name,
            start: Instant::now(),
            op: trace_op(name),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock!(self.counters.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock!(self.gauges.read()).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: lock!(self.histograms.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A timing guard created by [`Registry::span`]. Dropping it records the
/// elapsed microseconds.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span<'r> {
    reg: &'r Registry,
    hist: Histogram,
    name: &'static str,
    start: Instant,
    op: Option<TraceOp>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        self.hist.record(us);
        // The trace node gets *exactly* the histogram's observation, so a
        // trace root provably matches its `server.cmd.*_us` record.
        let ids = self.op.take().map(|op| {
            let ids = (op.trace_id(), op.span_id());
            op.complete(us);
            ids
        });
        match ids {
            Some((trace, span)) => self.reg.emit(
                self.name,
                &[
                    ("us", EventValue::U64(us)),
                    ("trace", EventValue::U64(trace)),
                    ("span", EventValue::U64(span)),
                ],
            ),
            None => self.reg.emit(self.name, &[("us", EventValue::U64(us))]),
        }
    }
}

// ---------------------------------------------------------------------------
// Hierarchical traces
// ---------------------------------------------------------------------------

/// Spans recorded per trace beyond which further records are dropped
/// (counted in [`TraceTree::dropped`]). Bounds memory for queries that
/// touch thousands of reconstructions.
const MAX_TRACE_SPANS: usize = 256;

thread_local! {
    /// The trace context installed on this thread, if any. `span_id`
    /// names the innermost open span, so new spans know their parent.
    static ACTIVE: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// A field value attached to a trace span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceValue {
    /// An unsigned integer.
    U64(u64),
    /// A string (JSON-escaped on rendering).
    Str(String),
}

impl TraceValue {
    fn render_json(&self, out: &mut String) {
        match self {
            TraceValue::U64(n) => out.push_str(&n.to_string()),
            TraceValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
        }
    }
}

impl From<u64> for TraceValue {
    fn from(n: u64) -> TraceValue {
        TraceValue::U64(n)
    }
}

impl From<&str> for TraceValue {
    fn from(s: &str) -> TraceValue {
        TraceValue::Str(s.to_string())
    }
}

/// One finished span, as stored inside a trace before tree assembly.
#[derive(Clone, Debug)]
struct SpanRecord {
    id: u64,
    parent: u64,
    name: String,
    start_us: u64,
    duration_us: u64,
    fields: Vec<(String, TraceValue)>,
}

struct TraceShared {
    trace_id: u64,
    t0: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    fields: Mutex<Vec<(String, TraceValue)>>,
    dropped: AtomicU64,
}

impl TraceShared {
    fn offset_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, rec: SpanRecord) {
        let mut spans = lock!(self.spans.lock());
        if spans.len() >= MAX_TRACE_SPANS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(rec);
        }
    }
}

/// A handle on one request's trace: a cheap-to-clone (trace id, current
/// span id) pair over shared span storage.
///
/// The intended life cycle: the server creates a root context per traced
/// request, [`install`](TraceContext::install)s it on the session thread
/// for the request's duration, and every [`Registry::span`] and
/// [`trace_op`] on that thread silently becomes a tree node. When the
/// request's own span has closed, [`finish`](TraceContext::finish)
/// assembles the [`TraceTree`].
#[derive(Clone)]
pub struct TraceContext {
    shared: Arc<TraceShared>,
    span_id: u64,
}

impl TraceContext {
    /// Creates the root context of a new trace.
    pub fn root(trace_id: u64) -> TraceContext {
        TraceContext {
            shared: Arc::new(TraceShared {
                trace_id,
                t0: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                fields: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            }),
            span_id: 0,
        }
    }

    /// The trace's id.
    pub fn trace_id(&self) -> u64 {
        self.shared.trace_id
    }

    /// The id of the span this context points at (0 at root level).
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// Attaches a trace-level field (session id, command tag, …).
    pub fn set_field(&self, key: &str, value: impl Into<TraceValue>) {
        lock!(self.shared.fields.lock()).push((key.to_string(), value.into()));
    }

    /// Installs this context on the current thread until the guard drops
    /// (restoring whatever was installed before).
    pub fn install(&self) -> TraceGuard {
        let prev = ACTIVE.with(|a| a.replace(Some(self.clone())));
        TraceGuard { prev }
    }

    /// The context installed on the current thread, if any. The clone
    /// points at the innermost open span — children recorded through it
    /// attach there.
    pub fn current() -> Option<TraceContext> {
        ACTIVE.with(|a| a.borrow().clone())
    }

    /// Records an already-measured span (e.g. an operator's accumulated
    /// self-metering) as a child of this context's span, returning a
    /// context pointing at the new span so its own children can attach.
    /// The start offset is back-dated so `start + duration ≤ now`.
    pub fn record_complete(
        &self,
        name: &str,
        duration_us: u64,
        fields: Vec<(String, TraceValue)>,
    ) -> TraceContext {
        let id = self.shared.alloc_id();
        let start_us = self.shared.offset_us().saturating_sub(duration_us);
        self.shared.push(SpanRecord {
            id,
            parent: self.span_id,
            name: name.to_string(),
            start_us,
            duration_us,
            fields,
        });
        TraceContext { shared: Arc::clone(&self.shared), span_id: id }
    }

    /// Assembles the span tree from everything recorded so far. Spans
    /// whose parent is missing (root-level, or dropped past the span cap)
    /// become top-level nodes; children are clamped to their parent's
    /// duration so `child ≤ parent` holds structurally.
    pub fn finish(&self) -> TraceTree {
        let records = std::mem::take(&mut *lock!(self.shared.spans.lock()));
        let fields = lock!(self.shared.fields.lock()).clone();
        let dropped = self.shared.dropped.load(Ordering::Relaxed);
        TraceTree { trace_id: self.shared.trace_id, fields, roots: assemble(records), dropped }
    }
}

/// Restores the previously installed context when dropped.
#[must_use = "dropping the guard immediately uninstalls the trace"]
pub struct TraceGuard {
    prev: Option<TraceContext>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

/// Opens a trace span named `name` under the context installed on this
/// thread, or returns `None` (for the price of one thread-local read)
/// when no trace is active. While the returned guard lives, spans opened
/// on this thread attach beneath it; dropping it records the span.
pub fn trace_op(name: &str) -> Option<TraceOp> {
    let ctx = TraceContext::current()?;
    let id = ctx.shared.alloc_id();
    let child = TraceContext { shared: Arc::clone(&ctx.shared), span_id: id };
    let prev = ACTIVE.with(|a| a.replace(Some(child.clone())));
    Some(TraceOp {
        ctx: child,
        parent: ctx.span_id,
        name: name.to_string(),
        start: Instant::now(),
        start_us: ctx.shared.offset_us(),
        fields: Vec::new(),
        duration_override: None,
        prev,
    })
}

/// An open trace span (guard). Records itself — and restores the
/// thread's previous context — on drop.
#[must_use = "a trace op measures the scope it is alive in"]
pub struct TraceOp {
    ctx: TraceContext,
    parent: u64,
    name: String,
    start: Instant,
    start_us: u64,
    fields: Vec<(String, TraceValue)>,
    duration_override: Option<u64>,
    prev: Option<TraceContext>,
}

impl TraceOp {
    /// The owning trace's id.
    pub fn trace_id(&self) -> u64 {
        self.ctx.trace_id()
    }

    /// This span's id.
    pub fn span_id(&self) -> u64 {
        self.ctx.span_id
    }

    /// Attaches a key/value field to this span.
    pub fn add_field(&mut self, key: &str, value: impl Into<TraceValue>) {
        self.fields.push((key.to_string(), value.into()));
    }

    /// Closes the span with an externally measured duration instead of
    /// the guard's own clock (used by [`Span`] so trace and histogram
    /// agree to the microsecond).
    pub fn complete(mut self, duration_us: u64) {
        self.duration_override = Some(duration_us);
    }
}

impl Drop for TraceOp {
    fn drop(&mut self) {
        let us = self.duration_override.unwrap_or_else(|| self.start.elapsed().as_micros() as u64);
        self.ctx.shared.push(SpanRecord {
            id: self.ctx.span_id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            duration_us: us,
            fields: std::mem::take(&mut self.fields),
        });
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

/// One node of an assembled trace: a named span with its start offset
/// (µs since the trace began), duration, fields and children.
#[derive(Clone, Debug)]
pub struct TraceNode {
    /// Span name (histogram name for [`Registry::span`] spans).
    pub name: String,
    /// Start offset in microseconds since the trace root was created.
    pub start_us: u64,
    /// Inclusive duration in microseconds (children included).
    pub duration_us: u64,
    /// Key/value fields attached to the span.
    pub fields: Vec<(String, TraceValue)>,
    /// Child spans, sorted by start offset.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Time spent in this span *excluding* its children — the quantity
    /// that sums to the root's duration across a whole tree.
    pub fn exclusive_us(&self) -> u64 {
        self.duration_us.saturating_sub(self.children.iter().map(|c| c.duration_us).sum())
    }

    /// Appends this node (and its subtree) as a JSON object.
    pub fn to_json(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        out.push_str(&json_escape(&self.name));
        out.push_str(&format!("\",\"start_us\":{},\"us\":{}", self.start_us, self.duration_us));
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(k));
                out.push_str("\":");
                v.render_json(out);
            }
            out.push('}');
        }
        if !self.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.to_json(out);
            }
            out.push(']');
        }
        out.push('}');
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{}  {}µs", self.name, self.duration_us));
        if !self.children.is_empty() {
            out.push_str(&format!(" (self {}µs)", self.exclusive_us()));
        }
        for (k, v) in &self.fields {
            match v {
                TraceValue::U64(n) => out.push_str(&format!(" {k}={n}")),
                TraceValue::Str(s) => out.push_str(&format!(" {k}={s}")),
            }
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// A fully assembled trace: the span tree plus trace-level fields.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// The trace's id.
    pub trace_id: u64,
    /// Trace-level fields (session, command, …).
    pub fields: Vec<(String, TraceValue)>,
    /// Top-level spans (normally exactly one: the request span).
    pub roots: Vec<TraceNode>,
    /// Spans dropped past the per-trace cap.
    pub dropped: u64,
}

impl TraceTree {
    /// The single root span, when the tree has exactly one.
    pub fn root(&self) -> Option<&TraceNode> {
        if self.roots.len() == 1 {
            self.roots.first()
        } else {
            None
        }
    }

    /// Renders the trace as a compact single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\"trace_id\":{}", self.trace_id));
        if self.dropped > 0 {
            out.push_str(&format!(",\"dropped\":{}", self.dropped));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(k));
                out.push_str("\":");
                v.render_json(&mut out);
            }
            out.push('}');
        }
        out.push_str(",\"spans\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Renders the trace as an indented text tree (the `txdb traces`
    /// default).
    pub fn render(&self) -> String {
        let mut out = format!("trace {}", self.trace_id);
        for (k, v) in &self.fields {
            match v {
                TraceValue::U64(n) => out.push_str(&format!(" {k}={n}")),
                TraceValue::Str(s) => out.push_str(&format!(" {k}={s}")),
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!(" dropped={}", self.dropped));
        }
        out.push('\n');
        for r in &self.roots {
            r.render_into(1, &mut out);
        }
        out
    }
}

/// Builds the tree: records arrive in *finish* order (children before
/// parents); index them by id, attach to parents, orphans become roots.
fn assemble(records: Vec<SpanRecord>) -> Vec<TraceNode> {
    let known: std::collections::BTreeSet<u64> = records.iter().map(|r| r.id).collect();
    let mut children: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    let mut top: Vec<SpanRecord> = Vec::new();
    for r in records {
        if r.parent != 0 && known.contains(&r.parent) {
            children.entry(r.parent).or_default().push(r);
        } else {
            top.push(r);
        }
    }
    fn build(
        rec: SpanRecord,
        children: &mut BTreeMap<u64, Vec<SpanRecord>>,
        parent_duration: Option<u64>,
    ) -> TraceNode {
        // Instant is monotonic so a child can only outlast its parent by
        // rounding; clamp defensively so `child ≤ parent` always holds.
        let duration_us = match parent_duration {
            Some(p) => rec.duration_us.min(p),
            None => rec.duration_us,
        };
        let mut kids: Vec<TraceNode> = children
            .remove(&rec.id)
            .unwrap_or_default()
            .into_iter()
            .map(|c| build(c, children, Some(duration_us)))
            .collect();
        kids.sort_by_key(|c| c.start_us);
        TraceNode {
            name: rec.name,
            start_us: rec.start_us,
            duration_us,
            fields: rec.fields,
            children: kids,
        }
    }
    let mut roots: Vec<TraceNode> =
        top.into_iter().map(|r| build(r, &mut children, None)).collect();
    roots.sort_by_key(|r| r.start_us);
    roots
}

/// A rendered copy of a [`Registry`], sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, u64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Plain-text rendering, one metric per line (the `txdb metrics`
    /// default).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<36} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<36} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<36} count={} mean={:.1} p50={} p95={} p99={} max={}\n",
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.max
            ));
        }
        out
    }

    /// JSON rendering (the `txdb metrics --json` output and the bench
    /// `engine_metrics` block).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        out.push_str("\n  }\n}");
        out
    }
}

/// The change between two [`MetricsSnapshot`]s — what a windowed poller
/// (`txdb top`, the `METRICS` `since` mode) needs to compute rates.
#[derive(Clone, Debug, Default)]
pub struct MetricsDelta {
    /// Counters that changed: name → increase (reset-safe: a counter
    /// that went backwards reports 0).
    pub counters: Vec<(String, u64)>,
    /// Every gauge's *current* value (gauges are levels, not rates).
    pub gauges: Vec<(String, u64)>,
    /// Histograms that changed: name → (Δcount, Δsum).
    pub histograms: Vec<(String, u64, u64)>,
}

impl MetricsDelta {
    /// Compact single-line JSON rendering (embedded in the `METRICS`
    /// delta response).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, dc, ds)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{\"count\":{},\"sum\":{}}}", json_escape(k), dc, ds));
        }
        out.push_str("}}");
        out
    }
}

impl MetricsSnapshot {
    /// The change from `earlier` to `self`. Counters and histograms that
    /// did not move are omitted; metrics that appeared since `earlier`
    /// count from zero.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsDelta {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, v)| {
                let d = v.saturating_sub(earlier.counter(k).unwrap_or(0));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let gauges = self.gauges.clone();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let old = earlier.histogram(k).unwrap_or_default();
                let dc = h.count.saturating_sub(old.count);
                let ds = h.sum.saturating_sub(old.sum);
                (dc > 0).then(|| (k.clone(), dc, ds))
            })
            .collect();
        MetricsDelta { counters, gauges, histograms }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        // A second lookup shares the same atomic.
        assert_eq!(reg.counter("a.b").get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = reg.gauge("g");
        g.set(42);
        g.set(7);
        assert_eq!(reg.gauge("g").get(), 7);
    }

    #[test]
    fn histogram_bucketing_boundaries() {
        let h = Histogram::default();
        // 0 lands in bucket 0; powers of two straddle bucket edges:
        // bucket b (b ≥ 1) holds [2^(b-1), 2^b - 1].
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 2072);
        assert_eq!(h.max(), 1024);
        // All mass at one value → every percentile is (clamped to) it.
        let one = Histogram::default();
        for _ in 0..100 {
            one.record(5);
        }
        assert_eq!(one.percentile(0.5), 5); // upper bound 7 clamped to max 5
        assert_eq!(one.percentile(0.99), 5);
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        // 90 fast observations (~10 µs) and 10 slow ones (~1000 µs).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        // p50 is in the fast bucket [8, 15]; p95/p99 in the slow bucket
        // [512, 1023], clamped to the observed max 1000.
        assert_eq!(h.percentile(0.50), 15);
        assert_eq!(h.percentile(0.95), 1000);
        assert_eq!(h.percentile(0.99), 1000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean() - 109.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_extreme() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.99), u64::MAX); // clamped to max
    }

    #[test]
    fn concurrent_counter_stress() {
        // The acceptance bar: hot-path increments are plain atomics and
        // concurrent snapshotting never poisons a lock or loses a count.
        let reg = Arc::new(Registry::new());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("stress.count");
                let h = reg.histogram("stress.lat_us");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(t * PER_THREAD + i);
                    if i % 1000 == 0 {
                        // Concurrent reads must not disturb writers.
                        let _ = reg.snapshot();
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no thread panicked");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("stress.count"), Some(THREADS * PER_THREAD));
        let hist = snap.histogram("stress.lat_us").expect("registered");
        assert_eq!(hist.count, THREADS * PER_THREAD);
    }

    #[test]
    fn span_records_and_emits() {
        let reg = Registry::new();
        let sink = Arc::new(MemorySink::default());
        reg.set_sink(sink.clone());
        {
            let _s = reg.span("unit.test_us");
        }
        assert_eq!(reg.histogram("unit.test_us").count(), 1);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"event\":\"unit.test_us\""), "{}", lines[0]);
        assert!(lines[0].contains("\"us\":"));
        // Events with string fields are escaped.
        reg.emit("note", &[("msg", EventValue::Str("a \"quoted\"\nline"))]);
        let lines = sink.lines();
        assert!(lines[1].contains("a \\\"quoted\\\"\\nline"), "{}", lines[1]);
    }

    #[test]
    fn no_sink_means_no_emission_cost_path() {
        let reg = Registry::new();
        assert!(!reg.has_sink());
        reg.emit("ignored", &[("k", EventValue::U64(1))]); // must be a no-op
        {
            let _s = reg.span("still.records_us");
        }
        assert_eq!(reg.histogram("still.records_us").count(), 1);
    }

    #[test]
    fn snapshot_render_text_and_json() {
        let reg = Registry::new();
        reg.counter("x.count").add(3);
        reg.gauge("x.gauge").set(9);
        reg.histogram("x.lat_us").record(100);
        let snap = reg.snapshot();
        let text = snap.to_text();
        assert!(text.contains("x.count"));
        assert!(text.contains("p95="));
        let json = snap.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"x.count\": 3"));
        assert!(json.contains("\"x.gauge\": 9"));
        assert!(json.contains("\"p95\""));
        // Balanced braces — cheap structural sanity (the CI smoke parses
        // the real output with python).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escape_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    fn assert_child_not_longer(node: &TraceNode) {
        for c in &node.children {
            assert!(
                c.duration_us <= node.duration_us,
                "child {} ({}µs) outlives parent {} ({}µs)",
                c.name,
                c.duration_us,
                node.name,
                node.duration_us
            );
            assert_child_not_longer(c);
        }
    }

    #[test]
    fn trace_builds_a_nested_span_tree() {
        let reg = Registry::new();
        let ctx = TraceContext::root(7);
        ctx.set_field("session", 3u64);
        let _g = ctx.install();
        {
            let _outer = reg.span("outer_us");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = reg.span("inner_us");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let mut op = trace_op("custom.op_us").expect("trace installed");
                op.add_field("rows", 4u64);
            }
        }
        let tree = ctx.finish();
        assert_eq!(tree.trace_id, 7);
        assert_eq!(tree.fields, vec![("session".to_string(), TraceValue::U64(3))]);
        let root = tree.root().expect("one root");
        assert_eq!(root.name, "outer_us");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "inner_us");
        assert_eq!(root.children[1].name, "custom.op_us");
        assert_eq!(root.children[1].fields, vec![("rows".to_string(), TraceValue::U64(4))]);
        assert_child_not_longer(root);
        // Exclusive times over the tree sum exactly to the root's clock.
        let sum: u64 =
            root.exclusive_us() + root.children.iter().map(|c| c.exclusive_us()).sum::<u64>();
        assert_eq!(sum, root.duration_us);
        // The root's duration is the same observation the histogram got.
        assert_eq!(reg.histogram("outer_us").sum(), root.duration_us);
        // Rendered forms hold together.
        let json = tree.to_json();
        assert!(json.starts_with("{\"trace_id\":7"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(tree.render().contains("outer_us"));
    }

    #[test]
    fn trace_install_nests_and_restores() {
        assert!(TraceContext::current().is_none());
        let a = TraceContext::root(1);
        {
            let _ga = a.install();
            assert_eq!(TraceContext::current().unwrap().trace_id(), 1);
            let b = TraceContext::root(2);
            {
                let _gb = b.install();
                assert_eq!(TraceContext::current().unwrap().trace_id(), 2);
            }
            assert_eq!(TraceContext::current().unwrap().trace_id(), 1);
        }
        assert!(TraceContext::current().is_none());
        assert!(trace_op("nothing").is_none());
    }

    #[test]
    fn trace_record_complete_backdates_and_caps() {
        let ctx = TraceContext::root(9);
        let parent = ctx.record_complete("parent_us", 100, Vec::new());
        parent.record_complete("child_us", 40, vec![("rows".into(), TraceValue::U64(2))]);
        // Overflow the span cap; the surplus is counted, not stored.
        for i in 0..(MAX_TRACE_SPANS + 10) {
            ctx.record_complete("noise_us", i as u64, Vec::new());
        }
        let tree = ctx.finish();
        assert_eq!(tree.dropped, 12); // 2 real spans + 254 noise fit
        let parent = tree.roots.iter().find(|r| r.name == "parent_us").expect("kept");
        assert_eq!(parent.duration_us, 100);
        assert_eq!(parent.children.len(), 1);
        assert_eq!(parent.children[0].duration_us, 40);
        assert_child_not_longer(parent);
    }

    #[test]
    fn trace_clamps_children_to_parent() {
        let ctx = TraceContext::root(3);
        let parent = ctx.record_complete("p_us", 50, Vec::new());
        parent.record_complete("c_us", 80, Vec::new()); // lies about its size
        let tree = ctx.finish();
        let p = tree.root().expect("one root");
        assert_eq!(p.children[0].duration_us, 50); // clamped
        assert_child_not_longer(p);
    }

    #[test]
    fn snapshot_delta_reports_changes_only() {
        let reg = Registry::new();
        let c = reg.counter("x.count");
        let h = reg.histogram("x.lat_us");
        let g = reg.gauge("x.level");
        c.add(5);
        h.record(10);
        g.set(1);
        let before = reg.snapshot();
        c.add(3);
        h.record(90);
        h.record(10);
        g.set(7);
        reg.counter("x.idle"); // registered but never incremented
        let after = reg.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.counters, vec![("x.count".to_string(), 3)]);
        assert_eq!(d.histograms, vec![("x.lat_us".to_string(), 2, 100)]);
        assert!(d.gauges.contains(&("x.level".to_string(), 7)));
        let json = d.to_json();
        assert!(json.contains("\"x.count\":3"), "{json}");
        assert!(json.contains("\"x.lat_us\":{\"count\":2,\"sum\":100}"), "{json}");
        // Same-snapshot delta is empty.
        let none = after.delta_since(&after);
        assert!(none.counters.is_empty() && none.histograms.is_empty());
    }

    /// A writer that hands each chunk to the shared buffer as-is, so any
    /// interleaving between `write_all` calls would be visible.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn concurrent_jsonlines_sink_emits_whole_lines() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        let buf = Arc::new(Mutex::new(Vec::new()));
        let reg = Arc::new(Registry::new());
        reg.set_sink(Arc::new(JsonLinesSink::writer(Box::new(SharedBuf(Arc::clone(&buf))))));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    reg.emit(
                        "sink.stress",
                        &[
                            ("thread", EventValue::U64(t as u64)),
                            ("seq", EventValue::U64(i as u64)),
                            ("payload", EventValue::Str("a \"tricky\"\nstring")),
                        ],
                    );
                }
            }));
        }
        for h in handles {
            h.join().expect("no panic");
        }
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), THREADS * PER_THREAD);
        for line in lines {
            // Well-formed and non-interleaved: each line is one complete
            // object with balanced quotes and braces.
            assert!(line.starts_with("{\"event\":\"sink.stress\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert_eq!(line.matches("\"thread\":").count(), 1, "{line}");
            assert_eq!(line.matches("\"seq\":").count(), 1, "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count(), "{line}");
        }
    }

    #[test]
    fn concurrent_memory_sink_is_per_thread_monotonic() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let reg = Arc::new(Registry::new());
        let sink = Arc::new(MemorySink::default());
        reg.set_sink(sink.clone());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    reg.emit(
                        "mem.stress",
                        &[("thread", EventValue::U64(t)), ("seq", EventValue::U64(i))],
                    );
                }
            }));
        }
        for h in handles {
            h.join().expect("no panic");
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), (THREADS * PER_THREAD) as usize);
        // Each thread's events appear in the order that thread emitted
        // them, even though threads interleave freely.
        let mut last_seq = vec![None::<u64>; THREADS as usize];
        for line in &lines {
            let grab = |key: &str| -> u64 {
                let at = line.find(key).unwrap_or_else(|| panic!("{key} in {line}")) + key.len();
                line[at..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .unwrap()
            };
            let (t, seq) = (grab("\"thread\":") as usize, grab("\"seq\":"));
            if let Some(prev) = last_seq[t] {
                assert!(seq > prev, "thread {t} went {prev} -> {seq}");
            }
            last_seq[t] = Some(seq);
        }
        for (t, last) in last_seq.iter().enumerate() {
            assert_eq!(*last, Some(PER_THREAD - 1), "thread {t} incomplete");
        }
    }
}
