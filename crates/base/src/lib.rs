//! # txdb-base — foundation types for the temporal XML database
//!
//! This crate defines the vocabulary shared by every layer of the system:
//!
//! * [`Timestamp`] — transaction time, microseconds since the Unix epoch
//!   (the paper, §3.1, scopes the system to transaction-time support).
//! * [`Interval`] — the half-open time interval `[t1, t2)` used by
//!   `DocHistory` and `ElementHistory` (the paper's `[t1, t2⟩`).
//! * [`DocId`], [`Xid`], [`VersionId`] — identifiers of documents,
//!   persistent elements and numbered versions.
//! * [`Eid`] — *element identifier*: the concatenation of document id and
//!   XID, identifying an element in a time-independent manner (§3.2).
//! * [`Teid`] — *temporal element identifier*: an [`Eid`] plus a timestamp,
//!   uniquely identifying one *version* of an element (§3.2).
//! * [`Error`] / [`Result`] — the error type used across the workspace.
//! * [`obs`] — the observability substrate: a lock-free metrics registry
//!   (counters, gauges, log-bucketed latency histograms) and lightweight
//!   span tracing with a pluggable JSON-lines sink. Every layer registers
//!   its counters here so `txdb metrics`, `txdb stats`, query
//!   `ExecStats` and the bench binaries all report from one source of
//!   truth.
//!
//! Nothing here depends on XML or storage; higher crates build on these
//! types without cyclic dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod interval;
pub mod obs;
pub mod time;

pub use error::{Error, Result};
pub use ids::{DocId, Eid, Teid, VersionId, Xid};
pub use interval::Interval;
pub use time::{Duration, Timestamp};
