//! Workspace-wide error type.
//!
//! A single error enum keeps the crate graph simple (every layer already
//! depends on `txdb-base`) and keeps error construction allocation-free for
//! the hot paths; variants that describe user input carry owned strings.

use std::fmt;

use crate::ids::{DocId, Eid, VersionId};
use crate::time::Timestamp;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by any layer of the temporal XML database.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An I/O error from the storage layer.
    Io(std::io::Error),
    /// XML input could not be parsed. Carries a byte offset and message.
    XmlParse {
        /// Byte offset into the input where parsing failed.
        offset: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A date/time literal could not be parsed.
    TimeParse(String),
    /// A query string could not be parsed. Carries position and message.
    QueryParse {
        /// Byte offset into the query where parsing failed.
        offset: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A query was well-formed but cannot be planned or executed.
    QueryInvalid(String),
    /// The named document does not exist.
    NoSuchDocument(String),
    /// The document id does not exist.
    NoSuchDocId(DocId),
    /// The requested version of a document does not exist.
    NoSuchVersion(DocId, VersionId),
    /// No version of the document is valid at the given time.
    NotValidAt(DocId, Timestamp),
    /// The element does not exist (in the version consulted).
    NoSuchElement(Eid),
    /// A delta could not be applied to the tree it was aimed at.
    DeltaMismatch(String),
    /// The storage file is corrupt or from an incompatible version.
    Corrupt(String),
    /// A page failed its checksum: the stored CRC32 does not match the
    /// page contents (bit rot, torn write, or external modification).
    Corruption {
        /// The page number that failed verification.
        page: u64,
        /// The CRC32 stored in the page trailer.
        expected: u32,
        /// The CRC32 computed over the page contents.
        actual: u32,
    },
    /// The store is open in read-only (salvage) mode; mutations are
    /// rejected. Carries the reason the store degraded.
    ReadOnly(String),
    /// A record or page reference is invalid.
    InvalidRef(String),
    /// The write-ahead log is corrupt past a given offset (truncated tail
    /// records are tolerated and reported via recovery stats instead).
    WalCorrupt(u64, String),
    /// Operation is not supported in the current configuration.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::XmlParse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            Error::TimeParse(s) => write!(f, "cannot parse time literal: {s}"),
            Error::QueryParse { offset, message } => {
                write!(f, "query parse error at byte {offset}: {message}")
            }
            Error::QueryInvalid(s) => write!(f, "invalid query: {s}"),
            Error::NoSuchDocument(name) => write!(f, "no such document: {name}"),
            Error::NoSuchDocId(d) => write!(f, "no such document id: {d}"),
            Error::NoSuchVersion(d, v) => write!(f, "document {d} has no version {v}"),
            Error::NotValidAt(d, t) => {
                write!(f, "document {d} has no version valid at {t}")
            }
            Error::NoSuchElement(e) => write!(f, "no such element: {e}"),
            Error::DeltaMismatch(s) => write!(f, "delta does not match tree: {s}"),
            Error::Corrupt(s) => write!(f, "storage corrupt: {s}"),
            Error::Corruption { page, expected, actual } => write!(
                f,
                "page {page} checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
            ),
            Error::ReadOnly(s) => write!(f, "store is read-only (salvage mode): {s}"),
            Error::InvalidRef(s) => write!(f, "invalid reference: {s}"),
            Error::WalCorrupt(off, s) => write!(f, "WAL corrupt at offset {off}: {s}"),
            Error::Unsupported(s) => write!(f, "unsupported operation: {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<Error> = vec![
            Error::Io(std::io::Error::other("x")),
            Error::XmlParse { offset: 3, message: "bad".into() },
            Error::TimeParse("32/13/2001".into()),
            Error::QueryParse { offset: 0, message: "eof".into() },
            Error::QueryInvalid("no FROM".into()),
            Error::NoSuchDocument("guide.com".into()),
            Error::NoSuchDocId(DocId(7)),
            Error::NoSuchVersion(DocId(7), VersionId(3)),
            Error::NotValidAt(DocId(7), Timestamp::from_micros(5)),
            Error::NoSuchElement(Eid::new(DocId(7), crate::ids::Xid(9))),
            Error::DeltaMismatch("path".into()),
            Error::Corrupt("magic".into()),
            Error::Corruption { page: 4, expected: 0xDEAD_BEEF, actual: 0 },
            Error::ReadOnly("wal corrupt".into()),
            Error::InvalidRef("page 9".into()),
            Error::WalCorrupt(128, "crc".into()),
            Error::Unsupported("valid time".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
