//! Identifiers: documents, persistent elements, versions.
//!
//! The paper (§3.2) observes that XML elements have no identity of their own
//! that persists across versions, and adopts Xyleme's persistent element
//! identifiers (XIDs): an XID identifies an element of a particular document
//! in a time-independent manner and is never reused after deletion. On top
//! of XIDs the paper defines
//!
//! * **EID** — the concatenation of document id and XID, uniquely naming an
//!   element across the whole database, and
//! * **TEID** — the concatenation of EID and timestamp, uniquely naming one
//!   *version* of an element. TEIDs are the output type of the temporal
//!   operators (`TPatternScan` returns a set of TEIDs, etc.).

use std::fmt;

use crate::time::Timestamp;

/// Identifier of a (named) document in the database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Persistent element identifier within one document (Xyleme's *XID*).
///
/// Assigned when an element first appears in some version, preserved by the
/// diff across versions, and never reused after the element is deleted.
/// XID 0 is reserved for "no element" / the virtual forest root.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Xid(pub u64);

impl Xid {
    /// The reserved "none" XID.
    pub const NONE: Xid = Xid(0);
    /// First XID handed out to real elements.
    pub const FIRST: Xid = Xid(1);

    /// The next XID in allocation order.
    #[inline]
    pub const fn next(self) -> Xid {
        Xid(self.0 + 1)
    }

    /// True for the reserved "none" XID.
    #[inline]
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Dense per-document version number.
///
/// §7.1: "Each version is numbered, so that we do not have to store the
/// timestamps in the text indexes"; the delta index maps version numbers to
/// timestamps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VersionId(pub u32);

impl VersionId {
    /// The first version of every document.
    pub const FIRST: VersionId = VersionId(0);

    /// The next version number.
    #[inline]
    pub const fn next(self) -> VersionId {
        VersionId(self.0 + 1)
    }

    /// The previous version number, or `None` for the first version.
    #[inline]
    pub fn prev(self) -> Option<VersionId> {
        self.0.checked_sub(1).map(VersionId)
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Element identifier: document id + XID (§3.2).
///
/// "An EID identifies uniquely a particular element in a particular
/// document", independent of time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Eid {
    /// The document containing the element.
    pub doc: DocId,
    /// The persistent element id within the document.
    pub xid: Xid,
}

impl Eid {
    /// Creates an EID from its parts.
    #[inline]
    pub const fn new(doc: DocId, xid: Xid) -> Self {
        Eid { doc, xid }
    }

    /// Attaches a timestamp, producing a TEID.
    #[inline]
    pub const fn at(self, ts: Timestamp) -> Teid {
        Teid { eid: self, ts }
    }
}

impl fmt::Display for Eid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.doc, self.xid)
    }
}

/// Temporal element identifier: EID + timestamp (§3.2).
///
/// Uniquely identifies one *version* of an element; the timestamp is the
/// transaction time at which that version became current. The temporal
/// operators consume and produce sets of TEIDs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Teid {
    /// The time-independent element identifier.
    pub eid: Eid,
    /// Timestamp selecting the version of the element.
    pub ts: Timestamp,
}

impl Teid {
    /// Creates a TEID from its parts.
    #[inline]
    pub const fn new(eid: Eid, ts: Timestamp) -> Self {
        Teid { eid, ts }
    }

    /// The document component.
    #[inline]
    pub const fn doc(self) -> DocId {
        self.eid.doc
    }

    /// The XID component.
    #[inline]
    pub const fn xid(self) -> Xid {
        self.eid.xid
    }
}

impl fmt::Display for Teid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.eid, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xid_allocation_order() {
        assert!(Xid::NONE.is_none());
        assert!(!Xid::FIRST.is_none());
        assert_eq!(Xid::FIRST.next(), Xid(2));
        assert!(Xid(1) < Xid(2));
    }

    #[test]
    fn version_prev_next() {
        assert_eq!(VersionId::FIRST.prev(), None);
        assert_eq!(VersionId(3).prev(), Some(VersionId(2)));
        assert_eq!(VersionId(3).next(), VersionId(4));
    }

    #[test]
    fn eid_teid_display() {
        let e = Eid::new(DocId(4), Xid(17));
        assert_eq!(e.to_string(), "d4.x17");
        let t = e.at(Timestamp::from_date(2001, 1, 26));
        assert_eq!(t.to_string(), "d4.x17@2001-01-26");
        assert_eq!(t.doc(), DocId(4));
        assert_eq!(t.xid(), Xid(17));
    }

    #[test]
    fn teid_orders_by_eid_then_time() {
        let a = Eid::new(DocId(1), Xid(1)).at(Timestamp::from_micros(5));
        let b = Eid::new(DocId(1), Xid(1)).at(Timestamp::from_micros(9));
        let c = Eid::new(DocId(1), Xid(2)).at(Timestamp::from_micros(1));
        assert!(a < b && b < c);
    }
}
