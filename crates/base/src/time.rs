//! Transaction-time timestamps and durations.
//!
//! The paper (§3.1) concentrates on *transaction time*: the time a document
//! version was stored (or, in the warehouse case, crawled). We represent it
//! as microseconds since the Unix epoch in a `u64` newtype. Two sentinels
//! matter:
//!
//! * [`Timestamp::ZERO`] — the beginning of time,
//! * [`Timestamp::FOREVER`] — "until changed" / the paper's open upper
//!   bound; the end-timestamp of every current version.
//!
//! The query layer supports the paper's `DD/MM/YYYY` date literals and
//! `NOW - 14 DAYS`-style arithmetic (§5); parsing and formatting live here so
//! every crate agrees on the encoding. Calendar conversion uses Howard
//! Hinnant's `days_from_civil` algorithm, exact over the whole `u64` range we
//! use.

use std::fmt;
use std::ops::{Add, Sub};

use crate::error::{Error, Result};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds in one day.
pub const MICROS_PER_DAY: u64 = 86_400 * MICROS_PER_SEC;

/// A transaction-time instant: microseconds since 1970-01-01T00:00:00Z.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The beginning of time.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The open upper bound: a current version is valid `[t, FOREVER)`.
    pub const FOREVER: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw microseconds since the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Returns the raw microseconds since the epoch.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Creates a timestamp from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * MICROS_PER_SEC)
    }

    /// Creates a timestamp at midnight UTC on the given civil date.
    ///
    /// Dates before the epoch are clamped to [`Timestamp::ZERO`]; the
    /// transaction-time domain of this system starts at the epoch.
    pub fn from_date(year: i32, month: u32, day: u32) -> Self {
        let days = days_from_civil(year, month, day);
        if days < 0 {
            Timestamp::ZERO
        } else {
            Timestamp(days as u64 * MICROS_PER_DAY)
        }
    }

    /// Creates a timestamp from a civil date and time of day (UTC).
    pub fn from_datetime(year: i32, month: u32, day: u32, h: u32, m: u32, s: u32) -> Self {
        let base = Self::from_date(year, month, day);
        Timestamp(base.0 + (h as u64 * 3600 + m as u64 * 60 + s as u64) * MICROS_PER_SEC)
    }

    /// Decomposes into (year, month, day, hour, minute, second, micros).
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32, u32) {
        let days = (self.0 / MICROS_PER_DAY) as i64;
        let rem = self.0 % MICROS_PER_DAY;
        let (y, mo, d) = civil_from_days(days);
        let secs = rem / MICROS_PER_SEC;
        let us = (rem % MICROS_PER_SEC) as u32;
        (y, mo, d, (secs / 3600) as u32, ((secs / 60) % 60) as u32, (secs % 60) as u32, us)
    }

    /// Parses a time literal in any of the formats accepted by the query
    /// language:
    ///
    /// * `26/01/2001` — the paper's `DD/MM/YYYY`,
    /// * `2001-01-26` — ISO date,
    /// * `2001-01-26T13:45:00` / `2001-01-26 13:45:00` — ISO date-time,
    /// * a bare integer — raw microseconds since the epoch.
    pub fn parse(s: &str) -> Result<Self> {
        let s = s.trim();
        let err = || Error::TimeParse(s.to_string());
        if s.is_empty() {
            return Err(err());
        }
        if s.contains('/') {
            // DD/MM/YYYY
            let mut it = s.split('/');
            let d: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            let m: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            let y: i32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            if it.next().is_some() {
                return Err(err());
            }
            return validate_date(y, m, d).ok_or_else(err);
        }
        if s.contains('-') {
            let (date, time) = match s.find(['T', ' ']) {
                Some(i) => (&s[..i], Some(&s[i + 1..])),
                None => (s, None),
            };
            let mut it = date.split('-');
            let y: i32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            let m: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            let d: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            if it.next().is_some() {
                return Err(err());
            }
            let base = validate_date(y, m, d).ok_or_else(err)?;
            let Some(time) = time else { return Ok(base) };
            let mut it = time.split(':');
            let h: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            let mi: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
            let sec: u32 = match it.next() {
                Some(p) => p.parse().map_err(|_| err())?,
                None => 0,
            };
            if it.next().is_some() || h >= 24 || mi >= 60 || sec >= 60 {
                return Err(err());
            }
            return Ok(Timestamp(
                base.0 + (h as u64 * 3600 + mi as u64 * 60 + sec as u64) * MICROS_PER_SEC,
            ));
        }
        s.parse::<u64>().map(Timestamp).map_err(|_| err())
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// The duration elapsed from `earlier` to `self` (zero if negative).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// True if this is the `FOREVER` sentinel.
    #[inline]
    pub const fn is_forever(self) -> bool {
        self.0 == u64::MAX
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_forever() {
            return write!(f, "FOREVER");
        }
        let (y, mo, d, h, mi, s, us) = self.to_civil();
        if h == 0 && mi == 0 && s == 0 && us == 0 {
            write!(f, "{y:04}-{mo:02}-{d:02}")
        } else if us == 0 {
            write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}")
        } else {
            write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{us:06}")
        }
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Timestamp({self})")
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        self.saturating_add(d)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        self.saturating_sub(d)
    }
}

fn validate_date(y: i32, m: u32, d: u32) -> Option<Timestamp> {
    if !(1..=12).contains(&m) || d == 0 || d > days_in_month(y, m) {
        return None;
    }
    Some(Timestamp::from_date(y, m, d))
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(y) => 29,
        2 => 28,
        _ => 0,
    }
}

fn is_leap(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date from days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

/// A span of transaction time, in microseconds. Supports the paper's
/// `NOW - 14 DAYS` / `26/01/2001 + 2 WEEKS` query expressions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }
    /// From whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * MICROS_PER_SEC)
    }
    /// From whole minutes.
    #[inline]
    pub const fn from_minutes(m: u64) -> Self {
        Duration(m * 60 * MICROS_PER_SEC)
    }
    /// From whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        Duration(h * 3600 * MICROS_PER_SEC)
    }
    /// From whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        Duration(d * MICROS_PER_DAY)
    }
    /// From whole weeks.
    #[inline]
    pub const fn from_weeks(w: u64) -> Self {
        Duration(w * 7 * MICROS_PER_DAY)
    }
    /// Raw microseconds.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({}us)", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, o: Duration) -> Duration {
        Duration(self.0.saturating_add(o.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_date(1970, 1, 1), Timestamp::ZERO);
    }

    #[test]
    fn civil_roundtrip_known_dates() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2001, 1, 26),
            (2001, 12, 31),
            (2026, 7, 5),
            (2100, 3, 1),
            (1999, 12, 31),
        ] {
            let t = Timestamp::from_date(y, m, d);
            let (yy, mm, dd, h, mi, s, us) = t.to_civil();
            assert_eq!((yy, mm, dd), (y, m, d));
            assert_eq!((h, mi, s, us), (0, 0, 0, 0));
        }
    }

    #[test]
    fn parse_paper_format() {
        let t = Timestamp::parse("26/01/2001").unwrap();
        assert_eq!(t, Timestamp::from_date(2001, 1, 26));
    }

    #[test]
    fn parse_iso_date_and_datetime() {
        assert_eq!(Timestamp::parse("2001-01-26").unwrap(), Timestamp::from_date(2001, 1, 26));
        assert_eq!(
            Timestamp::parse("2001-01-26T13:45:10").unwrap(),
            Timestamp::from_datetime(2001, 1, 26, 13, 45, 10)
        );
        assert_eq!(
            Timestamp::parse("2001-01-26 13:45").unwrap(),
            Timestamp::from_datetime(2001, 1, 26, 13, 45, 0)
        );
    }

    #[test]
    fn parse_raw_micros() {
        assert_eq!(Timestamp::parse("123456").unwrap(), Timestamp::from_micros(123456));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "32/01/2001",
            "29/02/2001",
            "0/01/2001",
            "2001-13-01",
            "abc",
            "2001-01-26T25:00:00",
            "1/2/3/4",
        ] {
            assert!(Timestamp::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn leap_day_accepted_in_leap_year() {
        assert!(Timestamp::parse("29/02/2000").is_ok());
        assert!(Timestamp::parse("29/02/1999").is_err());
    }

    #[test]
    fn display_date_only_and_datetime() {
        assert_eq!(Timestamp::from_date(2001, 1, 26).to_string(), "2001-01-26");
        assert_eq!(
            Timestamp::from_datetime(2001, 1, 26, 9, 5, 7).to_string(),
            "2001-01-26T09:05:07"
        );
        assert_eq!(Timestamp::FOREVER.to_string(), "FOREVER");
    }

    #[test]
    fn display_parses_back() {
        let t = Timestamp::from_datetime(2011, 11, 3, 1, 2, 3);
        assert_eq!(Timestamp::parse(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn duration_arithmetic() {
        let t = Timestamp::from_date(2001, 1, 26);
        assert_eq!(t - Duration::from_days(14), Timestamp::from_date(2001, 1, 12));
        assert_eq!(t + Duration::from_weeks(2), Timestamp::from_date(2001, 2, 9));
        assert_eq!(Timestamp::ZERO - Duration::from_days(1), Timestamp::ZERO);
        assert_eq!(Timestamp::FOREVER + Duration::from_days(1), Timestamp::FOREVER);
    }

    #[test]
    fn since_is_saturating() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(4);
        assert_eq!(a.since(b), Duration::from_secs(6));
        assert_eq!(b.since(a), Duration::ZERO);
    }

    #[test]
    fn ordering_matches_micros() {
        assert!(Timestamp::from_micros(1) < Timestamp::from_micros(2));
        assert!(Timestamp::FOREVER > Timestamp::from_date(9999, 12, 31));
    }
}
