//! The server's trace ring and slow-query log.
//!
//! Both are bounded in-memory `VecDeque` rings shared by every session:
//! traced requests (any command sent with `"trace":true`) land in the
//! trace ring as fully assembled span trees, and any `QUERY` whose wall
//! clock crosses the `--slow-ms` threshold lands in the slow-query log
//! with its rendered `EXPLAIN ANALYZE` tree and session context. The
//! `TRACES` / `SLOWLOG` wire commands read them back newest-first;
//! `txdb traces` renders them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use txdb_base::obs::{json_escape, TraceTree};
use txdb_client::json::escape_into;

/// Traces kept before the oldest is evicted.
const TRACE_RING: usize = 64;
/// Slow-query entries kept before the oldest is evicted.
const SLOW_RING: usize = 128;

/// One recorded request trace.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// The trace's id (unique per server run).
    pub trace_id: u64,
    /// Session that issued the request.
    pub session: u64,
    /// Command tag (`query`, `put`, …).
    pub cmd: &'static str,
    /// Root duration in microseconds.
    pub us: u64,
    /// The assembled span tree, pre-rendered as compact JSON.
    pub tree_json: String,
}

/// One slow-query log entry.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Trace id when the offending request was traced.
    pub trace_id: Option<u64>,
    /// Session that issued the query.
    pub session: u64,
    /// The query text as received (prefix included).
    pub q: String,
    /// The query's `NOW` anchor in microseconds.
    pub at: u64,
    /// Wall-clock duration in microseconds.
    pub us: u64,
    /// Rows returned.
    pub rows: u64,
    /// Rows scanned (`ExecStats`).
    pub rows_scanned: u64,
    /// Version reconstructions performed.
    pub reconstructions: u64,
    /// The rendered `EXPLAIN ANALYZE` tree.
    pub explain: String,
}

/// Shared store for traces and slow queries (lives in the server's
/// `Shared` state; sessions record into it, wire commands read it).
#[derive(Default)]
pub struct TraceStore {
    next_trace_id: AtomicU64,
    traces: Mutex<VecDeque<TraceEntry>>,
    slow: Mutex<VecDeque<SlowEntry>>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore { next_trace_id: AtomicU64::new(1), ..TraceStore::default() }
    }

    /// Allocates the next trace id.
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one finished trace (evicting the oldest past the cap).
    pub fn record_trace(&self, session: u64, cmd: &'static str, tree: &TraceTree) {
        let entry = TraceEntry {
            trace_id: tree.trace_id,
            session,
            cmd,
            us: tree.roots.iter().map(|r| r.duration_us).max().unwrap_or(0),
            tree_json: tree.to_json(),
        };
        let mut ring = lock(&self.traces);
        if ring.len() >= TRACE_RING {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Records one slow query (evicting the oldest past the cap).
    pub fn record_slow(&self, entry: SlowEntry) {
        let mut ring = lock(&self.slow);
        if ring.len() >= SLOW_RING {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Number of slow entries recorded and still held.
    pub fn slow_len(&self) -> usize {
        lock(&self.slow).len()
    }

    /// Renders the `TRACES` response: newest first, capped at `limit`.
    pub fn render_traces(&self, limit: Option<usize>) -> String {
        let ring = lock(&self.traces);
        let take = limit.unwrap_or(usize::MAX).min(ring.len());
        let mut out = String::from(r#"{"ok":true,"traces":["#);
        for (i, e) in ring.iter().rev().take(take).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                r#"{{"trace_id":{},"session":{},"cmd":"{}","us":{},"trace":{}}}"#,
                e.trace_id, e.session, e.cmd, e.us, e.tree_json
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the `SLOWLOG` response: newest first, capped at `limit`.
    pub fn render_slowlog(&self, limit: Option<usize>, slow_us: Option<u64>) -> String {
        let ring = lock(&self.slow);
        let take = limit.unwrap_or(usize::MAX).min(ring.len());
        let mut out = String::from(r#"{"ok":true,"#);
        match slow_us {
            Some(us) => out.push_str(&format!(r#""slow_us":{us},"#)),
            None => out.push_str(r#""slow_us":null,"#),
        }
        out.push_str(r#""entries":["#);
        for (i, e) in ring.iter().rev().take(take).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"q\":\"");
            escape_into(&e.q, &mut out);
            out.push_str(&format!(
                "\",\"session\":{},\"at\":{},\"us\":{},\"rows\":{},\"rows_scanned\":{},\
                 \"reconstructions\":{}",
                e.session, e.at, e.us, e.rows, e.rows_scanned, e.reconstructions
            ));
            if let Some(t) = e.trace_id {
                out.push_str(&format!(",\"trace_id\":{t}"));
            }
            out.push_str(",\"explain\":\"");
            out.push_str(&json_escape(&e.explain));
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_base::obs::TraceContext;
    use txdb_client::json::Json;

    #[test]
    fn rings_are_bounded_and_newest_first() {
        let store = TraceStore::new();
        assert_eq!(store.next_trace_id(), 1);
        assert_eq!(store.next_trace_id(), 2);
        for i in 0..(TRACE_RING + 5) {
            let ctx = TraceContext::root(i as u64);
            ctx.record_complete("cmd_us", 10 + i as u64, Vec::new());
            store.record_trace(1, "query", &ctx.finish());
        }
        let rendered = store.render_traces(Some(2));
        let v = Json::parse(&rendered).expect("valid JSON");
        let traces = v.get("traces").and_then(Json::as_arr).expect("array");
        assert_eq!(traces.len(), 2);
        // Newest first, and the ring evicted the oldest entries.
        assert_eq!(traces[0].get("trace_id").and_then(Json::as_u64), Some(TRACE_RING as u64 + 4));
        let all = Json::parse(&store.render_traces(None)).unwrap();
        assert_eq!(all.get("traces").and_then(Json::as_arr).unwrap().len(), TRACE_RING);

        for i in 0..(SLOW_RING + 3) {
            store.record_slow(SlowEntry {
                trace_id: (i % 2 == 0).then_some(i as u64),
                session: 9,
                q: format!("SELECT {i} \"quoted\""),
                at: 1,
                us: 5000 + i as u64,
                rows: 1,
                rows_scanned: 2,
                reconstructions: 3,
                explain: "project\n  scan".into(),
            });
        }
        assert_eq!(store.slow_len(), SLOW_RING);
        let rendered = store.render_slowlog(Some(1), Some(1000));
        let v = Json::parse(&rendered).expect("valid JSON");
        assert_eq!(v.get("slow_us").and_then(Json::as_u64), Some(1000));
        let entries = v.get("entries").and_then(Json::as_arr).expect("array");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("us").and_then(Json::as_u64), Some(5000 + SLOW_RING as u64 + 2));
        assert!(entries[0].get("explain").and_then(Json::as_str).unwrap().contains("scan"));
    }
}
