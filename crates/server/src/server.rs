//! The threaded TCP server: accept gate, session threads, graceful drain.
//!
//! One thread per connected session over a shared [`Database`] handle —
//! the engine is `Send + Sync` (PR 8), readers run in parallel under
//! snapshot isolation and concurrent committers batch their fsyncs
//! through the WAL's group commit, so wire clients compose exactly like
//! in-process threads. The accept loop enforces `max_conns` (excess
//! connections get one structured `busy` error and are closed), and
//! [`ServerHandle::shutdown`] drains gracefully: stop accepting, let every
//! in-flight command finish (sessions' *read* halves are shut down, their
//! write halves stay open for the final response), release session pins,
//! then checkpoint the store so the WAL closes cleanly.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use txdb_base::obs::EventValue;
use txdb_base::{Error, Result};
use txdb_core::Database;

use crate::proto::{ErrorCode, WireError};
use crate::session::{Session, SessionEnd};
use crate::traces::TraceStore;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port `0` = ephemeral).
    pub addr: String,
    /// Accept gate: connections beyond this many live sessions receive a
    /// structured `busy` error and are closed.
    pub max_conns: usize,
    /// Request lines longer than this are refused (`too_large`) without
    /// ever being buffered whole.
    pub max_request_bytes: usize,
    /// Slow-query threshold in microseconds: a `QUERY` at or past it is
    /// recorded — with its `EXPLAIN ANALYZE` tree and session context —
    /// into the `SLOWLOG` ring. `None` disables the log (and its
    /// per-query metering cost) entirely.
    pub slow_us: Option<u64>,
    /// Idle-session read timeout: a session that sends nothing for this
    /// long gets one structured `idle_timeout` error and is closed,
    /// releasing its pins like any disconnect. `None` waits forever.
    pub idle_timeout: Option<std::time::Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_conns: 64,
            max_request_bytes: 1 << 20,
            slow_us: None,
            idle_timeout: None,
        }
    }
}

/// Why the server is shutting down — delivered to whoever waits on
/// [`ServerHandle::drain_requests`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainReason {
    /// A client sent `SHUTDOWN`.
    ClientRequest,
    /// The embedding process asked (e.g. stdin closed under `txdb serve`).
    HostRequest,
}

/// What the drain accomplished.
#[derive(Debug, Default, Clone, Copy)]
pub struct DrainReport {
    /// Sessions that were still connected when the drain began.
    pub sessions_drained: usize,
    /// Total sessions served over the listener's lifetime.
    pub sessions_total: u64,
}

struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    traces: Arc<TraceStore>,
    draining: AtomicBool,
    active: AtomicUsize,
    session_seq: AtomicU64,
    /// Live sessions' streams, for read-half shutdown at drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    drain_tx: Sender<DrainReason>,
}

/// The running server. Dropping the handle aborts without draining; call
/// [`ServerHandle::shutdown`] for the graceful path.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_join: Option<JoinHandle<()>>,
    drain_rx: Receiver<DrainReason>,
}

/// Alias kept for readability at call sites: what [`Server::start`]
/// returns is a handle, not the accept loop itself.
pub type ServerHandle = Server;

impl Server {
    /// Binds `cfg.addr` and spawns the accept loop over `db`.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let (drain_tx, drain_rx) = channel();
        let shared = Arc::new(Shared {
            db,
            cfg,
            traces: Arc::new(TraceStore::new()),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            session_seq: AtomicU64::new(1),
            conns: Mutex::new(HashMap::new()),
            joins: Mutex::new(Vec::new()),
            drain_tx,
        });
        let reg = Arc::clone(shared.db.metrics());
        reg.emit(
            "server.listening",
            &[
                ("addr", EventValue::Str(&addr.to_string())),
                ("max_conns", EventValue::U64(shared.cfg.max_conns as u64)),
            ],
        );
        let accept_shared = Arc::clone(&shared);
        let accept_join = std::thread::Builder::new()
            .name("txdb-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(Error::Io)?;
        Ok(Server { shared, addr, accept_join: Some(accept_join), drain_rx })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of live sessions.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Blocks until someone asks for a drain (a client `SHUTDOWN`), then
    /// returns why. Embedders that have their own shutdown signal (stdin
    /// EOF, a unix signal bridged by the host) race it against this via
    /// [`Server::drain_requester`].
    pub fn wait_drain_requested(&self) -> DrainReason {
        self.drain_rx.recv().unwrap_or(DrainReason::HostRequest)
    }

    /// A sender the host can use to request a drain from another thread
    /// (it feeds the same queue `SHUTDOWN` commands use).
    pub fn drain_requester(&self) -> Sender<DrainReason> {
        self.shared.drain_tx.clone()
    }

    /// Graceful drain: stop accepting, shut down every session's read
    /// half (in-flight commands finish and their responses flush), join
    /// all session threads — which releases their snapshot pins — then
    /// checkpoint the store so the WAL closes cleanly.
    pub fn shutdown(mut self) -> Result<DrainReport> {
        let shared = Arc::clone(&self.shared);
        let reg = Arc::clone(shared.db.metrics());
        shared.draining.store(true, Ordering::SeqCst);
        // Unblock the accept loop: a throwaway connection to ourselves.
        // The loop sees `draining` and exits before serving it.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
        let report = DrainReport {
            sessions_drained: shared.active.load(Ordering::SeqCst),
            sessions_total: shared.session_seq.load(Ordering::SeqCst) - 1,
        };
        for (_, conn) in shared.conns.lock().expect("conns lock").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let joins: Vec<JoinHandle<()>> =
            std::mem::take(&mut *shared.joins.lock().expect("joins lock"));
        for j in joins {
            let _ = j.join();
        }
        // Every session is gone: their pins are released. Close the WAL
        // cleanly (checkpoint truncates it and persists the indexes).
        shared.db.checkpoint()?;
        reg.emit(
            "server.drained",
            &[
                ("sessions_drained", EventValue::U64(report.sessions_drained as u64)),
                ("sessions_total", EventValue::U64(report.sessions_total)),
            ],
        );
        Ok(report)
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let reg = Arc::clone(shared.db.metrics());
    let active_gauge = reg.gauge("server.active_sessions");
    loop {
        let stream = match listener.accept() {
            Ok((s, _peer)) => s,
            Err(_) if shared.draining.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.draining.load(Ordering::SeqCst) {
            refuse(stream, ErrorCode::ShuttingDown, "server is draining");
            break;
        }
        // Reap finished session threads so the join list stays bounded.
        shared.joins.lock().expect("joins lock").retain(|j| !j.is_finished());
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            reg.counter("server.rejected_busy").inc();
            refuse(
                stream,
                ErrorCode::Busy,
                &format!("connection limit ({}) reached", shared.cfg.max_conns),
            );
            continue;
        }
        let id = shared.session_seq.fetch_add(1, Ordering::SeqCst);
        shared.active.fetch_add(1, Ordering::SeqCst);
        active_gauge.set(shared.active.load(Ordering::SeqCst) as u64);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").insert(id, clone);
        }
        let session_shared = Arc::clone(&shared);
        let spawn =
            std::thread::Builder::new().name(format!("txdb-session-{id}")).spawn(move || {
                let reg = Arc::clone(session_shared.db.metrics());
                let session = Session::new(
                    Arc::clone(&session_shared.db),
                    id,
                    &session_shared.cfg,
                    Arc::clone(&session_shared.traces),
                );
                let end = session.run(stream);
                session_shared.conns.lock().expect("conns lock").remove(&id);
                session_shared.active.fetch_sub(1, Ordering::SeqCst);
                reg.gauge("server.active_sessions")
                    .set(session_shared.active.load(Ordering::SeqCst) as u64);
                if end == SessionEnd::DrainRequested {
                    let _ = session_shared.drain_tx.send(DrainReason::ClientRequest);
                }
            });
        match spawn {
            Ok(j) => shared.joins.lock().expect("joins lock").push(j),
            Err(_) => {
                // Thread spawn failed (resource exhaustion): undo the
                // accounting and refuse the connection.
                shared.conns.lock().expect("conns lock").remove(&id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                active_gauge.set(shared.active.load(Ordering::SeqCst) as u64);
            }
        }
    }
}

/// Sends one structured error line and closes the connection.
fn refuse(mut stream: TcpStream, code: ErrorCode, msg: &str) {
    let line = WireError::new(code, msg).render();
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}
