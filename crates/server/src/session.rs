//! One connected client: the per-session command loop.
//!
//! A session owns one TCP connection, a private map of snapshot pins and
//! nothing else — all state worth sharing lives in the [`Database`]
//! handle. Commands execute strictly in arrival order; `QUERY` streams
//! its rows through the PR 7 cursor, so a result larger than memory never
//! materializes on the server (and an abandoned connection drops the
//! cursor, releasing its snapshot pin). Every command runs under a
//! request-level span feeding the shared metrics registry.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use txdb_base::obs::EventValue;
use txdb_client::frame::{read_frame, Frame};
use txdb_client::json::{escape_into, Json};
use txdb_core::Database;
use txdb_query::{strip_explain_prefix, QueryExt};
use txdb_storage::SnapshotPin;

use crate::proto::{decode, engine_error, ErrorCode, Request, WireError};

/// Why the session loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client disconnected (EOF) or the transport failed.
    Disconnected,
    /// The session asked the server to drain (`SHUTDOWN`).
    DrainRequested,
}

/// Per-session state and its command loop.
pub struct Session {
    db: Arc<Database>,
    id: u64,
    max_request_bytes: usize,
    pins: HashMap<u64, SnapshotPin>,
    next_pin: u64,
    requests: u64,
}

impl Session {
    /// Creates the state for session `id`.
    pub fn new(db: Arc<Database>, id: u64, max_request_bytes: usize) -> Session {
        Session { db, id, max_request_bytes, pins: HashMap::new(), next_pin: 1, requests: 0 }
    }

    /// Runs the command loop until the client disconnects or requests a
    /// drain. Always leaves the session's pins released (they drop with
    /// `self`); transport errors end the loop instead of propagating.
    pub fn run(mut self, stream: TcpStream) -> SessionEnd {
        let reg = Arc::clone(self.db.metrics());
        reg.counter("server.sessions_opened").inc();
        reg.emit("server.session_open", &[("session", EventValue::U64(self.id))]);
        let end = self.command_loop(&stream).unwrap_or(SessionEnd::Disconnected);
        reg.emit(
            "server.session_close",
            &[("session", EventValue::U64(self.id)), ("requests", EventValue::U64(self.requests))],
        );
        end
    }

    fn command_loop(&mut self, stream: &TcpStream) -> std::io::Result<SessionEnd> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream.try_clone()?);
        loop {
            let line = match read_frame(&mut reader, self.max_request_bytes)? {
                Frame::Eof => return Ok(SessionEnd::Disconnected),
                Frame::TooLarge => {
                    self.refuse(
                        &mut writer,
                        WireError::new(
                            ErrorCode::TooLarge,
                            format!("request exceeds {} bytes", self.max_request_bytes),
                        ),
                    )?;
                    continue;
                }
                Frame::BadUtf8 => {
                    self.refuse(
                        &mut writer,
                        WireError::new(ErrorCode::Utf8, "request is not valid UTF-8"),
                    )?;
                    continue;
                }
                Frame::Line(l) => l,
            };
            if line.trim().is_empty() {
                continue;
            }
            let req = match decode(&line) {
                Ok(r) => r,
                Err(e) => {
                    self.refuse(&mut writer, e)?;
                    continue;
                }
            };
            self.requests += 1;
            let reg = Arc::clone(self.db.metrics());
            reg.counter("server.requests").inc();
            let span = reg.span(req.span_name());
            let drain = matches!(req, Request::Shutdown);
            let outcome = self.execute(req, &mut writer);
            drop(span);
            match outcome {
                Ok(()) => {
                    writer.flush()?;
                    if drain {
                        return Ok(SessionEnd::DrainRequested);
                    }
                }
                Err(e) => {
                    reg.counter("server.requests.failed").inc();
                    self.refuse(&mut writer, e)?;
                }
            }
        }
    }

    /// Writes one structured error response (and counts it).
    fn refuse(&self, w: &mut impl Write, e: WireError) -> std::io::Result<()> {
        self.db.metrics().counter("server.errors").inc();
        writeln!(w, "{}", e.render())?;
        w.flush()
    }

    /// Executes one decoded command, writing its response line(s).
    /// Engine failures come back as `Err` and are rendered by the caller;
    /// transport failures surface as `WireError` too (the caller's write
    /// of that error will fail and end the loop).
    fn execute(&mut self, req: Request, w: &mut impl Write) -> Result<(), WireError> {
        match req {
            Request::Ping => write_line(w, &ok([Json::field("pong", Json::Bool(true))])),
            Request::Put { doc, xml, at } => {
                let at = at.unwrap_or_else(wall_clock);
                let r = self.db.put(&doc, &xml, at).map_err(|e| engine_error(&e))?;
                write_line(
                    w,
                    &ok([
                        Json::field("changed", Json::Bool(r.changed)),
                        r.changed.then(|| ("version", Json::u64(r.version.0 as u64))),
                        Json::field("ts", Json::u64(r.ts.micros())),
                    ]),
                )
            }
            Request::Delete { doc, at } => {
                let at = at.unwrap_or_else(wall_clock);
                let r = self.db.delete(&doc, at).map_err(|e| engine_error(&e))?;
                write_line(
                    w,
                    &ok([
                        Json::field("deleted", Json::Bool(r.is_some())),
                        r.map(|d| ("ts", Json::u64(d.ts.micros()))),
                    ]),
                )
            }
            Request::Query { q, at, limit } => self.execute_query(&q, at, limit, w),
            Request::Pin { at } => {
                let pin = self.db.pin_snapshot(at);
                let id = self.next_pin;
                self.next_pin += 1;
                self.pins.insert(id, pin);
                write_line(
                    w,
                    &ok([
                        Json::field("pin", Json::u64(id)),
                        Json::field("at", Json::u64(at.micros())),
                    ]),
                )
            }
            Request::Unpin { pin } => match self.pins.remove(&pin) {
                Some(_) => write_line(w, &ok([Json::field("released", Json::Bool(true))])),
                None => Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("no pin {pin} in this session"),
                )),
            },
            Request::Stats => {
                let s = self.db.store().space_stats().map_err(|e| engine_error(&e))?;
                let docs = self.db.store().list().map_err(|e| engine_error(&e))?.len();
                let fti = self.db.indexes().fti();
                let resp = ok([
                    Json::field("documents", Json::u64(docs as u64)),
                    Json::field("pages", Json::u64(s.pages)),
                    Json::field("current_bytes", Json::u64(s.current_bytes)),
                    Json::field("delta_bytes", Json::u64(s.delta_bytes)),
                    Json::field("snapshot_bytes", Json::u64(s.snapshot_bytes)),
                    Json::field("meta_bytes", Json::u64(s.meta_bytes)),
                    Json::field("fti_postings", Json::u64(fti.posting_count() as u64)),
                    Json::field("fti_tokens", Json::u64(fti.token_count() as u64)),
                    Json::field(
                        "active_snapshots",
                        Json::u64(self.db.store().snapshots().active() as u64),
                    ),
                    Json::field("session_pins", Json::u64(self.pins.len() as u64)),
                ]);
                write_line(w, &resp)
            }
            Request::Metrics => {
                self.db.store().update_derived_metrics();
                let snap = self.db.metrics().snapshot().to_json();
                // `to_json` is pretty-printed; the wire wants one line.
                // Round-tripping through the parser also guarantees the
                // embedded object really is well-formed JSON.
                let compact = Json::parse(&snap)
                    .map_err(|e| {
                        WireError::new(ErrorCode::Engine, format!("metrics snapshot: {e}"))
                    })?
                    .to_string();
                write_line_str(w, &format!(r#"{{"ok":true,"metrics":{compact}}}"#))
            }
            Request::Shutdown => write_line(w, &ok([Json::field("draining", Json::Bool(true))])),
        }
    }

    /// `QUERY`: open the streaming cursor, write one `{"row":[…]}` line
    /// per row, then (under `EXPLAIN ANALYZE`) the rendered plan tree,
    /// then the `{"ok":true,…}` trailer. An engine error before the first
    /// row is a plain error response; after rows have flowed it becomes
    /// the terminating line instead of the trailer, so the client always
    /// sees a structured end-of-response.
    fn execute_query(
        &mut self,
        q: &str,
        at: Option<txdb_base::Timestamp>,
        limit: Option<usize>,
        w: &mut impl Write,
    ) -> Result<(), WireError> {
        let started = std::time::Instant::now();
        let (q, explain) = match strip_explain_prefix(q) {
            Some(rest) => (rest, true),
            None => (q, false),
        };
        let mut req = self.db.query(q).at(at.unwrap_or_else(wall_clock));
        if explain {
            req = req.explain();
        }
        if let Some(n) = limit {
            req = req.limit(n);
        }
        let mut stream = req.stream().map_err(|e| engine_error(&e))?;
        let mut rows = 0u64;
        let mut line = String::new();
        for row in &mut stream {
            let row = match row {
                Ok(r) => r,
                Err(e) => {
                    // Mid-stream failure: terminate the response in-band.
                    write_line_str(w, &engine_error(&e).render())?;
                    return Ok(());
                }
            };
            line.clear();
            line.push_str(r#"{"row":["#);
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                escape_into(&v.as_text(), &mut line);
                line.push('"');
            }
            line.push_str("]}");
            write_line_str(w, &line)?;
            rows += 1;
        }
        if let Some(tree) = stream.explain() {
            let mut text = String::new();
            escape_into(&tree.render(), &mut text);
            write_line_str(w, &format!(r#"{{"explain":"{text}"}}"#))?;
        }
        let stats = stream.stats();
        let trailer = ok([
            Json::field("rows", Json::u64(rows)),
            Json::field("elapsed_us", Json::u64(started.elapsed().as_micros() as u64)),
            Json::field("rows_scanned", Json::u64(stats.rows_scanned as u64)),
            Json::field("reconstructions", Json::u64(stats.reconstructions as u64)),
            Json::field("cache_hits", Json::u64(stats.cache_hits as u64)),
        ]);
        write_line(w, &trailer)
    }
}

/// Builds an `{"ok":true,…}` response object.
fn ok<const N: usize>(fields: [Option<(&str, Json)>; N]) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields.into_iter().flatten().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(all)
}

fn write_line(w: &mut impl Write, v: &Json) -> Result<(), WireError> {
    write_line_str(w, &v.to_string())
}

fn write_line_str(w: &mut impl Write, line: &str) -> Result<(), WireError> {
    writeln!(w, "{line}").map_err(|e| WireError::new(ErrorCode::Engine, format!("write: {e}")))
}

/// The server wall clock (default commit/`NOW` timestamp).
pub(crate) fn wall_clock() -> txdb_base::Timestamp {
    txdb_base::Timestamp::from_micros(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
    )
}
