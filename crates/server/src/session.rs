//! One connected client: the per-session command loop.
//!
//! A session owns one TCP connection, a private map of snapshot pins and
//! nothing else — all state worth sharing lives in the [`Database`]
//! handle. Commands execute strictly in arrival order; `QUERY` streams
//! its rows through the PR 7 cursor, so a result larger than memory never
//! materializes on the server (and an abandoned connection drops the
//! cursor, releasing its snapshot pin). Every command runs under a
//! request-level span feeding the shared metrics registry; a request sent
//! with `"trace":true` additionally gets a [`TraceContext`] installed for
//! its duration, so that span — and every span beneath it, down to WAL
//! commits and version reconstructions — assembles into the span tree
//! returned in the response's `trace` field and kept in the server's
//! trace ring.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use txdb_base::obs::{EventValue, MetricsSnapshot, TraceContext};
use txdb_client::frame::{read_frame, Frame};
use txdb_client::json::{escape_into, Json};
use txdb_core::Database;
use txdb_query::{strip_explain_prefix, QueryExt};
use txdb_storage::SnapshotPin;

use crate::proto::{decode, engine_error, ErrorCode, Request, WireError};
use crate::server::ServerConfig;
use crate::traces::{SlowEntry, TraceStore};

/// Why the session loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client disconnected (EOF), idled out, or the transport failed.
    Disconnected,
    /// The session asked the server to drain (`SHUTDOWN`).
    DrainRequested,
}

/// Per-session state and its command loop.
pub struct Session {
    db: Arc<Database>,
    id: u64,
    max_request_bytes: usize,
    slow_us: Option<u64>,
    idle_timeout: Option<Duration>,
    traces: Arc<TraceStore>,
    pins: HashMap<u64, SnapshotPin>,
    next_pin: u64,
    requests: u64,
    /// The live `METRICS` cursor: id, when it was cut, and the snapshot
    /// it saw — what a `since` request diffs against.
    metrics_cursor: Option<(u64, Instant, MetricsSnapshot)>,
    cursor_seq: u64,
}

impl Session {
    /// Creates the state for session `id`.
    pub fn new(db: Arc<Database>, id: u64, cfg: &ServerConfig, traces: Arc<TraceStore>) -> Session {
        Session {
            db,
            id,
            max_request_bytes: cfg.max_request_bytes,
            slow_us: cfg.slow_us,
            idle_timeout: cfg.idle_timeout,
            traces,
            pins: HashMap::new(),
            next_pin: 1,
            requests: 0,
            metrics_cursor: None,
            cursor_seq: 0,
        }
    }

    /// Runs the command loop until the client disconnects, idles out or
    /// requests a drain. Always leaves the session's pins released (they
    /// drop with `self`); transport errors end the loop instead of
    /// propagating.
    pub fn run(mut self, stream: TcpStream) -> SessionEnd {
        let reg = Arc::clone(self.db.metrics());
        reg.counter("server.sessions_opened").inc();
        reg.emit("server.session_open", &[("session", EventValue::U64(self.id))]);
        // The idle timeout is a plain read timeout on the socket: a
        // blocked `read_frame` wakes with `WouldBlock`/`TimedOut` and the
        // loop closes the session like any disconnect.
        let _ = stream.set_read_timeout(self.idle_timeout);
        let end = self.command_loop(&stream).unwrap_or(SessionEnd::Disconnected);
        reg.emit(
            "server.session_close",
            &[("session", EventValue::U64(self.id)), ("requests", EventValue::U64(self.requests))],
        );
        end
    }

    fn command_loop(&mut self, stream: &TcpStream) -> std::io::Result<SessionEnd> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream.try_clone()?);
        loop {
            let frame = match read_frame(&mut reader, self.max_request_bytes) {
                Ok(f) => f,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle past the read timeout: one structured goodbye,
                    // then end the session — dropping `self` releases its
                    // pins exactly like a client disconnect.
                    self.db.metrics().counter("server.idle_timeouts").inc();
                    let ms = self.idle_timeout.map_or(0, |d| d.as_millis() as u64);
                    let _ = self.refuse(
                        &mut writer,
                        WireError::new(
                            ErrorCode::IdleTimeout,
                            format!("session idle for more than {ms}ms"),
                        ),
                    );
                    return Ok(SessionEnd::Disconnected);
                }
                Err(e) => return Err(e),
            };
            let line = match frame {
                Frame::Eof => return Ok(SessionEnd::Disconnected),
                Frame::TooLarge => {
                    self.refuse(
                        &mut writer,
                        WireError::new(
                            ErrorCode::TooLarge,
                            format!("request exceeds {} bytes", self.max_request_bytes),
                        ),
                    )?;
                    continue;
                }
                Frame::BadUtf8 => {
                    self.refuse(
                        &mut writer,
                        WireError::new(ErrorCode::Utf8, "request is not valid UTF-8"),
                    )?;
                    continue;
                }
                Frame::Line(l) => l,
            };
            if line.trim().is_empty() {
                continue;
            }
            let (req, traced) = match decode(&line) {
                Ok(r) => r,
                Err(e) => {
                    self.refuse(&mut writer, e)?;
                    continue;
                }
            };
            self.requests += 1;
            let reg = Arc::clone(self.db.metrics());
            reg.counter("server.requests").inc();
            let tag = req.tag();
            let trace = traced.then(|| {
                let ctx = TraceContext::root(self.traces.next_trace_id());
                ctx.set_field("session", self.id);
                ctx.set_field("cmd", tag);
                ctx
            });
            let guard = trace.as_ref().map(TraceContext::install);
            let span = reg.span(req.span_name());
            let drain = matches!(req, Request::Shutdown);
            let outcome = self.execute(req, traced, &mut writer);
            // The request span must close before the tree is assembled:
            // it *is* the trace's root, and its recorded duration is the
            // same observation the `server.cmd.*_us` histogram got.
            drop(span);
            drop(guard);
            match outcome {
                Ok(mut final_line) => {
                    if let Some(ctx) = trace {
                        let tree = ctx.finish();
                        self.traces.record_trace(self.id, tag, &tree);
                        if final_line.ends_with('}') {
                            final_line.pop();
                            final_line.push_str(",\"trace\":");
                            final_line.push_str(&tree.to_json());
                            final_line.push('}');
                        }
                    }
                    if write_line_str(&mut writer, &final_line).is_err() {
                        return Ok(SessionEnd::Disconnected);
                    }
                    writer.flush()?;
                    if drain {
                        return Ok(SessionEnd::DrainRequested);
                    }
                }
                Err(e) => {
                    reg.counter("server.requests.failed").inc();
                    self.refuse(&mut writer, e)?;
                }
            }
        }
    }

    /// Writes one structured error response (and counts it).
    fn refuse(&self, w: &mut impl Write, e: WireError) -> std::io::Result<()> {
        self.db.metrics().counter("server.errors").inc();
        writeln!(w, "{}", e.render())?;
        w.flush()
    }

    /// Executes one decoded command. Streams intermediate lines (`QUERY`
    /// rows, the explain line) straight to `w` but *returns* the final
    /// `{"ok":…}` line, so the caller can close the request span first
    /// and splice the finished trace into it. Engine failures come back
    /// as `Err` and are rendered by the caller.
    fn execute(
        &mut self,
        req: Request,
        traced: bool,
        w: &mut impl Write,
    ) -> Result<String, WireError> {
        match req {
            Request::Ping => Ok(ok([Json::field("pong", Json::Bool(true))]).to_string()),
            Request::Put { doc, xml, at } => {
                let at = at.unwrap_or_else(wall_clock);
                let r = self.db.put(&doc, &xml, at).map_err(|e| engine_error(&e))?;
                Ok(ok([
                    Json::field("changed", Json::Bool(r.changed)),
                    r.changed.then(|| ("version", Json::u64(r.version.0 as u64))),
                    Json::field("ts", Json::u64(r.ts.micros())),
                ])
                .to_string())
            }
            Request::Delete { doc, at } => {
                let at = at.unwrap_or_else(wall_clock);
                let r = self.db.delete(&doc, at).map_err(|e| engine_error(&e))?;
                Ok(ok([
                    Json::field("deleted", Json::Bool(r.is_some())),
                    r.map(|d| ("ts", Json::u64(d.ts.micros()))),
                ])
                .to_string())
            }
            Request::Query { q, at, limit } => self.execute_query(&q, at, limit, traced, w),
            Request::Pin { at } => {
                let pin = self.db.pin_snapshot(at);
                let id = self.next_pin;
                self.next_pin += 1;
                self.pins.insert(id, pin);
                Ok(ok([
                    Json::field("pin", Json::u64(id)),
                    Json::field("at", Json::u64(at.micros())),
                ])
                .to_string())
            }
            Request::Unpin { pin } => match self.pins.remove(&pin) {
                Some(_) => Ok(ok([Json::field("released", Json::Bool(true))]).to_string()),
                None => Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("no pin {pin} in this session"),
                )),
            },
            Request::Stats => {
                let s = self.db.store().space_stats().map_err(|e| engine_error(&e))?;
                let docs = self.db.store().list().map_err(|e| engine_error(&e))?.len();
                let fti = self.db.indexes().fti();
                Ok(ok([
                    Json::field("documents", Json::u64(docs as u64)),
                    Json::field("pages", Json::u64(s.pages)),
                    Json::field("current_bytes", Json::u64(s.current_bytes)),
                    Json::field("delta_bytes", Json::u64(s.delta_bytes)),
                    Json::field("snapshot_bytes", Json::u64(s.snapshot_bytes)),
                    Json::field("meta_bytes", Json::u64(s.meta_bytes)),
                    Json::field("fti_postings", Json::u64(fti.posting_count() as u64)),
                    Json::field("fti_tokens", Json::u64(fti.token_count() as u64)),
                    Json::field(
                        "active_snapshots",
                        Json::u64(self.db.store().snapshots().active() as u64),
                    ),
                    Json::field("session_pins", Json::u64(self.pins.len() as u64)),
                ])
                .to_string())
            }
            Request::Metrics { since } => self.execute_metrics(since),
            Request::Traces { limit } => Ok(self.traces.render_traces(limit)),
            Request::Slowlog { limit } => Ok(self.traces.render_slowlog(limit, self.slow_us)),
            Request::Shutdown => Ok(ok([Json::field("draining", Json::Bool(true))]).to_string()),
        }
    }

    /// `METRICS`: a cumulative snapshot, plus — when `since` names the
    /// cursor returned by this session's previous call — the counter and
    /// histogram deltas over that window, so pollers get rates without
    /// re-diffing snapshots client-side.
    fn execute_metrics(&mut self, since: Option<u64>) -> Result<String, WireError> {
        self.db.store().update_derived_metrics();
        let snap = self.db.metrics().snapshot();
        // `to_json` is pretty-printed; the wire wants one line.
        // Round-tripping through the parser also guarantees the embedded
        // object really is well-formed JSON.
        let compact = Json::parse(&snap.to_json())
            .map_err(|e| WireError::new(ErrorCode::Engine, format!("metrics snapshot: {e}")))?
            .to_string();
        let window = match since {
            None => None,
            Some(n) => match &self.metrics_cursor {
                Some((id, t0, prev)) if *id == n => {
                    Some((t0.elapsed().as_micros() as u64, snap.delta_since(prev).to_json()))
                }
                _ => {
                    return Err(WireError::new(
                        ErrorCode::BadRequest,
                        format!(
                            "unknown metrics cursor {n} (cursors are per-session and single-use)"
                        ),
                    ))
                }
            },
        };
        self.cursor_seq += 1;
        let cursor = self.cursor_seq;
        self.metrics_cursor = Some((cursor, Instant::now(), snap));
        Ok(match window {
            None => format!(r#"{{"ok":true,"cursor":{cursor},"metrics":{compact}}}"#),
            Some((window_us, delta)) => format!(
                r#"{{"ok":true,"cursor":{cursor},"window_us":{window_us},"delta":{delta},"metrics":{compact}}}"#
            ),
        })
    }

    /// `QUERY`: open the streaming cursor, write one `{"row":[…]}` line
    /// per row, then (under `EXPLAIN ANALYZE`) the rendered plan tree,
    /// and return the `{"ok":true,…}` trailer. An engine error before the
    /// first row is a plain error response; after rows have flowed the
    /// error becomes the terminating line instead of the trailer, so the
    /// client always sees a structured end-of-response. Queries crossing
    /// the `--slow-ms` threshold are recorded into the slow-query log
    /// with their plan tree and session context.
    fn execute_query(
        &mut self,
        raw_q: &str,
        at: Option<txdb_base::Timestamp>,
        limit: Option<usize>,
        traced: bool,
        w: &mut impl Write,
    ) -> Result<String, WireError> {
        let started = std::time::Instant::now();
        let (q, explain) = match strip_explain_prefix(raw_q) {
            Some(rest) => (rest, true),
            None => (raw_q, false),
        };
        let at = at.unwrap_or_else(wall_clock);
        let mut req = self.db.query(q).at(at);
        // Operator metering powers three consumers: the explain line the
        // client asked for, per-operator trace spans, and the slow log's
        // plan capture. Only the first is echoed to the client.
        if explain || traced || self.slow_us.is_some() {
            req = req.explain();
        }
        if let Some(n) = limit {
            req = req.limit(n);
        }
        let mut stream = req.stream().map_err(|e| engine_error(&e))?;
        let mut rows = 0u64;
        let mut line = String::new();
        for row in &mut stream {
            let row = match row {
                Ok(r) => r,
                Err(e) => {
                    // Mid-stream failure: terminate the response in-band.
                    return Ok(engine_error(&e).render());
                }
            };
            line.clear();
            line.push_str(r#"{"row":["#);
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                escape_into(&v.as_text(), &mut line);
                line.push('"');
            }
            line.push_str("]}");
            write_line_str(w, &line)?;
            rows += 1;
        }
        if explain {
            if let Some(tree) = stream.explain() {
                let mut text = String::new();
                escape_into(&tree.render(), &mut text);
                write_line_str(w, &format!(r#"{{"explain":"{text}"}}"#))?;
            }
        }
        let elapsed_us = started.elapsed().as_micros() as u64;
        let stats = stream.stats();
        if let Some(slow_us) = self.slow_us {
            if elapsed_us >= slow_us {
                self.db.metrics().counter("server.slow_queries").inc();
                self.traces.record_slow(SlowEntry {
                    trace_id: TraceContext::current().map(|c| c.trace_id()),
                    session: self.id,
                    q: raw_q.to_string(),
                    at: at.micros(),
                    us: elapsed_us,
                    rows,
                    rows_scanned: stats.rows_scanned as u64,
                    reconstructions: stats.reconstructions as u64,
                    explain: stream.explain().map(|t| t.render()).unwrap_or_default(),
                });
            }
        }
        Ok(ok([
            Json::field("rows", Json::u64(rows)),
            Json::field("elapsed_us", Json::u64(elapsed_us)),
            Json::field("rows_scanned", Json::u64(stats.rows_scanned as u64)),
            Json::field("reconstructions", Json::u64(stats.reconstructions as u64)),
            Json::field("cache_hits", Json::u64(stats.cache_hits as u64)),
        ])
        .to_string())
    }
}

/// Builds an `{"ok":true,…}` response object.
fn ok<const N: usize>(fields: [Option<(&str, Json)>; N]) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields.into_iter().flatten().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(all)
}

fn write_line_str(w: &mut impl Write, line: &str) -> Result<(), WireError> {
    writeln!(w, "{line}").map_err(|e| WireError::new(ErrorCode::Engine, format!("write: {e}")))
}

/// The server wall clock (default commit/`NOW` timestamp).
pub(crate) fn wall_clock() -> txdb_base::Timestamp {
    txdb_base::Timestamp::from_micros(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
    )
}
