//! Wire-protocol decoding and response encoding.
//!
//! One request is one line of JSON: `{"cmd":"QUERY","q":"SELECT …"}`.
//! The decoder is the hardened edge of the server: byte budgets are
//! enforced by the framing layer before this module sees anything, and
//! everything that arrives here — invalid JSON, truncated JSON, wrong
//! field types, unknown commands — maps to a *structured* error response
//! (`{"ok":false,"error":{"code":…,"msg":…}}`), never to a dropped
//! connection. The full grammar lives in `docs/protocol.md`.

use txdb_base::{Error, Timestamp};
use txdb_client::json::{escape_into, Json};

/// Machine-readable error codes (the `error.code` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    Parse,
    /// The line ended mid-value (client stopped or flushed early).
    Truncated,
    /// The line exceeded the server's `max_request_bytes`.
    TooLarge,
    /// The line was not valid UTF-8.
    Utf8,
    /// Well-formed JSON that is not a valid command (unknown `cmd`,
    /// missing or mistyped field, unknown pin id).
    BadRequest,
    /// The query could not be parsed, planned or executed.
    Query,
    /// A named document (or version/time) does not exist.
    NotFound,
    /// The store is read-only (salvage mode).
    ReadOnly,
    /// The connection was rejected by the `--max-conns` accept gate.
    Busy,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The session sat idle past `--idle-ms` and was closed.
    IdleTimeout,
    /// Any other engine failure.
    Engine,
}

impl ErrorCode {
    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Truncated => "truncated",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Utf8 => "utf8",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Query => "query",
            ErrorCode::NotFound => "not_found",
            ErrorCode::ReadOnly => "read_only",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::Engine => "engine",
        }
    }
}

/// A decoded command.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Run a temporal query, streaming rows back.
    Query {
        /// The query text (may carry an `EXPLAIN ANALYZE` prefix).
        q: String,
        /// `NOW` anchor in microseconds (server wall clock when absent).
        at: Option<Timestamp>,
        /// Row cap with scan early-exit.
        limit: Option<usize>,
    },
    /// Store a new version of a document.
    Put {
        /// Document name.
        doc: String,
        /// The version's XML text.
        xml: String,
        /// Commit timestamp (server wall clock when absent).
        at: Option<Timestamp>,
    },
    /// Tombstone a document.
    Delete {
        /// Document name.
        doc: String,
        /// Commit timestamp (server wall clock when absent).
        at: Option<Timestamp>,
    },
    /// Pin a snapshot timestamp for this session.
    Pin {
        /// The timestamp to pin.
        at: Timestamp,
    },
    /// Release a pin taken by this session.
    Unpin {
        /// The id returned by the `PIN` response.
        pin: u64,
    },
    /// Space and index statistics.
    Stats,
    /// Engine + server metrics snapshot, optionally as a windowed delta.
    Metrics {
        /// A cursor returned by a previous `METRICS` response on this
        /// session: the reply adds the counter/histogram deltas and the
        /// window length since that snapshot.
        since: Option<u64>,
    },
    /// Recently recorded request traces.
    Traces {
        /// Newest-first cap on returned traces.
        limit: Option<usize>,
    },
    /// The slow-query log.
    Slowlog {
        /// Newest-first cap on returned entries.
        limit: Option<usize>,
    },
    /// Ask the server to drain gracefully.
    Shutdown,
}

impl Request {
    /// Lower-case command tag, used for metric names and logging.
    pub fn tag(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Query { .. } => "query",
            Request::Put { .. } => "put",
            Request::Delete { .. } => "delete",
            Request::Pin { .. } => "pin",
            Request::Unpin { .. } => "unpin",
            Request::Stats => "stats",
            Request::Metrics { .. } => "metrics",
            Request::Traces { .. } => "traces",
            Request::Slowlog { .. } => "slowlog",
            Request::Shutdown => "shutdown",
        }
    }

    /// The per-command latency histogram (static, for `Registry::span`).
    pub fn span_name(&self) -> &'static str {
        match self {
            Request::Ping => "server.cmd.ping_us",
            Request::Query { .. } => "server.cmd.query_us",
            Request::Put { .. } => "server.cmd.put_us",
            Request::Delete { .. } => "server.cmd.delete_us",
            Request::Pin { .. } => "server.cmd.pin_us",
            Request::Unpin { .. } => "server.cmd.unpin_us",
            Request::Stats => "server.cmd.stats_us",
            Request::Metrics { .. } => "server.cmd.metrics_us",
            Request::Traces { .. } => "server.cmd.traces_us",
            Request::Slowlog { .. } => "server.cmd.slowlog_us",
            Request::Shutdown => "server.cmd.shutdown_us",
        }
    }
}

/// A decode failure, ready to be rendered as an error response.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable description.
    pub msg: String,
}

impl WireError {
    /// Builds a wire error.
    pub fn new(code: ErrorCode, msg: impl Into<String>) -> WireError {
        WireError { code, msg: msg.into() }
    }

    /// Renders the single-line error response.
    pub fn render(&self) -> String {
        let mut msg = String::with_capacity(self.msg.len());
        escape_into(&self.msg, &mut msg);
        format!(r#"{{"ok":false,"error":{{"code":"{}","msg":"{msg}"}}}}"#, self.code.as_str())
    }
}

/// Maps an engine error onto a wire error code.
pub fn engine_error(e: &Error) -> WireError {
    let code = match e {
        Error::XmlParse { .. }
        | Error::TimeParse(_)
        | Error::QueryParse { .. }
        | Error::QueryInvalid(_) => ErrorCode::Query,
        Error::NoSuchDocument(_)
        | Error::NoSuchDocId(_)
        | Error::NoSuchVersion(_, _)
        | Error::NotValidAt(_, _)
        | Error::NoSuchElement(_) => ErrorCode::NotFound,
        Error::ReadOnly(_) => ErrorCode::ReadOnly,
        _ => ErrorCode::Engine,
    };
    WireError::new(code, e.to_string())
}

/// Decodes one request line into the command plus its `trace` flag (any
/// command may carry `"trace":true` to have the server record a span
/// tree for it and return it in the response). Every failure carries the
/// precise code the hardening tests assert on: bad JSON splits into
/// `parse` vs `truncated` (the framing layer already handled `too_large`
/// and `utf8`), and well-formed-but-wrong shapes are `bad_request`.
pub fn decode(line: &str) -> Result<(Request, bool), WireError> {
    let v = Json::parse(line).map_err(|e| {
        let code = if e.truncated { ErrorCode::Truncated } else { ErrorCode::Parse };
        WireError::new(code, format!("bad JSON: {e}"))
    })?;
    if !matches!(v, Json::Obj(_)) {
        return Err(WireError::new(ErrorCode::BadRequest, "request must be a JSON object"));
    }
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "missing string field `cmd`"))?;
    let trace = optional_bool(&v, "trace")?.unwrap_or(false);
    let req = match cmd {
        "PING" => Request::Ping,
        "QUERY" => Request::Query {
            q: required_str(&v, "q")?,
            at: optional_time(&v, "at")?,
            limit: optional_u64(&v, "limit")?.map(|n| n as usize),
        },
        "PUT" => Request::Put {
            doc: required_str(&v, "doc")?,
            xml: required_str(&v, "xml")?,
            at: optional_time(&v, "at")?,
        },
        "DELETE" => Request::Delete { doc: required_str(&v, "doc")?, at: optional_time(&v, "at")? },
        "PIN" => {
            let at = optional_time(&v, "at")?
                .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "PIN needs `at`"))?;
            Request::Pin { at }
        }
        "UNPIN" => {
            let pin = optional_u64(&v, "pin")?
                .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "UNPIN needs `pin`"))?;
            Request::Unpin { pin }
        }
        "STATS" => Request::Stats,
        "METRICS" => Request::Metrics { since: optional_u64(&v, "since")? },
        "TRACES" => Request::Traces { limit: optional_u64(&v, "limit")?.map(|n| n as usize) },
        "SLOWLOG" => Request::Slowlog { limit: optional_u64(&v, "limit")?.map(|n| n as usize) },
        "SHUTDOWN" => Request::Shutdown,
        other => {
            return Err(WireError::new(ErrorCode::BadRequest, format!("unknown command `{other}`")))
        }
    };
    Ok((req, trace))
}

fn required_str(v: &Json, key: &str) -> Result<String, WireError> {
    v.get(key).and_then(Json::as_str).map(str::to_string).ok_or_else(|| {
        WireError::new(ErrorCode::BadRequest, format!("missing string field `{key}`"))
    })
}

fn optional_u64(v: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => field.as_u64().map(Some).ok_or_else(|| {
            WireError::new(ErrorCode::BadRequest, format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn optional_time(v: &Json, key: &str) -> Result<Option<Timestamp>, WireError> {
    Ok(optional_u64(v, key)?.map(Timestamp::from_micros))
}

fn optional_bool(v: &Json, key: &str) -> Result<Option<bool>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => field.as_bool().map(Some).ok_or_else(|| {
            WireError::new(ErrorCode::BadRequest, format!("`{key}` must be a boolean"))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decodes, asserting the request is untraced (the common case).
    fn decode1(line: &str) -> Result<Request, WireError> {
        let (req, trace) = decode(line)?;
        assert!(!trace, "unexpected trace flag in {line}");
        Ok(req)
    }

    #[test]
    fn decodes_every_command() {
        assert_eq!(decode1(r#"{"cmd":"PING"}"#).unwrap(), Request::Ping);
        assert_eq!(
            decode1(r#"{"cmd":"QUERY","q":"SELECT 1","at":5,"limit":2}"#).unwrap(),
            Request::Query {
                q: "SELECT 1".into(),
                at: Some(Timestamp::from_micros(5)),
                limit: Some(2)
            }
        );
        assert_eq!(
            decode1(r#"{"cmd":"PUT","doc":"d","xml":"<a/>"}"#).unwrap(),
            Request::Put { doc: "d".into(), xml: "<a/>".into(), at: None }
        );
        assert_eq!(
            decode1(r#"{"cmd":"DELETE","doc":"d","at":9}"#).unwrap(),
            Request::Delete { doc: "d".into(), at: Some(Timestamp::from_micros(9)) }
        );
        assert_eq!(
            decode1(r#"{"cmd":"PIN","at":7}"#).unwrap(),
            Request::Pin { at: Timestamp::from_micros(7) }
        );
        assert_eq!(decode1(r#"{"cmd":"UNPIN","pin":3}"#).unwrap(), Request::Unpin { pin: 3 });
        assert_eq!(decode1(r#"{"cmd":"STATS"}"#).unwrap(), Request::Stats);
        assert_eq!(decode1(r#"{"cmd":"METRICS"}"#).unwrap(), Request::Metrics { since: None });
        assert_eq!(
            decode1(r#"{"cmd":"METRICS","since":4}"#).unwrap(),
            Request::Metrics { since: Some(4) }
        );
        assert_eq!(decode1(r#"{"cmd":"TRACES"}"#).unwrap(), Request::Traces { limit: None });
        assert_eq!(
            decode1(r#"{"cmd":"SLOWLOG","limit":5}"#).unwrap(),
            Request::Slowlog { limit: Some(5) }
        );
        assert_eq!(decode1(r#"{"cmd":"SHUTDOWN"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn trace_flag_rides_any_command() {
        let (req, trace) = decode(r#"{"cmd":"QUERY","q":"SELECT 1","trace":true}"#).unwrap();
        assert_eq!(req, Request::Query { q: "SELECT 1".into(), at: None, limit: None });
        assert!(trace);
        let (_, trace) = decode(r#"{"cmd":"PUT","doc":"d","xml":"<a/>","trace":true}"#).unwrap();
        assert!(trace);
        let (_, trace) = decode(r#"{"cmd":"PING","trace":false}"#).unwrap();
        assert!(!trace);
        assert_eq!(decode(r#"{"cmd":"PING","trace":1}"#).unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn error_codes_are_precise() {
        assert_eq!(decode("{]").unwrap_err().code, ErrorCode::Parse);
        assert_eq!(decode(r#"{"cmd":"PING""#).unwrap_err().code, ErrorCode::Truncated);
        assert_eq!(decode("[1,2]").unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(decode(r#"{"cmd":"NOPE"}"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(decode(r#"{"cmd":"PUT","doc":"d"}"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(decode(r#"{"cmd":"PIN"}"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(
            decode(r#"{"cmd":"QUERY","q":"x","at":-1}"#).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            decode(r#"{"cmd":"QUERY","q":"x","limit":1.5}"#).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            decode(r#"{"cmd":"METRICS","since":"x"}"#).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn error_responses_render_as_single_json_lines() {
        let e = WireError::new(ErrorCode::Query, "bad \"thing\"\nline two");
        let r = e.render();
        assert!(!r.contains('\n'), "{r}");
        let v = Json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("query"));
        assert!(err.get("msg").and_then(Json::as_str).unwrap().contains("line two"));
    }
}
