//! Concurrent TCP front end for the temporal XML database.
//!
//! The server speaks a newline-delimited JSON protocol (one request line,
//! one or more response lines — see `docs/protocol.md`). Each connection
//! gets a dedicated session thread over the shared, thread-safe
//! [`txdb_core::Database`]; queries stream row-by-row through the Volcano
//! cursor, writes ride the group-commit WAL, and `PIN`/`UNPIN` expose
//! session-scoped snapshot pins that are released when the connection
//! closes. [`Server::shutdown`] drains gracefully: in-flight commands
//! finish, pins release, and the WAL is checkpointed closed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
mod server;
mod session;
pub mod traces;

pub use server::{DrainReason, DrainReport, Server, ServerConfig, ServerHandle};
pub use session::SessionEnd;
pub use traces::TraceStore;
