//! A minimal JSON value: parser and compact serializer.
//!
//! The wire protocol is newline-delimited JSON and the workspace builds
//! offline (no serde), so this module is the whole JSON stack: a
//! recursive-descent parser with a depth cap and byte-precise errors,
//! and a compact single-line writer. The parser distinguishes *truncated*
//! input (the decoder's "client stopped mid-object" case) from malformed
//! input so the server can answer with the right error code.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers up to 2^53 survive the f64 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Why a parse failed.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
    /// True when the input ended before the value did — "truncated JSON",
    /// as opposed to bytes that can never start a valid continuation.
    pub truncated: bool,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: malformed input must not be able to overflow the
/// parser's stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses one JSON value from `s`, requiring it to span the whole
    /// input (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing garbage after value", false));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (rejects negatives and
    /// fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs; `None` entries are
    /// dropped, so optional fields compose inline.
    pub fn obj<const N: usize>(fields: [Option<(&str, Json)>; N]) -> Json {
        Json::Obj(fields.into_iter().flatten().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a required object field (see [`Json::obj`]).
    pub fn field(key: &str, v: Json) -> Option<(&str, Json)> {
        Some((key, v))
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str, truncated: bool) -> JsonError {
        JsonError { offset: self.i, message: message.to_string(), truncated }
    }

    fn eof(&self, expecting: &str) -> JsonError {
        JsonError {
            offset: self.i,
            message: format!("truncated: input ended expecting {expecting}"),
            truncated: true,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep", false));
        }
        match self.b.get(self.i) {
            None => Err(self.eof("a value")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => Err(self.err("unexpected byte; expected a value", false)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        let rest = &self.b[self.i..];
        if rest.len() < word.len() {
            if word.as_bytes().starts_with(rest) {
                return Err(self.eof(word));
            }
            return Err(self.err("bad literal", false));
        }
        if &rest[..word.len()] == word.as_bytes() {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal", false))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("bad number", false)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.eof("a closing quote")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        None => return Err(self.eof("an escape")),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        Some(_) => return Err(self.err("bad escape", false)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Decode one UTF-8 scalar; the input is a &str so the
                    // bytes are valid — find the char at this offset.
                    let rest = std::str::from_utf8(&self.b[self.i..]).expect("input was a str");
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string", false));
                    }
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    /// `\uXXXX`, including surrogate pairs. Called with `self.i` on the
    /// `u`; leaves it past the last hex digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.i += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require the low half.
            if self.b.get(self.i) != Some(&b'\\') || self.b.get(self.i + 1) != Some(&b'u') {
                return Err(if self.i >= self.b.len() {
                    self.eof("a low surrogate")
                } else {
                    self.err("unpaired surrogate", false)
                });
            }
            self.i += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("unpaired surrogate", false));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(cp).ok_or_else(|| self.err("bad code point", false));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired surrogate", false));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad code point", false))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.i + 4 > self.b.len() {
            return Err(self.eof("4 hex digits"));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.b[self.i];
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a') as u32 + 10,
                b'A'..=b'F' => (c - b'A') as u32 + 10,
                _ => return Err(self.err("bad hex digit", false)),
            };
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.i += 1; // '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                None => return Err(self.eof("`,` or `]`")),
                Some(_) => return Err(self.err("expected `,` or `]`", false)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.i += 1; // '{'
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b'"') => {}
                None => return Err(self.eof("an object key")),
                Some(_) => return Err(self.err("expected a string key", false)),
            }
            let key = self.string()?;
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b':') => self.i += 1,
                None => return Err(self.eof("`:`")),
                Some(_) => return Err(self.err("expected `:`", false)),
            }
            self.skip_ws();
            let v = self.value(depth + 1)?;
            out.push((key, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                None => return Err(self.eof("`,` or `}`")),
                Some(_) => return Err(self.err("expected `,` or `}`", false)),
            }
        }
    }
}

/// Escapes `s` into a JSON string literal body (no surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    /// Compact, single-line serialization — the wire format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                escape_into(s, &mut out);
                write!(f, "\"{out}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len());
                    escape_into(k, &mut key);
                    write!(f, "\"{key}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let v = Json::parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64), Some(-2.5));
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn truncated_inputs_are_flagged() {
        for t in ["{", r#"{"a""#, r#"{"a":"#, r#"{"a":1"#, "[1,", "\"ab", "tru", r#""a\"#] {
            let e = Json::parse(t).unwrap_err();
            assert!(e.truncated, "{t:?} should be truncated: {e}");
        }
    }

    #[test]
    fn malformed_inputs_are_not_truncated() {
        for t in ["{]", "[1 2]", "nul!", "{\"a\" 1}", "1x", "", "{\"a\":01x}"] {
            let e = Json::parse(t).unwrap_err();
            if !t.is_empty() {
                assert!(!e.truncated, "{t:?} should be malformed, not truncated: {e}");
            }
        }
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(100_000);
        let e = Json::parse(&bomb).unwrap_err();
        assert!(e.message.contains("deep"), "{e}");
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""aé😀b""#).unwrap();
        assert_eq!(v, Json::Str("aé😀b".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn escaping_round_trips() {
        let s = "quote\" slash\\ newline\n tab\t ctrl\u{1} text";
        let rendered = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(Json::u64(15).to_string(), "15");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        let micros = 1_700_000_000_000_000u64;
        assert_eq!(Json::u64(micros).as_u64(), Some(micros), "timestamps survive");
    }
}
