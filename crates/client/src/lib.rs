//! # txdb-client — the wire client for `txdb serve`
//!
//! The network protocol keeps the temporal query language itself as the
//! surface: a client sends the same `SELECT … FROM doc(…)` text it would
//! hand to the embedded engine, one newline-delimited JSON object per
//! command, and receives newline-delimited JSON back (rows streamed one
//! line each, so neither side materializes big results). This crate is
//! deliberately engine-free — just `std` — so anything can link it:
//!
//! * [`json`] — a minimal JSON value, parser and compact writer (the
//!   workspace builds offline; there is no serde);
//! * [`frame`] — hardened line framing: byte budgets enforced while
//!   reading, invalid UTF-8 surfaced in-band;
//! * [`Client`] — the typed session API (`PING`, `PUT`, `DELETE`,
//!   streamed `QUERY`, `PIN`/`UNPIN`, `STATS`, `METRICS`, `SHUTDOWN`).
//!
//! The grammar, error codes and drain semantics live in
//! `docs/protocol.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod json;

pub use client::{Client, ClientError, ClientResult, PutReply, QueryDone, QueryReply};
pub use frame::{read_frame, Frame};
pub use json::{Json, JsonError};
