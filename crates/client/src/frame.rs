//! Line framing for the wire protocol.
//!
//! Every protocol message is one line: a JSON object terminated by `\n`.
//! [`read_frame`] is the hardened reader both sides use: it enforces a
//! byte budget *while reading* (an oversized line is drained and reported
//! without ever being buffered whole), and surfaces invalid UTF-8 as a
//! structured event instead of an error that would tear the connection
//! down.

use std::io::{BufRead, Read};

/// One framing event from [`read_frame`].
#[derive(Debug, PartialEq)]
pub enum Frame {
    /// A complete line (without its terminator).
    Line(String),
    /// The peer closed the connection (clean EOF at a line boundary).
    Eof,
    /// The line exceeded the byte budget; the excess was drained up to
    /// the next `\n` (or EOF) so the stream stays line-synchronized.
    TooLarge,
    /// The line was not valid UTF-8.
    BadUtf8,
}

/// Reads one `\n`-terminated line of at most `max_bytes` bytes
/// (terminator excluded). A final unterminated line before EOF counts as
/// a line — clients may close without a trailing newline.
pub fn read_frame(r: &mut impl BufRead, max_bytes: usize) -> std::io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    // +2: one byte to detect overflow, one for the terminator itself.
    let n = r.by_ref().take(max_bytes as u64 + 2).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    let terminated = buf.last() == Some(&b'\n');
    if terminated {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() > max_bytes {
        if !terminated {
            drain_line(r)?;
        }
        return Ok(Frame::TooLarge);
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Frame::Line(s)),
        Err(_) => Ok(Frame::BadUtf8),
    }
}

/// Discards bytes up to and including the next `\n` (or EOF).
fn drain_line(r: &mut impl BufRead) -> std::io::Result<()> {
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                r.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                r.consume(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frames(input: &[u8], max: usize) -> Vec<Frame> {
        let mut r = BufReader::new(input);
        let mut out = Vec::new();
        loop {
            let f = read_frame(&mut r, max).unwrap();
            let done = f == Frame::Eof;
            out.push(f);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn plain_lines() {
        let got = frames(b"one\ntwo\r\nthree", 100);
        assert_eq!(
            got,
            vec![
                Frame::Line("one".into()),
                Frame::Line("two".into()),
                Frame::Line("three".into()),
                Frame::Eof
            ]
        );
    }

    #[test]
    fn oversized_line_is_drained_not_buffered() {
        let mut input = vec![b'x'; 10_000];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = frames(&input, 16);
        assert_eq!(got, vec![Frame::TooLarge, Frame::Line("ok".into()), Frame::Eof]);
    }

    #[test]
    fn oversized_exactly_at_boundary() {
        // 16 bytes with a max of 16: allowed. 17: rejected.
        let got = frames(b"aaaaaaaaaaaaaaaa\nok\n", 16);
        assert_eq!(got[0], Frame::Line("aaaaaaaaaaaaaaaa".into()));
        let got = frames(b"aaaaaaaaaaaaaaaaa\nok\n", 16);
        assert_eq!(got, vec![Frame::TooLarge, Frame::Line("ok".into()), Frame::Eof]);
    }

    #[test]
    fn invalid_utf8_is_reported_in_band() {
        let got = frames(b"\xff\xfe\nok\n", 100);
        assert_eq!(got, vec![Frame::BadUtf8, Frame::Line("ok".into()), Frame::Eof]);
    }

    #[test]
    fn empty_line_and_eof() {
        let got = frames(b"\n", 100);
        assert_eq!(got, vec![Frame::Line(String::new()), Frame::Eof]);
        assert_eq!(frames(b"", 100), vec![Frame::Eof]);
    }
}
