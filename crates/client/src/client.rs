//! The typed session API over one `txdb serve` connection.
//!
//! A [`Client`] owns one TCP connection and drives the newline-delimited
//! JSON protocol documented in `docs/protocol.md`. Commands are
//! synchronous request/response; `QUERY` responses stream row lines which
//! [`Client::query_stream`] surfaces one at a time (bounded memory on
//! both ends of the wire) and [`Client::query`] collects.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{read_frame, Frame};
use crate::json::Json;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with something the protocol does not allow.
    Protocol(String),
    /// A structured error response from the server.
    Server {
        /// Machine-readable error code (see `docs/protocol.md`).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Shorthand result.
pub type ClientResult<T> = Result<T, ClientError>;

/// What a `PUT` did.
#[derive(Debug, Clone, PartialEq)]
pub struct PutReply {
    /// False when the new content equals the current version (no version
    /// stored).
    pub changed: bool,
    /// The stored version number (when changed).
    pub version: Option<u64>,
    /// The commit timestamp in microseconds.
    pub ts: u64,
}

/// The trailer of a `QUERY` response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryDone {
    /// Rows streamed.
    pub rows: u64,
    /// Server-side wall-clock for the whole query, microseconds.
    pub elapsed_us: u64,
    /// Version reconstructions performed.
    pub reconstructions: u64,
    /// Materialized-version cache hits.
    pub cache_hits: u64,
}

/// A collected `QUERY` response.
#[derive(Debug, Clone, Default)]
pub struct QueryReply {
    /// Rows, each a vector of rendered values (one per select item).
    pub rows: Vec<Vec<String>>,
    /// The rendered `EXPLAIN ANALYZE` tree, when requested.
    pub explain: Option<String>,
    /// Execution summary.
    pub done: QueryDone,
}

impl QueryReply {
    /// Reassembles the §5 result document exactly as the in-process
    /// `QueryResult::to_xml` renders it — the differential-test anchor.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<results>");
        for row in &self.rows {
            out.push_str("<result>");
            for v in row {
                out.push_str(v);
            }
            out.push_str("</result>");
        }
        out.push_str("</results>");
        out
    }
}

/// One `txdb serve` connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Response lines larger than this are a protocol violation (metrics
    /// dumps are the biggest legitimate payload; 16 MiB is far above).
    max_response_bytes: usize,
}

impl Client {
    /// Connects to a `txdb serve` endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream, max_response_bytes: 16 << 20 })
    }

    /// Sends one raw line and returns the next raw response line —
    /// the escape hatch for tests that need to speak broken protocol.
    pub fn raw_roundtrip(&mut self, line: &str) -> ClientResult<String> {
        self.send_line(line)?;
        self.read_line()
    }

    fn send_line(&mut self, line: &str) -> ClientResult<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> ClientResult<String> {
        match read_frame(&mut self.reader, self.max_response_bytes)? {
            Frame::Line(l) => Ok(l),
            Frame::Eof => Err(ClientError::Protocol("server closed the connection".into())),
            Frame::TooLarge => Err(ClientError::Protocol("oversized response line".into())),
            Frame::BadUtf8 => Err(ClientError::Protocol("response not UTF-8".into())),
        }
    }

    fn read_json(&mut self) -> ClientResult<Json> {
        let line = self.read_line()?;
        Json::parse(&line).map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))
    }

    /// Sends `req` and reads exactly one response object, mapping
    /// `{"ok":false,...}` to [`ClientError::Server`].
    fn call(&mut self, req: &Json) -> ClientResult<Json> {
        self.send_line(&req.to_string())?;
        let resp = self.read_json()?;
        check_ok(resp)
    }

    /// `PING` → server liveness.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.call(&Json::obj([Json::field("cmd", Json::str("PING"))]))?;
        Ok(())
    }

    /// `PUT doc xml [at]`: stores a new version; `at` is microseconds
    /// since the epoch (server wall clock when `None`).
    pub fn put(&mut self, doc: &str, xml: &str, at: Option<u64>) -> ClientResult<PutReply> {
        let resp = self.call(&Json::obj([
            Json::field("cmd", Json::str("PUT")),
            Json::field("doc", Json::str(doc)),
            Json::field("xml", Json::str(xml)),
            at.map(|t| ("at", Json::u64(t))),
        ]))?;
        Ok(PutReply {
            changed: resp.get("changed").and_then(Json::as_bool).unwrap_or(false),
            version: resp.get("version").and_then(Json::as_u64),
            ts: resp.get("ts").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// `DELETE doc [at]` → whether a tombstone was written.
    pub fn delete(&mut self, doc: &str, at: Option<u64>) -> ClientResult<bool> {
        let resp = self.call(&Json::obj([
            Json::field("cmd", Json::str("DELETE")),
            Json::field("doc", Json::str(doc)),
            at.map(|t| ("at", Json::u64(t))),
        ]))?;
        Ok(resp.get("deleted").and_then(Json::as_bool).unwrap_or(false))
    }

    /// `QUERY`, streaming: `on_row` sees each row (rendered values) as it
    /// crosses the wire; returns the explain tree (if any) and the
    /// trailer. Neither side materializes the result.
    pub fn query_stream(
        &mut self,
        q: &str,
        at: Option<u64>,
        on_row: impl FnMut(Vec<String>),
    ) -> ClientResult<(Option<String>, QueryDone)> {
        let (explain, _trace, done) = self.query_stream_traced(q, at, false, on_row)?;
        Ok((explain, done))
    }

    /// [`Client::query_stream`] with the request's `trace` flag: when
    /// `trace` is true the server records a span tree for the request and
    /// returns it (as parsed JSON) alongside the trailer.
    pub fn query_stream_traced(
        &mut self,
        q: &str,
        at: Option<u64>,
        trace: bool,
        mut on_row: impl FnMut(Vec<String>),
    ) -> ClientResult<(Option<String>, Option<Json>, QueryDone)> {
        let req = Json::obj([
            Json::field("cmd", Json::str("QUERY")),
            Json::field("q", Json::str(q)),
            at.map(|t| ("at", Json::u64(t))),
            trace.then_some(("trace", Json::Bool(true))),
        ]);
        self.send_line(&req.to_string())?;
        let mut explain = None;
        loop {
            let msg = self.read_json()?;
            if let Some(row) = msg.get("row").and_then(Json::as_arr) {
                let vals = row
                    .iter()
                    .map(|v| match v {
                        Json::Str(s) => Ok(s.clone()),
                        other => Err(ClientError::Protocol(format!("non-string cell {other}"))),
                    })
                    .collect::<ClientResult<Vec<String>>>()?;
                on_row(vals);
                continue;
            }
            if let Some(text) = msg.get("explain").and_then(Json::as_str) {
                explain = Some(text.to_string());
                continue;
            }
            let done = check_ok(msg)?;
            let get = |k: &str| done.get(k).and_then(Json::as_u64).unwrap_or(0);
            let reply = QueryDone {
                rows: get("rows"),
                elapsed_us: get("elapsed_us"),
                reconstructions: get("reconstructions"),
                cache_hits: get("cache_hits"),
            };
            let trace = done.get("trace").cloned();
            return Ok((explain, trace, reply));
        }
    }

    /// `QUERY`, collected into a [`QueryReply`].
    pub fn query(&mut self, q: &str, at: Option<u64>) -> ClientResult<QueryReply> {
        let mut rows = Vec::new();
        let (explain, done) = self.query_stream(q, at, |row| rows.push(row))?;
        Ok(QueryReply { rows, explain, done })
    }

    /// `PIN at` → a session-scoped snapshot pin id. The server holds the
    /// engine pin until `UNPIN` or disconnect.
    pub fn pin(&mut self, at: u64) -> ClientResult<u64> {
        let resp = self.call(&Json::obj([
            Json::field("cmd", Json::str("PIN")),
            Json::field("at", Json::u64(at)),
        ]))?;
        resp.get("pin")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("PIN response without id".into()))
    }

    /// `UNPIN id`: releases a pin taken by this session.
    pub fn unpin(&mut self, pin: u64) -> ClientResult<()> {
        self.call(&Json::obj([
            Json::field("cmd", Json::str("UNPIN")),
            Json::field("pin", Json::u64(pin)),
        ]))?;
        Ok(())
    }

    /// `STATS` → space/index statistics object.
    pub fn stats(&mut self) -> ClientResult<Json> {
        self.call(&Json::obj([Json::field("cmd", Json::str("STATS"))]))
    }

    /// `METRICS` → the engine + server metrics snapshot (the same shape
    /// as `txdb metrics --json`, under the `"metrics"` key).
    pub fn metrics(&mut self) -> ClientResult<Json> {
        self.metrics_since(None)
    }

    /// `METRICS [since]`: every response carries a `"cursor"`; passing it
    /// back as `since` on the next call adds `"window_us"` and `"delta"`
    /// (counter/histogram changes over the window) — the windowed-rate
    /// feed `txdb top` polls.
    pub fn metrics_since(&mut self, since: Option<u64>) -> ClientResult<Json> {
        self.call(&Json::obj([
            Json::field("cmd", Json::str("METRICS")),
            since.map(|c| ("since", Json::u64(c))),
        ]))
    }

    /// `TRACES [limit]` → recently recorded request traces, newest first.
    pub fn traces(&mut self, limit: Option<u64>) -> ClientResult<Json> {
        self.call(&Json::obj([
            Json::field("cmd", Json::str("TRACES")),
            limit.map(|n| ("limit", Json::u64(n))),
        ]))
    }

    /// `SLOWLOG [limit]` → the slow-query log, newest first.
    pub fn slowlog(&mut self, limit: Option<u64>) -> ClientResult<Json> {
        self.call(&Json::obj([
            Json::field("cmd", Json::str("SLOWLOG")),
            limit.map(|n| ("limit", Json::u64(n))),
        ]))
    }

    /// `SHUTDOWN`: asks the server to drain gracefully. The acknowledgment
    /// arrives before the drain starts; the connection closes shortly
    /// after.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.call(&Json::obj([Json::field("cmd", Json::str("SHUTDOWN"))]))?;
        Ok(())
    }
}

/// Splits `{"ok":true,...}` from `{"ok":false,"error":{...}}`.
fn check_ok(resp: Json) -> ClientResult<Json> {
    match resp.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(resp),
        Some(false) => {
            let (code, message) = match resp.get("error") {
                Some(e) => (
                    e.get("code").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                    e.get("msg").and_then(Json::as_str).unwrap_or("").to_string(),
                ),
                None => ("unknown".to_string(), String::new()),
            };
            Err(ClientError::Server { code, message })
        }
        None => Err(ClientError::Protocol(format!("response without ok field: {resp}"))),
    }
}
