//! XyDiff-style tree diff with XID preservation.
//!
//! Computes a completed [`Delta`] turning `old` into `new` while assigning
//! persistent identifiers: nodes of `new` matched to nodes of `old` keep
//! their XID (§3.2 — identity persists across versions), unmatched nodes
//! draw fresh XIDs that are never reused.
//!
//! The algorithm follows the published sketch of Cobéna, Abiteboul & Marian
//! (the paper's \[7\], the diff behind Xyleme's version management):
//!
//! 1. **Exact subtree matching** — both trees are hashed bottom-up
//!    ([`txdb_xml::hash::SubtreeHashes`]); identical subtrees are matched
//!    greedily, heaviest first, preferring candidates whose parents are
//!    already matched (verified with `deep_eq`, so hash collisions cannot
//!    corrupt the result).
//! 2. **Upward propagation** — parents of matched nodes with equal element
//!    names are matched, repeatedly.
//! 3. **Child alignment** — for every matched element pair, the still
//!    unmatched children are aligned by an LCS over their *labels* (element
//!    name / text-ness), then leftovers are paired greedily by label. Newly
//!    aligned pairs are processed recursively. Aligned text nodes with
//!    different values become `UpdateText`; aligned elements recurse.
//! 4. **Script generation** — one top-down pass over `new` emits
//!    `Move`/`InsertSubtree`/`UpdateText`/`SetAttr` ops and a final pass
//!    deletes unmatched `old` subtrees. Every op is *replayed on a working
//!    copy while being recorded*, so positions and displaced timestamps are
//!    exactly what forward application will see — the generated script is
//!    correct by construction, not by convention.

use std::collections::{HashMap, HashSet};

use txdb_base::{Result, Timestamp, VersionId, Xid};
use txdb_xml::equality::deep_eq;
use txdb_xml::hash::SubtreeHashes;
use txdb_xml::tree::{NodeId, NodeKind, Tree};

use crate::ops::{Applier, Delta, EditOp};

/// Outcome of a diff: the delta plus matching statistics (used by the
/// diff experiments, E10).
#[derive(Debug)]
pub struct DiffResult {
    /// The completed delta (forward: old → new).
    pub delta: Delta,
    /// Nodes of `new` matched to nodes of `old` (identity preserved).
    pub nodes_matched: usize,
    /// Nodes of `new` that were inserted (fresh XIDs).
    pub nodes_inserted: usize,
    /// Nodes of `old` that were deleted.
    pub nodes_deleted: usize,
}

/// Diffs `old` against `new`.
///
/// Requirements: every node of `old` has a non-`NONE` XID. On return,
/// every node of `new` has an XID (preserved or fresh from `next_xid`) and
/// a direct timestamp consistent with forward application of the delta at
/// `to_ts`, i.e. `apply_forward(old.clone())` produces a forest identical
/// to `new` including XIDs and timestamps.
pub fn diff_trees(
    old: &Tree,
    new: &mut Tree,
    next_xid: &mut Xid,
    from_version: VersionId,
    from_ts: Timestamp,
    to_ts: Timestamp,
) -> Result<DiffResult> {
    let matching = compute_matching(old, new);

    // Assign XIDs: matched nodes keep identity, the rest draw fresh ids.
    let mut inserted = 0usize;
    {
        let new_ids: Vec<NodeId> = new.iter().collect();
        for n in new_ids {
            match matching.new_to_old.get(&n) {
                Some(&o) => {
                    new.node_mut(n).xid = old.node(o).xid;
                    new.node_mut(n).ts = old.node(o).ts;
                }
                None => {
                    new.node_mut(n).xid = *next_xid;
                    *next_xid = next_xid.next();
                    new.node_mut(n).ts = to_ts;
                    inserted += 1;
                }
            }
        }
    }

    // Generate the script on a working copy.
    let mut work = old.clone();
    let mut gen = ScriptGen {
        new,
        matching: &matching,
        applier: Applier::new(&mut work),
        ops: Vec::new(),
        to_ts,
    };
    gen.emit_structure()?;
    gen.emit_deletes()?;
    let ops = gen.ops;

    // The working copy is now exactly the post-state including displaced
    // timestamps; copy its direct timestamps onto `new` (nodes touched by
    // deletes/moves differ from the pre-assignment above).
    let ts_by_xid: HashMap<Xid, Timestamp> =
        work.iter().map(|n| (work.node(n).xid, work.node(n).ts)).collect();
    let new_ids: Vec<NodeId> = new.iter().collect();
    for n in new_ids {
        let x = new.node(n).xid;
        if let Some(&ts) = ts_by_xid.get(&x) {
            new.node_mut(n).ts = ts;
        }
    }
    debug_assert!(forest_identical(&work, new), "diff replay mismatch");

    let nodes_deleted = old.len() + inserted - new.len();
    Ok(DiffResult {
        delta: Delta { from_version, to_version: from_version.next(), from_ts, to_ts, ops },
        nodes_matched: matching.new_to_old.len(),
        nodes_inserted: inserted,
        nodes_deleted,
    })
}

/// Structural identity including XIDs and timestamps — used to validate
/// diff replay in tests and debug builds.
pub fn forest_identical(a: &Tree, b: &Tree) -> bool {
    fn node_identical(ta: &Tree, na: NodeId, tb: &Tree, nb: NodeId) -> bool {
        let (x, y) = (ta.node(na), tb.node(nb));
        x.xid == y.xid
            && x.ts == y.ts
            && x.kind == y.kind
            && x.children().len() == y.children().len()
            && x.children()
                .iter()
                .zip(y.children())
                .all(|(&ca, &cb)| node_identical(ta, ca, tb, cb))
    }
    a.roots().len() == b.roots().len()
        && a.roots().iter().zip(b.roots()).all(|(&ra, &rb)| node_identical(a, ra, b, rb))
}

struct Matching {
    old_to_new: HashMap<NodeId, NodeId>,
    new_to_old: HashMap<NodeId, NodeId>,
}

impl Matching {
    fn link(&mut self, o: NodeId, n: NodeId) {
        let a = self.old_to_new.insert(o, n);
        let b = self.new_to_old.insert(n, o);
        debug_assert!(a.is_none() && b.is_none(), "double match");
    }
}

fn compute_matching(old: &Tree, new: &Tree) -> Matching {
    let mut m = Matching { old_to_new: HashMap::new(), new_to_old: HashMap::new() };
    let h_old = SubtreeHashes::compute(old);
    let h_new = SubtreeHashes::compute(new);

    // Phase 1: exact subtree matching, heaviest first.
    let mut by_hash: HashMap<u64, Vec<NodeId>> = HashMap::new();
    for o in old.iter() {
        by_hash.entry(h_old.hash(o)).or_default().push(o);
    }
    let mut new_nodes: Vec<NodeId> = new.iter().collect();
    new_nodes.sort_by_key(|&n| std::cmp::Reverse(h_new.size(n)));
    for n in new_nodes {
        if m.new_to_old.contains_key(&n) {
            continue;
        }
        let Some(cands) = by_hash.get(&h_new.hash(n)) else { continue };
        // Prefer a candidate whose parent is matched to n's parent.
        let n_parent_old = new.node(n).parent().and_then(|p| m.new_to_old.get(&p).copied());
        let mut chosen = None;
        for &o in cands {
            if m.old_to_new.contains_key(&o) || !deep_eq(old, o, new, n) {
                continue;
            }
            let same_context = match (old.node(o).parent(), n_parent_old) {
                (Some(op), Some(exp)) => op == exp,
                (None, None) => true,
                _ => false,
            };
            if same_context {
                chosen = Some(o);
                break;
            }
            if chosen.is_none() {
                chosen = Some(o);
            }
        }
        if let Some(o) = chosen {
            match_subtrees(old, o, new, n, &mut m);
        }
    }

    // Phase 2: upward propagation.
    let pairs: Vec<(NodeId, NodeId)> = m.old_to_new.iter().map(|(&o, &n)| (o, n)).collect();
    for (mut o, mut n) in pairs {
        #[allow(clippy::while_let_loop)]
        loop {
            let (Some(po), Some(pn)) = (old.node(o).parent(), new.node(n).parent()) else {
                break;
            };
            if m.old_to_new.contains_key(&po) || m.new_to_old.contains_key(&pn) {
                break;
            }
            let same_name = match (old.node(po).name(), new.node(pn).name()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if !same_name {
                break;
            }
            m.link(po, pn);
            o = po;
            n = pn;
        }
    }

    // Phase 3: recursive child alignment from matched pairs and the
    // forest root level.
    let mut queue: Vec<(Option<NodeId>, Option<NodeId>)> = vec![(None, None)];
    let pairs: Vec<(NodeId, NodeId)> = m.old_to_new.iter().map(|(&o, &n)| (o, n)).collect();
    queue.extend(pairs.into_iter().map(|(o, n)| (Some(o), Some(n))));
    let mut qi = 0;
    while qi < queue.len() {
        let (o, n) = queue[qi];
        qi += 1;
        let old_children: Vec<NodeId> = match o {
            Some(o) => old.node(o).children().to_vec(),
            None => old.roots().to_vec(),
        };
        let new_children: Vec<NodeId> = match n {
            Some(n) => new.node(n).children().to_vec(),
            None => new.roots().to_vec(),
        };
        let old_un: Vec<NodeId> =
            old_children.iter().copied().filter(|c| !m.old_to_new.contains_key(c)).collect();
        let new_un: Vec<NodeId> =
            new_children.iter().copied().filter(|c| !m.new_to_old.contains_key(c)).collect();
        if old_un.is_empty() || new_un.is_empty() {
            continue;
        }
        let keys_old: Vec<Label> = old_un.iter().map(|&c| label(old, c)).collect();
        let keys_new: Vec<Label> = new_un.iter().map(|&c| label(new, c)).collect();
        let lcs_pairs = lcs(&keys_old, &keys_new);
        let mut used_old: HashSet<usize> = HashSet::new();
        let mut used_new: HashSet<usize> = HashSet::new();
        let mut newly: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, j) in lcs_pairs {
            newly.push((old_un[i], new_un[j]));
            used_old.insert(i);
            used_new.insert(j);
        }
        // Greedy pass for leftovers with equal labels, in order.
        let mut j_iter = 0usize;
        for i in 0..old_un.len() {
            if used_old.contains(&i) {
                continue;
            }
            while j_iter < new_un.len() {
                let j = j_iter;
                j_iter += 1;
                if used_new.contains(&j) {
                    continue;
                }
                if keys_old[i] == keys_new[j] {
                    newly.push((old_un[i], new_un[j]));
                    used_old.insert(i);
                    used_new.insert(j);
                    break;
                }
            }
        }
        for (oc, nc) in newly {
            m.link(oc, nc);
            queue.push((Some(oc), Some(nc)));
        }
    }
    m
}

/// Matches two structurally identical subtrees node-by-node (pre-order zip).
fn match_subtrees(old: &Tree, o: NodeId, new: &Tree, n: NodeId, m: &mut Matching) {
    let oi: Vec<NodeId> = old.descendants(o).collect();
    let ni: Vec<NodeId> = new.descendants(n).collect();
    debug_assert_eq!(oi.len(), ni.len());
    for (a, b) in oi.into_iter().zip(ni) {
        if !m.old_to_new.contains_key(&a) && !m.new_to_old.contains_key(&b) {
            m.link(a, b);
        }
    }
}

/// Alignment label: element name or "text node".
#[derive(Clone, PartialEq, Eq, Hash)]
enum Label {
    Elem(String),
    Text,
}

fn label(tree: &Tree, n: NodeId) -> Label {
    match tree.node(n).name() {
        Some(name) => Label::Elem(name.to_string()),
        None => Label::Text,
    }
}

/// Longest common subsequence of two label sequences, returning index pairs.
fn lcs<T: PartialEq>(a: &[T], b: &[T]) -> Vec<(usize, usize)> {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[at(i, j)] = if a[i] == b[j] {
                dp[at(i + 1, j + 1)] + 1
            } else {
                dp[at(i + 1, j)].max(dp[at(i, j + 1)])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[at(i + 1, j)] >= dp[at(i, j + 1)] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Emits the edit script, replaying each op on the working copy so that
/// recorded positions and timestamps match forward application exactly.
struct ScriptGen<'a, 'w> {
    new: &'a Tree,
    matching: &'a Matching,
    applier: Applier<'w>,
    ops: Vec<EditOp>,
    to_ts: Timestamp,
}

impl ScriptGen<'_, '_> {
    fn emit(&mut self, op: EditOp) -> Result<()> {
        self.applier.apply(&op, self.to_ts)?;
        self.ops.push(op);
        Ok(())
    }

    /// Top-down walk over `new`: aligns every matched parent's child list
    /// with moves and inserts, and applies value updates on matched pairs.
    fn emit_structure(&mut self) -> Result<()> {
        // Virtual root first (forest level), then matched elements in
        // pre-order of `new`.
        self.align_children(None)?;
        let order: Vec<NodeId> = self.new.iter().collect();
        for n in order {
            if self.matching.new_to_old.contains_key(&n) {
                self.update_values(n)?;
                if self.new.node(n).is_element() {
                    self.align_children(Some(n))?;
                }
            } else if self.new.node(n).is_element() && self.was_single_insert(n) {
                self.align_children(Some(n))?;
            }
        }
        Ok(())
    }

    /// True when `n` was inserted as a single node (has matched or
    /// separately-inserted descendants handled by alignment).
    fn was_single_insert(&self, n: NodeId) -> bool {
        subtree_has_match(self.new, n, &self.matching.new_to_old)
    }

    /// Aligns the children of the new node `n` (or the forest roots when
    /// `None`) in the working copy.
    fn align_children(&mut self, n: Option<NodeId>) -> Result<()> {
        let parent_xid = match n {
            Some(id) => self.new.node(id).xid,
            None => Xid::NONE,
        };
        let desired: Vec<NodeId> = match n {
            Some(id) => self.new.node(id).children().to_vec(),
            None => self.new.roots().to_vec(),
        };
        for (i, &c) in desired.iter().enumerate() {
            if self.matching.new_to_old.contains_key(&c) {
                // Matched: ensure it sits at (parent_xid, i) in the work tree.
                let cx = self.new.node(c).xid;
                let w = self.applier.lookup(cx)?;
                let wt = self.applier.tree();
                let cur_parent = wt.node(w).parent().map(|p| wt.node(p).xid).unwrap_or(Xid::NONE);
                let cur_pos = wt.position(w);
                if cur_parent != parent_xid || cur_pos != i {
                    let old_ts = wt.node(w).ts;
                    let old_parent_ts = if cur_parent.is_none() {
                        Timestamp::ZERO
                    } else {
                        wt.node(self.applier.lookup(cur_parent)?).ts
                    };
                    self.emit(EditOp::Move {
                        xid: cx,
                        old_parent: cur_parent,
                        old_pos: cur_pos,
                        new_parent: parent_xid,
                        new_pos: i,
                        old_ts,
                        old_parent_ts,
                    })?;
                }
            } else if subtree_has_match(self.new, c, &self.matching.new_to_old) {
                // Insert just this node; its children are placed by later
                // alignment of `c` itself.
                let mut single = Tree::new();
                let root = match &self.new.node(c).kind {
                    NodeKind::Element { name, attrs } => {
                        let e = single.new_element(name.clone());
                        for (k, v) in attrs {
                            single.set_attr(e, k.clone(), v.clone());
                        }
                        e
                    }
                    NodeKind::Text { value } => single.new_text(value.clone()),
                };
                single.node_mut(root).xid = self.new.node(c).xid;
                single.node_mut(root).ts = self.to_ts;
                single.push_root(root);
                self.emit(EditOp::InsertSubtree { parent: parent_xid, pos: i, subtree: single })?;
            } else {
                // Whole fresh subtree.
                let payload = self.new.extract_subtree(c);
                self.emit(EditOp::InsertSubtree { parent: parent_xid, pos: i, subtree: payload })?;
            }
        }
        Ok(())
    }

    /// Emits text/attribute updates for the matched new node `n`.
    fn update_values(&mut self, n: NodeId) -> Result<()> {
        let xid = self.new.node(n).xid;
        let w = self.applier.lookup(xid)?;
        let (old_kind, old_ts) = {
            let wt = self.applier.tree();
            (wt.node(w).kind.clone(), wt.node(w).ts)
        };
        match (&old_kind, &self.new.node(n).kind) {
            (NodeKind::Text { value: ov }, NodeKind::Text { value: nv }) => {
                if ov != nv {
                    self.emit(EditOp::UpdateText {
                        xid,
                        old: ov.clone(),
                        new: nv.clone(),
                        old_ts,
                    })?;
                }
            }
            (NodeKind::Element { attrs: oa, .. }, NodeKind::Element { attrs: na, .. }) => {
                // Removed or changed attributes.
                let mut ops: Vec<EditOp> = Vec::new();
                for (k, ov) in oa {
                    match na.iter().find(|(nk, _)| nk == k) {
                        None => ops.push(EditOp::SetAttr {
                            xid,
                            key: k.clone(),
                            old: Some(ov.clone()),
                            new: None,
                            old_ts,
                        }),
                        Some((_, nv)) if nv != ov => ops.push(EditOp::SetAttr {
                            xid,
                            key: k.clone(),
                            old: Some(ov.clone()),
                            new: Some(nv.clone()),
                            old_ts,
                        }),
                        _ => {}
                    }
                }
                for (k, nv) in na {
                    if !oa.iter().any(|(ok, _)| ok == k) {
                        ops.push(EditOp::SetAttr {
                            xid,
                            key: k.clone(),
                            old: None,
                            new: Some(nv.clone()),
                            old_ts,
                        });
                    }
                }
                // Chained attr ops on the same node: later ops displace the
                // already-stamped ts; record the current ts at emit time.
                for (idx, mut op) in ops.into_iter().enumerate() {
                    if idx > 0 {
                        if let EditOp::SetAttr { old_ts: ts_slot, .. } = &mut op {
                            *ts_slot = self.to_ts;
                        }
                    }
                    self.emit(op)?;
                }
            }
            _ => unreachable!("matching never pairs text with element"),
        }
        Ok(())
    }

    /// Deletes every unmatched old subtree still present in the work tree.
    fn emit_deletes(&mut self) -> Result<()> {
        // The work tree now contains exactly: matched nodes (placed) and
        // unmatched old nodes. Collect topmost unmatched-by-xid subtrees.
        let new_xids: HashSet<Xid> = self.new.iter().map(|n| self.new.node(n).xid).collect();
        loop {
            // Re-scan after each delete: arena ids shift.
            let wt = self.applier.tree();
            let mut victim: Option<(Xid, Xid, usize)> = None;
            let mut stack: Vec<NodeId> = wt.roots().iter().rev().copied().collect();
            while let Some(id) = stack.pop() {
                let x = wt.node(id).xid;
                if !new_xids.contains(&x) {
                    let parent = wt.node(id).parent().map(|p| wt.node(p).xid).unwrap_or(Xid::NONE);
                    victim = Some((x, parent, wt.position(id)));
                    break;
                }
                stack.extend(wt.node(id).children().iter().rev());
            }
            let Some((x, parent, pos)) = victim else { break };
            let wt = self.applier.tree();
            let id = self.applier.lookup(x)?;
            let subtree = wt.extract_subtree(id);
            let old_parent_ts = if parent.is_none() {
                Timestamp::ZERO
            } else {
                wt.node(self.applier.lookup(parent)?).ts
            };
            self.emit(EditOp::DeleteSubtree { parent, pos, subtree, old_parent_ts })?;
        }
        Ok(())
    }
}

/// True when any node of the subtree rooted at `n` (excluding `n` itself)
/// is matched.
fn subtree_has_match(tree: &Tree, n: NodeId, matched: &HashMap<NodeId, NodeId>) -> bool {
    tree.descendants(n).skip(1).any(|d| matched.contains_key(&d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::parse::parse_document;
    use txdb_xml::serialize::to_string;

    /// Sets up an old tree with XIDs 1..n and ts=100.
    fn old_tree(src: &str) -> (Tree, Xid) {
        let mut t = parse_document(src).unwrap();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(i as u64 + 1);
            t.node_mut(*id).ts = Timestamp::from_micros(100);
        }
        let next = Xid(ids.len() as u64 + 1);
        (t, next)
    }

    /// Runs the diff and verifies forward/backward replay.
    fn check(old_src: &str, new_src: &str) -> (DiffResult, Tree, Tree) {
        let (old, mut next) = old_tree(old_src);
        let mut new = parse_document(new_src).unwrap();
        let res = diff_trees(
            &old,
            &mut new,
            &mut next,
            VersionId(0),
            Timestamp::from_micros(100),
            Timestamp::from_micros(200),
        )
        .unwrap();
        // Forward replay reproduces `new` exactly (structure + identity).
        let mut fwd = old.clone();
        res.delta.apply_forward(&mut fwd).unwrap();
        assert!(forest_identical(&fwd, &new), "forward replay mismatch");
        // Backward replay restores `old` exactly.
        let mut bwd = fwd.clone();
        res.delta.apply_backward(&mut bwd).unwrap();
        assert!(forest_identical(&bwd, &old), "backward replay mismatch");
        (res, old, new)
    }

    #[test]
    fn identical_trees_empty_delta() {
        let (res, ..) = check("<a><b>x</b></a>", "<a><b>x</b></a>");
        assert!(res.delta.is_empty());
        assert_eq!(res.nodes_inserted, 0);
        assert_eq!(res.nodes_deleted, 0);
    }

    #[test]
    fn text_update_small_delta() {
        let (res, _, new) = check(
            "<r><name>Napoli</name><price>15</price></r>",
            "<r><name>Napoli</name><price>18</price></r>",
        );
        assert_eq!(res.delta.ops.len(), 1);
        assert!(matches!(res.delta.ops[0], EditOp::UpdateText { .. }));
        // All nodes keep identity.
        assert_eq!(res.nodes_inserted, 0);
        // price element keeps its xid but its text child got new ts.
        let price_text = new.iter().find(|&n| new.node(n).text() == Some("18")).unwrap();
        assert_eq!(new.node(price_text).ts, Timestamp::from_micros(200));
        assert_eq!(new.node(price_text).xid, Xid(5));
    }

    #[test]
    fn insert_new_sibling() {
        let (res, _, new) = check(
            "<guide><restaurant><name>Napoli</name></restaurant></guide>",
            "<guide><restaurant><name>Napoli</name></restaurant>\
             <restaurant><name>Akropolis</name></restaurant></guide>",
        );
        assert_eq!(res.delta.ops.len(), 1);
        assert!(matches!(res.delta.ops[0], EditOp::InsertSubtree { pos: 1, .. }));
        assert_eq!(res.nodes_inserted, 3);
        // Fresh xids beyond the old range.
        let max_xid = new.iter().map(|n| new.node(n).xid.0).max().unwrap();
        assert!(max_xid >= 7);
    }

    #[test]
    fn delete_subtree() {
        let (res, ..) = check("<g><r><n>A</n></r><r><n>B</n></r></g>", "<g><r><n>A</n></r></g>");
        assert_eq!(res.delta.ops.len(), 1);
        assert!(matches!(res.delta.ops[0], EditOp::DeleteSubtree { .. }));
        assert_eq!(res.nodes_deleted, 3);
    }

    #[test]
    fn attribute_changes() {
        let (res, ..) =
            check(r#"<r category="italian" stars="2"/>"#, r#"<r category="greek" rating="5"/>"#);
        // change category, remove stars, add rating
        assert_eq!(res.delta.ops.len(), 3);
        assert!(res.delta.ops.iter().all(|o| matches!(o, EditOp::SetAttr { .. })));
    }

    #[test]
    fn move_detected_for_identical_subtree() {
        let (res, _, new) = check(
            "<g><a><big><x>1</x><y>2</y><z>3</z></big></a><b/></g>",
            "<g><a/><b><big><x>1</x><y>2</y><z>3</z></big></b></g>",
        );
        // The heavy identical subtree must be moved, not delete+insert.
        assert!(
            res.delta.ops.iter().any(|o| matches!(o, EditOp::Move { .. })),
            "expected a move, got {:?}",
            res.delta.ops
        );
        assert_eq!(res.nodes_inserted, 0);
        assert_eq!(res.nodes_deleted, 0);
        // `big` keeps its xid.
        let big = new.iter().find(|&n| new.node(n).name() == Some("big")).unwrap();
        assert_eq!(new.node(big).xid, Xid(3));
    }

    #[test]
    fn reorder_children() {
        let (res, ..) = check("<l><i>1</i><i>2</i><i>3</i></l>", "<l><i>3</i><i>1</i><i>2</i></l>");
        // One move suffices (3 to front); LCS keeps 1,2 in place.
        let moves = res.delta.ops.iter().filter(|o| matches!(o, EditOp::Move { .. })).count();
        assert_eq!(moves, 1, "ops: {:?}", res.delta.ops);
        assert_eq!(res.nodes_inserted, 0);
    }

    #[test]
    fn rename_is_delete_plus_insert() {
        let (res, ..) = check("<g><old>x</old></g>", "<g><new>x</new></g>");
        assert!(res.delta.ops.iter().any(|o| matches!(o, EditOp::InsertSubtree { .. })));
        assert!(res.delta.ops.iter().any(|o| matches!(o, EditOp::DeleteSubtree { .. })));
    }

    #[test]
    fn insert_wrapper_around_matched_content() {
        // New element wraps existing (matched) children: single-node insert
        // + moves.
        let (res, _, new) =
            check("<g><a>1</a><b>2</b></g>", "<g><wrap><a>1</a><b>2</b></wrap></g>");
        assert_eq!(res.nodes_inserted, 1, "only <wrap> is new: {:?}", res.delta.ops);
        let a = new.iter().find(|&n| new.node(n).name() == Some("a")).unwrap();
        assert_eq!(new.node(a).xid, Xid(2), "a keeps identity");
    }

    #[test]
    fn from_empty_tree_inserts_everything() {
        let old = Tree::new();
        let mut next = Xid::FIRST;
        let mut new = parse_document("<a><b>x</b></a>").unwrap();
        let res = diff_trees(
            &old,
            &mut new,
            &mut next,
            VersionId(0),
            Timestamp::ZERO,
            Timestamp::from_micros(10),
        )
        .unwrap();
        assert_eq!(res.nodes_inserted, 3);
        let mut fwd = Tree::new();
        res.delta.apply_forward(&mut fwd).unwrap();
        assert!(forest_identical(&fwd, &new));
        assert_eq!(to_string(&fwd), "<a><b>x</b></a>");
    }

    #[test]
    fn restaurant_guide_sequence() {
        // Figure 1's version sequence as one chained test.
        let v0 = "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>";
        let v1 = "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
                  <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>";
        let v2 = "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>";
        let (d01, ..) = check(v0, v1);
        assert_eq!(d01.delta.ops.len(), 1);
        let (d12, ..) = check(v1, v2);
        // delete Akropolis + update price
        assert_eq!(d12.delta.ops.len(), 2, "{:?}", d12.delta.ops);
    }

    #[test]
    fn xids_never_reused_after_delete_and_reinsert() {
        // §7.4: deleted and reintroduced content gets a NEW xid.
        let v0 = "<g><r><n>Napoli</n></r></g>";
        let v1 = "<g/>";
        let v2 = "<g><r><n>Napoli</n></r></g>";
        let (old, mut next) = old_tree(v0);
        let mut t1 = parse_document(v1).unwrap();
        let d1 = diff_trees(
            &old,
            &mut t1,
            &mut next,
            VersionId(0),
            Timestamp::from_micros(100),
            Timestamp::from_micros(200),
        )
        .unwrap();
        assert_eq!(d1.nodes_deleted, 3);
        let mut t2 = parse_document(v2).unwrap();
        let _d2 = diff_trees(
            &t1,
            &mut t2,
            &mut next,
            VersionId(1),
            Timestamp::from_micros(200),
            Timestamp::from_micros(300),
        )
        .unwrap();
        let r = t2.iter().find(|&n| t2.node(n).name() == Some("r")).unwrap();
        assert!(t2.node(r).xid.0 > 4, "reintroduced element has fresh xid");
    }

    #[test]
    fn timestamps_after_delete_stamp_parent() {
        let (res, _, new) = check("<g><a/><b/></g>", "<g><a/></g>");
        let _ = res;
        let g = new.root().unwrap();
        // Parent g was stamped by the delete.
        assert_eq!(new.node(g).ts, Timestamp::from_micros(200));
        assert_eq!(new.effective_ts(g), Timestamp::from_micros(200));
    }

    #[test]
    fn deep_random_like_workload() {
        // A broader structural shuffle to exercise all op kinds at once.
        let (res, ..) = check(
            r#"<db><t a="1"><u>one</u><v>two</v></t><t a="2"><u>three</u></t><junk/></db>"#,
            r#"<db><t a="2"><u>three</u><w>new</w></t><t a="9"><u>one!</u><v>two</v></t></db>"#,
        );
        assert!(!res.delta.ops.is_empty());
    }

    #[test]
    fn lcs_basic() {
        let a = ["a", "b", "c", "d"];
        let b = ["b", "d", "e"];
        let pairs = lcs(&a, &b);
        assert_eq!(pairs, vec![(1, 0), (3, 1)]);
        assert!(lcs::<&str>(&[], &b).is_empty());
    }
}
