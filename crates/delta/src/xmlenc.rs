//! Deltas as XML documents.
//!
//! The paper requires edit scripts to be XML trees themselves: "as long as
//! an edit script is represented in XML this operator does not break
//! closure properties of queries" (§6, Diff), and the storage model stores
//! "each delta ... as a separate XML document" (§7.1). This module encodes
//! a [`Delta`] losslessly as a [`Tree`] and back:
//!
//! ```xml
//! <delta from="0" to="1" t1="100" t2="200">
//!   <insert parent="5" pos="1"> ...subtree with txdb:xid/txdb:ts... </insert>
//!   <delete parent="5" pos="0" pts="100"> ...subtree... </delete>
//!   <update xid="7" ots="100"><old>15</old><new>18</new></update>
//!   <setattr xid="3" key="category" ots="100"><old>x</old><new>y</new></setattr>
//!   <move xid="9" oparent="2" opos="1" nparent="4" npos="0" ots="100" opts="100"/>
//! </delta>
//! ```
//!
//! Subtree payloads carry their XIDs and direct timestamps in the reserved
//! `txdb:xid`/`txdb:ts` attributes; `<old>`/`<new>` children are omitted
//! when the corresponding value is absent (attribute creation/removal).
//! The same encoding doubles as the storage format of deltas and as the
//! query-visible result of the `Diff` operator.

use txdb_base::{Error, Result, Timestamp, VersionId, Xid};
use txdb_xml::tree::{NodeId, Tree};

use crate::ops::{Delta, EditOp};

/// Encodes a delta as an XML tree.
pub fn delta_to_xml(delta: &Delta) -> Tree {
    let mut t = Tree::new();
    let root = t.new_element("delta");
    t.set_attr(root, "from", delta.from_version.0.to_string());
    t.set_attr(root, "to", delta.to_version.0.to_string());
    t.set_attr(root, "t1", delta.from_ts.micros().to_string());
    t.set_attr(root, "t2", delta.to_ts.micros().to_string());
    t.push_root(root);
    for op in &delta.ops {
        let e = match op {
            EditOp::InsertSubtree { parent, pos, subtree } => {
                let e = t.new_element("insert");
                t.set_attr(e, "parent", parent.0.to_string());
                t.set_attr(e, "pos", pos.to_string());
                attach_payload(&mut t, e, subtree);
                e
            }
            EditOp::DeleteSubtree { parent, pos, subtree, old_parent_ts } => {
                let e = t.new_element("delete");
                t.set_attr(e, "parent", parent.0.to_string());
                t.set_attr(e, "pos", pos.to_string());
                t.set_attr(e, "pts", old_parent_ts.micros().to_string());
                attach_payload(&mut t, e, subtree);
                e
            }
            EditOp::UpdateText { xid, old, new, old_ts } => {
                let e = t.new_element("update");
                t.set_attr(e, "xid", xid.0.to_string());
                t.set_attr(e, "ots", old_ts.micros().to_string());
                let o = t.new_element("old");
                let ot = t.new_text(old.clone());
                t.append_child(o, ot);
                t.append_child(e, o);
                let n = t.new_element("new");
                let nt = t.new_text(new.clone());
                t.append_child(n, nt);
                t.append_child(e, n);
                e
            }
            EditOp::SetAttr { xid, key, old, new, old_ts } => {
                let e = t.new_element("setattr");
                t.set_attr(e, "xid", xid.0.to_string());
                t.set_attr(e, "key", key.clone());
                t.set_attr(e, "ots", old_ts.micros().to_string());
                if let Some(ov) = old {
                    let o = t.new_element("old");
                    let ot = t.new_text(ov.clone());
                    t.append_child(o, ot);
                    t.append_child(e, o);
                }
                if let Some(nv) = new {
                    let n = t.new_element("new");
                    let nt = t.new_text(nv.clone());
                    t.append_child(n, nt);
                    t.append_child(e, n);
                }
                e
            }
            EditOp::Move {
                xid,
                old_parent,
                old_pos,
                new_parent,
                new_pos,
                old_ts,
                old_parent_ts,
            } => {
                let e = t.new_element("move");
                t.set_attr(e, "xid", xid.0.to_string());
                t.set_attr(e, "oparent", old_parent.0.to_string());
                t.set_attr(e, "opos", old_pos.to_string());
                t.set_attr(e, "nparent", new_parent.0.to_string());
                t.set_attr(e, "npos", new_pos.to_string());
                t.set_attr(e, "ots", old_ts.micros().to_string());
                t.set_attr(e, "opts", old_parent_ts.micros().to_string());
                e
            }
        };
        t.append_child(root, e);
    }
    t
}

/// Copies `payload` under `op_elem`, materializing XIDs/timestamps as
/// `txdb:xid`/`txdb:ts` attributes.
fn attach_payload(t: &mut Tree, op_elem: NodeId, payload: &Tree) {
    for &r in payload.roots() {
        let copied = t.copy_subtree_from(payload, r);
        // Wrap text roots so attributes have a host: <txdb:text> wrapper.
        let host = if t.node(copied).is_element() {
            copied
        } else {
            let wrap = t.new_element("txdb:text");
            t.append_child(wrap, copied);
            wrap
        };
        annotate(t, copied);
        t.append_child(op_elem, host);
    }
}

fn annotate(t: &mut Tree, id: NodeId) {
    let ids: Vec<NodeId> = t.descendants(id).collect();
    for n in ids {
        if t.node(n).is_element() {
            let xid = t.node(n).xid;
            let ts = t.node(n).ts;
            t.set_attr(n, "txdb:xid", xid.0.to_string());
            t.set_attr(n, "txdb:ts", ts.micros().to_string());
        } else {
            // Text nodes carry identity via a wrapper sibling convention:
            // their xid/ts is encoded on the parent as txdb:txid.N/txdb:tts.N
            // where N is the child index.
            let (parent, pos, xid, ts) = {
                let p = t.node(n).parent().expect("payload text under element");
                (p, t.position(n), t.node(n).xid, t.node(n).ts)
            };
            t.set_attr(parent, format!("txdb:txid.{pos}"), xid.0.to_string());
            t.set_attr(parent, format!("txdb:tts.{pos}"), ts.micros().to_string());
        }
    }
}

/// Decodes a delta from its XML representation.
pub fn delta_from_xml(tree: &Tree) -> Result<Delta> {
    let root = tree
        .root()
        .filter(|&r| tree.node(r).name() == Some("delta"))
        .ok_or_else(|| Error::Corrupt("delta document must have a <delta> root".into()))?;
    let from_version = VersionId(attr_num(tree, root, "from")? as u32);
    let to_version = VersionId(attr_num(tree, root, "to")? as u32);
    let from_ts = Timestamp::from_micros(attr_num(tree, root, "t1")?);
    let to_ts = Timestamp::from_micros(attr_num(tree, root, "t2")?);
    let mut ops = Vec::new();
    for &op_el in tree.node(root).children() {
        let name =
            tree.node(op_el).name().ok_or_else(|| Error::Corrupt("text in delta body".into()))?;
        let op = match name {
            "insert" => EditOp::InsertSubtree {
                parent: Xid(attr_num(tree, op_el, "parent")?),
                pos: attr_num(tree, op_el, "pos")? as usize,
                subtree: extract_payload(tree, op_el)?,
            },
            "delete" => EditOp::DeleteSubtree {
                parent: Xid(attr_num(tree, op_el, "parent")?),
                pos: attr_num(tree, op_el, "pos")? as usize,
                subtree: extract_payload(tree, op_el)?,
                old_parent_ts: Timestamp::from_micros(attr_num(tree, op_el, "pts")?),
            },
            "update" => EditOp::UpdateText {
                xid: Xid(attr_num(tree, op_el, "xid")?),
                old: child_text(tree, op_el, "old")?
                    .ok_or_else(|| Error::Corrupt("update without <old>".into()))?,
                new: child_text(tree, op_el, "new")?
                    .ok_or_else(|| Error::Corrupt("update without <new>".into()))?,
                old_ts: Timestamp::from_micros(attr_num(tree, op_el, "ots")?),
            },
            "setattr" => EditOp::SetAttr {
                xid: Xid(attr_num(tree, op_el, "xid")?),
                key: tree
                    .node(op_el)
                    .attr("key")
                    .ok_or_else(|| Error::Corrupt("setattr without key".into()))?
                    .to_string(),
                old: child_text(tree, op_el, "old")?,
                new: child_text(tree, op_el, "new")?,
                old_ts: Timestamp::from_micros(attr_num(tree, op_el, "ots")?),
            },
            "move" => EditOp::Move {
                xid: Xid(attr_num(tree, op_el, "xid")?),
                old_parent: Xid(attr_num(tree, op_el, "oparent")?),
                old_pos: attr_num(tree, op_el, "opos")? as usize,
                new_parent: Xid(attr_num(tree, op_el, "nparent")?),
                new_pos: attr_num(tree, op_el, "npos")? as usize,
                old_ts: Timestamp::from_micros(attr_num(tree, op_el, "ots")?),
                old_parent_ts: Timestamp::from_micros(attr_num(tree, op_el, "opts")?),
            },
            other => return Err(Error::Corrupt(format!("unknown delta op <{other}>"))),
        };
        ops.push(op);
    }
    Ok(Delta { from_version, to_version, from_ts, to_ts, ops })
}

fn attr_num(tree: &Tree, id: NodeId, key: &str) -> Result<u64> {
    tree.node(id)
        .attr(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| Error::Corrupt(format!("missing/invalid numeric attribute `{key}`")))
}

/// Text content of the child element named `name`, if present. An empty
/// element yields the empty string.
fn child_text(tree: &Tree, id: NodeId, name: &str) -> Result<Option<String>> {
    for &c in tree.node(id).children() {
        if tree.node(c).name() == Some(name) {
            return Ok(Some(tree.text_content(c)));
        }
    }
    Ok(None)
}

/// Rebuilds an op payload: strips the `txdb:*` annotations back into node
/// fields and unwraps `<txdb:text>` hosts.
fn extract_payload(tree: &Tree, op_el: NodeId) -> Result<Tree> {
    let mut out = Tree::new();
    for &c in tree.node(op_el).children() {
        let copied = out.copy_subtree_from(tree, c);
        out.push_root(copied);
    }
    // De-annotate.
    let ids: Vec<NodeId> = out.iter().collect();
    for n in ids {
        if !out.node(n).is_element() {
            continue;
        }
        if let Some(x) = out.node(n).attr("txdb:xid").and_then(|v| v.parse::<u64>().ok()) {
            out.node_mut(n).xid = Xid(x);
        }
        if let Some(ts) = out.node(n).attr("txdb:ts").and_then(|v| v.parse::<u64>().ok()) {
            out.node_mut(n).ts = Timestamp::from_micros(ts);
        }
        out.remove_attr(n, "txdb:xid");
        out.remove_attr(n, "txdb:ts");
        // Text-child identities.
        let child_count = out.node(n).children().len();
        for pos in 0..child_count {
            let xk = format!("txdb:txid.{pos}");
            let tk = format!("txdb:tts.{pos}");
            let x = out.node(n).attr(&xk).and_then(|v| v.parse::<u64>().ok());
            let t = out.node(n).attr(&tk).and_then(|v| v.parse::<u64>().ok());
            if let Some(x) = x {
                let c = out.node(n).children()[pos];
                out.node_mut(c).xid = Xid(x);
            }
            if let Some(t) = t {
                let c = out.node(n).children()[pos];
                out.node_mut(c).ts = Timestamp::from_micros(t);
            }
            out.remove_attr(n, &xk);
            out.remove_attr(n, &tk);
        }
    }
    // Unwrap <txdb:text> hosts at the root level.
    let roots: Vec<NodeId> = out.roots().to_vec();
    for r in roots {
        if out.node(r).name() == Some("txdb:text") {
            let inner = out
                .node(r)
                .children()
                .first()
                .copied()
                .ok_or_else(|| Error::Corrupt("empty txdb:text wrapper".into()))?;
            let pos = out.position(r);
            out.detach(inner);
            out.remove_subtree(r);
            out.insert_root(pos, inner);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::parse::parse_document;
    use txdb_xml::serialize::to_string;

    fn payload(src: &str, first_xid: u64, ts: u64) -> Tree {
        let mut t = parse_document(src).unwrap();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(first_xid + i as u64);
            t.node_mut(*id).ts = Timestamp::from_micros(ts);
        }
        t
    }

    fn sample_delta() -> Delta {
        Delta {
            from_version: VersionId(3),
            to_version: VersionId(4),
            from_ts: Timestamp::from_micros(1000),
            to_ts: Timestamp::from_micros(2000),
            ops: vec![
                EditOp::InsertSubtree {
                    parent: Xid(5),
                    pos: 1,
                    subtree: payload("<c a=\"x\">hi</c>", 10, 2000),
                },
                EditOp::DeleteSubtree {
                    parent: Xid::NONE,
                    pos: 0,
                    subtree: payload("<gone><sub/></gone>", 20, 500),
                    old_parent_ts: Timestamp::from_micros(700),
                },
                EditOp::UpdateText {
                    xid: Xid(7),
                    old: "15".into(),
                    new: "18".into(),
                    old_ts: Timestamp::from_micros(900),
                },
                EditOp::SetAttr {
                    xid: Xid(3),
                    key: "category".into(),
                    old: Some("italian".into()),
                    new: None,
                    old_ts: Timestamp::from_micros(800),
                },
                EditOp::SetAttr {
                    xid: Xid(3),
                    key: "stars".into(),
                    old: None,
                    new: Some("4".into()),
                    old_ts: Timestamp::from_micros(800),
                },
                EditOp::Move {
                    xid: Xid(9),
                    old_parent: Xid(2),
                    old_pos: 1,
                    new_parent: Xid(4),
                    new_pos: 0,
                    old_ts: Timestamp::from_micros(600),
                    old_parent_ts: Timestamp::from_micros(650),
                },
            ],
        }
    }

    fn assert_deltas_equal(a: &Delta, b: &Delta) {
        assert_eq!(a.from_version, b.from_version);
        assert_eq!(a.to_version, b.to_version);
        assert_eq!(a.from_ts, b.from_ts);
        assert_eq!(a.to_ts, b.to_ts);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn roundtrip_through_tree() {
        let d = sample_delta();
        let xml = delta_to_xml(&d);
        let back = delta_from_xml(&xml).unwrap();
        assert_deltas_equal(&d, &back);
    }

    #[test]
    fn roundtrip_through_text() {
        // Deltas are stored as XML text (§7.1): serialize → parse → decode.
        let d = sample_delta();
        let xml = delta_to_xml(&d);
        let text = to_string(&xml);
        let reparsed = parse_document(&text).unwrap();
        let back = delta_from_xml(&reparsed).unwrap();
        assert_deltas_equal(&d, &back);
    }

    #[test]
    fn empty_delta_roundtrip() {
        let d = Delta::empty(VersionId(0), Timestamp::ZERO, Timestamp::from_micros(5));
        let back = delta_from_xml(&delta_to_xml(&d)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.to_version, VersionId(1));
    }

    #[test]
    fn text_root_payload_roundtrip() {
        // An inserted bare text node (mixed content edits).
        let mut t = Tree::new();
        let txt = t.new_text("dangling");
        t.node_mut(txt).xid = Xid(77);
        t.node_mut(txt).ts = Timestamp::from_micros(42);
        t.push_root(txt);
        let d = Delta {
            from_version: VersionId(0),
            to_version: VersionId(1),
            from_ts: Timestamp::ZERO,
            to_ts: Timestamp::from_micros(1),
            ops: vec![EditOp::InsertSubtree { parent: Xid(1), pos: 0, subtree: t }],
        };
        let text = to_string(&delta_to_xml(&d));
        let back = delta_from_xml(&parse_document(&text).unwrap()).unwrap();
        match &back.ops[0] {
            EditOp::InsertSubtree { subtree, .. } => {
                let r = subtree.root().unwrap();
                assert_eq!(subtree.node(r).text(), Some("dangling"));
                assert_eq!(subtree.node(r).xid, Xid(77));
                assert_eq!(subtree.node(r).ts, Timestamp::from_micros(42));
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn update_with_empty_strings() {
        let d = Delta {
            from_version: VersionId(0),
            to_version: VersionId(1),
            from_ts: Timestamp::ZERO,
            to_ts: Timestamp::from_micros(1),
            ops: vec![EditOp::UpdateText {
                xid: Xid(1),
                old: String::new(),
                new: "x".into(),
                old_ts: Timestamp::ZERO,
            }],
        };
        let text = to_string(&delta_to_xml(&d));
        let back = delta_from_xml(&parse_document(&text).unwrap()).unwrap();
        match &back.ops[0] {
            EditOp::UpdateText { old, new, .. } => {
                assert_eq!(old, "");
                assert_eq!(new, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        let t = parse_document("<notadelta/>").unwrap();
        assert!(delta_from_xml(&t).is_err());
        let t = parse_document(r#"<delta from="0" to="1" t1="0" t2="1"><bogus/></delta>"#).unwrap();
        assert!(delta_from_xml(&t).is_err());
        let t = parse_document(r#"<delta from="x" to="1" t1="0" t2="1"/>"#).unwrap();
        assert!(delta_from_xml(&t).is_err());
    }

    #[test]
    fn decoded_delta_is_applicable() {
        // End-to-end: diff → encode → decode → apply.
        use crate::diff::{diff_trees, forest_identical};
        let mut old = parse_document("<g><r><n>Napoli</n><p>15</p></r></g>").unwrap();
        let ids: Vec<NodeId> = old.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            old.node_mut(*id).xid = Xid(i as u64 + 1);
            old.node_mut(*id).ts = Timestamp::from_micros(10);
        }
        let mut next = Xid(100);
        let mut new = parse_document("<g><r><n>Napoli</n><p>18</p></r><x/></g>").unwrap();
        let res = diff_trees(
            &old,
            &mut new,
            &mut next,
            VersionId(0),
            Timestamp::from_micros(10),
            Timestamp::from_micros(20),
        )
        .unwrap();
        let text = to_string(&delta_to_xml(&res.delta));
        let decoded = delta_from_xml(&parse_document(&text).unwrap()).unwrap();
        let mut replay = old.clone();
        decoded.apply_forward(&mut replay).unwrap();
        assert!(forest_identical(&replay, &new));
        decoded.apply_backward(&mut replay).unwrap();
        assert!(forest_identical(&replay, &old));
    }
}
