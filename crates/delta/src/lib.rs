//! # txdb-delta — change detection and completed deltas
//!
//! The paper's physical storage model (§7.1) keeps one complete current
//! version per document and represents all previous versions as a chain of
//! **completed deltas**: edit scripts that carry enough information to be
//! applied both *forward* (old → new) and *backward* (new → old). This
//! crate provides the three pieces of that machinery, implemented from
//! scratch in the style of XyDiff (Cobéna, Abiteboul & Marian — the paper's
//! reference \[7\] and the diff used by Xyleme):
//!
//! * [`ops`] — the edit operations ([`EditOp`]), the [`Delta`] container and
//!   forward/backward application with full invertibility
//!   (`apply_forward ∘ apply_backward = id`);
//! * [`diff`] — the tree-diff algorithm: bottom-up subtree hashing, greedy
//!   matching of heaviest identical subtrees, upward label propagation and
//!   LCS-based child alignment, emitting a minimal-ish edit script while
//!   preserving XIDs across versions (§3.2);
//! * [`xmlenc`] — deltas *are* XML documents (§6: "as long as an edit
//!   script is represented in XML this operator does not break closure
//!   properties of queries", and §7.1: "each delta will in fact be stored
//!   as a separate XML document"): lossless encoding of a [`Delta`] to a
//!   [`txdb_xml::Tree`] and back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod ops;
pub mod xmlenc;

pub use diff::{diff_trees, DiffResult};
pub use ops::{Delta, EditOp};
pub use xmlenc::{delta_from_xml, delta_to_xml};
