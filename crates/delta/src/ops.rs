//! Edit operations and completed-delta application.
//!
//! A [`Delta`] is an ordered list of [`EditOp`]s transforming version *v*
//! of a document into version *v+1*. Every operation is *completed*: it
//! carries both the old and the new state of whatever it touches (deleted
//! subtrees, old text, old attribute values, old positions, old direct
//! timestamps), so the same object can be applied forward or backward —
//! the paper's "completed deltas can be used both as forward and backward
//! deltas" (§7.1).
//!
//! Operations address nodes by [`Xid`] (never by arena `NodeId`, which is
//! version-local) and positions by child index; `Xid::NONE` as a parent
//! denotes the forest root level. Forward application replays the ops in
//! order; backward application replays the *inverted* ops in reverse order.
//!
//! ### Timestamps
//!
//! Node `ts` fields hold *direct* modification times (see
//! [`txdb_xml::Tree::effective_ts`]). The time-stamping rules applied by
//! this module at delta time `to_ts` are:
//!
//! * inserted subtrees arrive pre-stamped by the diff (`to_ts`);
//! * `UpdateText`/`SetAttr` stamp the affected node;
//! * `DeleteSubtree` stamps the *parent* (its child list changed);
//! * `Move` stamps the moved node and the old parent.
//!
//! Each op records the displaced old timestamps so backward application
//! restores them exactly.

use txdb_base::{Error, Result, Timestamp, VersionId, Xid};
use txdb_xml::tree::{NodeId, Tree};

/// One edit operation of a completed delta.
#[derive(Clone, Debug)]
pub enum EditOp {
    /// Insert `subtree` (a single-rooted forest with XIDs and direct
    /// timestamps already assigned) under `parent` at child index `pos`.
    InsertSubtree {
        /// Parent element XID; `Xid::NONE` inserts at the root level.
        parent: Xid,
        /// Child index at insertion time.
        pos: usize,
        /// The inserted content, XIDs assigned.
        subtree: Tree,
    },
    /// Delete the subtree rooted at `subtree`'s root from `parent` at `pos`.
    DeleteSubtree {
        /// Parent element XID; `Xid::NONE` deletes a root.
        parent: Xid,
        /// Child index at deletion time.
        pos: usize,
        /// The deleted content (for backward application).
        subtree: Tree,
        /// The parent's direct timestamp before the deletion stamped it.
        old_parent_ts: Timestamp,
    },
    /// Replace the value of text node `xid`.
    UpdateText {
        /// The text node.
        xid: Xid,
        /// Old value (backward direction).
        old: String,
        /// New value (forward direction).
        new: String,
        /// The node's direct timestamp before the update.
        old_ts: Timestamp,
    },
    /// Set, replace or remove an attribute on element `xid`.
    SetAttr {
        /// The element.
        xid: Xid,
        /// Attribute name.
        key: String,
        /// Old value; `None` if the attribute was absent.
        old: Option<String>,
        /// New value; `None` removes the attribute.
        new: Option<String>,
        /// The element's direct timestamp before the change.
        old_ts: Timestamp,
    },
    /// Move the subtree rooted at `xid` to a new parent/position.
    Move {
        /// Root of the moved subtree.
        xid: Xid,
        /// Parent before the move (`Xid::NONE` = root level).
        old_parent: Xid,
        /// Child index before the move.
        old_pos: usize,
        /// Parent after the move (`Xid::NONE` = root level).
        new_parent: Xid,
        /// Child index after the move.
        new_pos: usize,
        /// Moved node's direct timestamp before the move.
        old_ts: Timestamp,
        /// Old parent's direct timestamp before the move stamped it.
        old_parent_ts: Timestamp,
    },
}

impl EditOp {
    /// Rough serialized size in bytes, used by storage statistics and the
    /// space experiments (E8).
    pub fn weight(&self) -> usize {
        match self {
            EditOp::InsertSubtree { subtree, .. } | EditOp::DeleteSubtree { subtree, .. } => {
                32 + subtree
                    .iter()
                    .map(|n| match &subtree.node(n).kind {
                        txdb_xml::tree::NodeKind::Element { name, attrs } => {
                            24 + name.len()
                                + attrs.iter().map(|(k, v)| k.len() + v.len() + 8).sum::<usize>()
                        }
                        txdb_xml::tree::NodeKind::Text { value } => 24 + value.len(),
                    })
                    .sum::<usize>()
            }
            EditOp::UpdateText { old, new, .. } => 40 + old.len() + new.len(),
            EditOp::SetAttr { key, old, new, .. } => {
                40 + key.len()
                    + old.as_deref().map_or(0, str::len)
                    + new.as_deref().map_or(0, str::len)
            }
            EditOp::Move { .. } => 64,
        }
    }
}

/// A completed delta transforming one version of a document into the next.
#[derive(Clone, Debug)]
pub struct Delta {
    /// The version the delta applies forward *from*.
    pub from_version: VersionId,
    /// The version the delta produces (`from_version + 1` in the chain).
    pub to_version: VersionId,
    /// Commit timestamp of `from_version`.
    pub from_ts: Timestamp,
    /// Commit timestamp of `to_version` (the delta's transaction time).
    pub to_ts: Timestamp,
    /// The edit script, in forward application order.
    pub ops: Vec<EditOp>,
}

impl Delta {
    /// An empty delta between two versions (no changes — used when a
    /// document is re-stored unchanged).
    pub fn empty(from: VersionId, from_ts: Timestamp, to_ts: Timestamp) -> Self {
        Delta { from_version: from, to_version: from.next(), from_ts, to_ts, ops: Vec::new() }
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total approximate serialized size, for space accounting (E8).
    pub fn weight(&self) -> usize {
        48 + self.ops.iter().map(EditOp::weight).sum::<usize>()
    }

    /// Applies the delta forward (version `from` → `to`), mutating `tree`.
    pub fn apply_forward(&self, tree: &mut Tree) -> Result<()> {
        let mut applier = Applier::new(tree);
        for op in &self.ops {
            applier.apply(op, self.to_ts)?;
        }
        Ok(())
    }

    /// Applies the delta backward (version `to` → `from`), mutating `tree`.
    pub fn apply_backward(&self, tree: &mut Tree) -> Result<()> {
        let mut applier = Applier::new(tree);
        for op in self.ops.iter().rev() {
            applier.apply_inverse(op)?;
        }
        Ok(())
    }

    /// XIDs directly affected by this delta (roots of inserted/deleted
    /// subtrees, updated nodes, moved nodes and touched parents). Used by
    /// index maintenance and the change-oriented index ablation (E7).
    pub fn touched_xids(&self) -> Vec<Xid> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                EditOp::InsertSubtree { parent, subtree, .. }
                | EditOp::DeleteSubtree { parent, subtree, .. } => {
                    if !parent.is_none() {
                        out.push(*parent);
                    }
                    for n in subtree.iter() {
                        out.push(subtree.node(n).xid);
                    }
                }
                EditOp::UpdateText { xid, .. } | EditOp::SetAttr { xid, .. } => out.push(*xid),
                EditOp::Move { xid, old_parent, new_parent, .. } => {
                    out.push(*xid);
                    if !old_parent.is_none() {
                        out.push(*old_parent);
                    }
                    if !new_parent.is_none() {
                        out.push(*new_parent);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Applies ops against a tree, maintaining an XID → NodeId map
/// incrementally (deletes invalidate arena ids, so the map is updated on
/// every structural op). Also used by the diff to replay the script it is
/// generating, guaranteeing that recorded positions match forward replay.
pub(crate) struct Applier<'a> {
    tree: &'a mut Tree,
    map: std::collections::HashMap<Xid, NodeId>,
}

impl<'a> Applier<'a> {
    pub(crate) fn new(tree: &'a mut Tree) -> Self {
        let map = tree.xid_map();
        Applier { tree, map }
    }

    /// Read access to the tree being mutated.
    pub(crate) fn tree(&self) -> &Tree {
        self.tree
    }

    pub(crate) fn lookup(&self, xid: Xid) -> Result<NodeId> {
        self.map
            .get(&xid)
            .copied()
            .ok_or_else(|| Error::DeltaMismatch(format!("no node with {xid}")))
    }

    fn insert_subtree(&mut self, parent: Xid, pos: usize, subtree: &Tree) -> Result<()> {
        let src_root = subtree
            .root()
            .ok_or_else(|| Error::DeltaMismatch("insert payload must be single-rooted".into()))?;
        let new_root = self.tree.copy_subtree_from(subtree, src_root);
        if parent.is_none() {
            if pos > self.tree.roots().len() {
                return Err(Error::DeltaMismatch(format!(
                    "root insert position {pos} out of range"
                )));
            }
            self.tree.insert_root(pos, new_root);
        } else {
            let p = self.lookup(parent)?;
            if pos > self.tree.node(p).children().len() {
                return Err(Error::DeltaMismatch(format!(
                    "insert position {pos} out of range under {parent}"
                )));
            }
            self.tree.insert_child(p, pos, new_root);
        }
        // Register all inserted nodes.
        let added: Vec<NodeId> = self.tree.descendants(new_root).collect();
        for n in added {
            let x = self.tree.node(n).xid;
            if !x.is_none() && self.map.insert(x, n).is_some() {
                return Err(Error::DeltaMismatch(format!("duplicate xid {x} on insert")));
            }
        }
        Ok(())
    }

    fn delete_subtree(
        &mut self,
        parent: Xid,
        pos: usize,
        expected_root_xid: Xid,
        stamp_parent: Option<Timestamp>,
        restore_parent_ts: Option<Timestamp>,
    ) -> Result<()> {
        let victim =
            if parent.is_none() {
                *self
                    .tree
                    .roots()
                    .get(pos)
                    .ok_or_else(|| Error::DeltaMismatch(format!("no root at {pos}")))?
            } else {
                let p = self.lookup(parent)?;
                *self.tree.node(p).children().get(pos).ok_or_else(|| {
                    Error::DeltaMismatch(format!("no child at {pos} under {parent}"))
                })?
            };
        if self.tree.node(victim).xid != expected_root_xid {
            return Err(Error::DeltaMismatch(format!(
                "delete expected {expected_root_xid} at {parent}/{pos}, found {}",
                self.tree.node(victim).xid
            )));
        }
        // Deregister subtree xids before the arena recycles them.
        let goners: Vec<Xid> =
            self.tree.descendants(victim).map(|n| self.tree.node(n).xid).collect();
        for x in goners {
            if !x.is_none() {
                self.map.remove(&x);
            }
        }
        self.tree.remove_subtree(victim);
        if !parent.is_none() {
            let p = self.lookup(parent)?;
            if let Some(ts) = stamp_parent {
                self.tree.node_mut(p).ts = ts;
            }
            if let Some(ts) = restore_parent_ts {
                self.tree.node_mut(p).ts = ts;
            }
        }
        Ok(())
    }

    pub(crate) fn apply(&mut self, op: &EditOp, to_ts: Timestamp) -> Result<()> {
        match op {
            EditOp::InsertSubtree { parent, pos, subtree } => {
                self.insert_subtree(*parent, *pos, subtree)
            }
            EditOp::DeleteSubtree { parent, pos, subtree, .. } => {
                let root_xid = subtree
                    .root()
                    .map(|r| subtree.node(r).xid)
                    .ok_or_else(|| Error::DeltaMismatch("delete payload empty".into()))?;
                self.delete_subtree(*parent, *pos, root_xid, Some(to_ts), None)
            }
            EditOp::UpdateText { xid, old, new, .. } => {
                let n = self.lookup(*xid)?;
                match self.tree.node(n).text() {
                    Some(t) if t == old => {}
                    other => {
                        return Err(Error::DeltaMismatch(format!(
                            "update of {xid}: expected text {old:?}, found {other:?}"
                        )))
                    }
                }
                self.tree.set_text(n, new.clone());
                self.tree.node_mut(n).ts = to_ts;
                Ok(())
            }
            EditOp::SetAttr { xid, key, old, new, .. } => {
                let n = self.lookup(*xid)?;
                let current = self.tree.node(n).attr(key).map(str::to_string);
                if current.as_deref() != old.as_deref() {
                    return Err(Error::DeltaMismatch(format!(
                        "setattr {key} on {xid}: expected {old:?}, found {current:?}"
                    )));
                }
                match new {
                    Some(v) => self.tree.set_attr(n, key.clone(), v.clone()),
                    None => {
                        self.tree.remove_attr(n, key);
                    }
                }
                self.tree.node_mut(n).ts = to_ts;
                Ok(())
            }
            EditOp::Move { xid, old_parent, old_pos, new_parent, new_pos, .. } => {
                self.do_move(*xid, *old_parent, *old_pos, *new_parent, *new_pos, Some(to_ts), None)
            }
        }
    }

    /// Applies the inverse of `op` (backward direction), restoring recorded
    /// old timestamps.
    fn apply_inverse(&mut self, op: &EditOp) -> Result<()> {
        match op {
            // Inverse of insert = delete; the parent's ts was not changed by
            // the insert, so neither stamp nor restore it.
            EditOp::InsertSubtree { parent, pos, subtree } => {
                let root_xid = subtree
                    .root()
                    .map(|r| subtree.node(r).xid)
                    .ok_or_else(|| Error::DeltaMismatch("insert payload empty".into()))?;
                self.delete_subtree(*parent, *pos, root_xid, None, None)
            }
            // Inverse of delete = insert + restore the parent's old ts.
            EditOp::DeleteSubtree { parent, pos, subtree, old_parent_ts } => {
                self.insert_subtree(*parent, *pos, subtree)?;
                if !parent.is_none() {
                    let p = self.lookup(*parent)?;
                    self.tree.node_mut(p).ts = *old_parent_ts;
                }
                Ok(())
            }
            EditOp::UpdateText { xid, old, new, old_ts } => {
                let n = self.lookup(*xid)?;
                match self.tree.node(n).text() {
                    Some(t) if t == new => {}
                    other => {
                        return Err(Error::DeltaMismatch(format!(
                            "backward update of {xid}: expected {new:?}, found {other:?}"
                        )))
                    }
                }
                self.tree.set_text(n, old.clone());
                self.tree.node_mut(n).ts = *old_ts;
                Ok(())
            }
            EditOp::SetAttr { xid, key, old, new, old_ts } => {
                let n = self.lookup(*xid)?;
                let current = self.tree.node(n).attr(key).map(str::to_string);
                if current.as_deref() != new.as_deref() {
                    return Err(Error::DeltaMismatch(format!(
                        "backward setattr {key} on {xid}: expected {new:?}, found {current:?}"
                    )));
                }
                match old {
                    Some(v) => self.tree.set_attr(n, key.clone(), v.clone()),
                    None => {
                        self.tree.remove_attr(n, key);
                    }
                }
                self.tree.node_mut(n).ts = *old_ts;
                Ok(())
            }
            EditOp::Move {
                xid,
                old_parent,
                old_pos,
                new_parent,
                new_pos,
                old_ts,
                old_parent_ts,
            } => {
                // Reverse: move back from new to old position, restoring
                // the node's and the old parent's timestamps.
                self.do_move(*xid, *new_parent, *new_pos, *old_parent, *old_pos, None, None)?;
                let n = self.lookup(*xid)?;
                self.tree.node_mut(n).ts = *old_ts;
                if !old_parent.is_none() {
                    let p = self.lookup(*old_parent)?;
                    self.tree.node_mut(p).ts = *old_parent_ts;
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_move(
        &mut self,
        xid: Xid,
        from_parent: Xid,
        from_pos: usize,
        to_parent: Xid,
        to_pos: usize,
        stamp: Option<Timestamp>,
        _unused: Option<Timestamp>,
    ) -> Result<()> {
        let n = self.lookup(xid)?;
        // Verify source location.
        let actual_parent =
            self.tree.node(n).parent().map(|p| self.tree.node(p).xid).unwrap_or(Xid::NONE);
        if actual_parent != from_parent || self.tree.position(n) != from_pos {
            return Err(Error::DeltaMismatch(format!(
                "move of {xid}: expected at {from_parent}/{from_pos}, found at {actual_parent}/{}",
                self.tree.position(n)
            )));
        }
        self.tree.detach(n);
        if to_parent.is_none() {
            if to_pos > self.tree.roots().len() {
                return Err(Error::DeltaMismatch("move target root position".into()));
            }
            self.tree.insert_root(to_pos, n);
        } else {
            let p = self.lookup(to_parent)?;
            if to_pos > self.tree.node(p).children().len() {
                return Err(Error::DeltaMismatch("move target position".into()));
            }
            self.tree.insert_child(p, to_pos, n);
        }
        if let Some(ts) = stamp {
            self.tree.node_mut(n).ts = ts;
            if !from_parent.is_none() {
                let p = self.lookup(from_parent)?;
                self.tree.node_mut(p).ts = ts;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::parse::parse_document;
    use txdb_xml::serialize::to_string;

    /// Parses and assigns XIDs 1..n in document order, direct ts = `ts0`.
    fn tree_with_xids(src: &str, ts0: u64) -> Tree {
        let mut t = parse_document(src).unwrap();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(i as u64 + 1);
            t.node_mut(*id).ts = Timestamp::from_micros(ts0);
        }
        t
    }

    fn payload(src: &str, first_xid: u64, ts: u64) -> Tree {
        let mut t = parse_document(src).unwrap();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(first_xid + i as u64);
            t.node_mut(*id).ts = Timestamp::from_micros(ts);
        }
        t
    }

    fn delta(ops: Vec<EditOp>) -> Delta {
        Delta {
            from_version: VersionId(0),
            to_version: VersionId(1),
            from_ts: Timestamp::from_micros(100),
            to_ts: Timestamp::from_micros(200),
            ops,
        }
    }

    #[test]
    fn insert_forward_and_backward() {
        // <a><b/></a>  + insert <c>x</c> at pos 1
        let mut t = tree_with_xids("<a><b/></a>", 100);
        let orig = to_string(&t);
        let d = delta(vec![EditOp::InsertSubtree {
            parent: Xid(1),
            pos: 1,
            subtree: payload("<c>x</c>", 10, 200),
        }]);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><b/><c>x</c></a>");
        t.check_consistency().unwrap();
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), orig);
        t.check_consistency().unwrap();
    }

    #[test]
    fn delete_forward_and_backward_restores_ts() {
        let mut t = tree_with_xids("<a><b/><c>x</c></a>", 100);
        let root = t.root().unwrap();
        let c = t.node(root).children()[1];
        let sub = t.extract_subtree(c);
        let d = delta(vec![EditOp::DeleteSubtree {
            parent: Xid(1),
            pos: 1,
            subtree: sub,
            old_parent_ts: Timestamp::from_micros(100),
        }]);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><b/></a>");
        // Parent stamped by the delete.
        assert_eq!(t.node(t.root().unwrap()).ts, Timestamp::from_micros(200));
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><b/><c>x</c></a>");
        assert_eq!(t.node(t.root().unwrap()).ts, Timestamp::from_micros(100));
        // Restored subtree has its xid back.
        assert!(t.find_xid(Xid(3)).is_some());
    }

    #[test]
    fn update_text_roundtrip() {
        let mut t = tree_with_xids("<p><price>15</price></p>", 100);
        let d = delta(vec![EditOp::UpdateText {
            xid: Xid(3),
            old: "15".into(),
            new: "18".into(),
            old_ts: Timestamp::from_micros(100),
        }]);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<p><price>18</price></p>");
        let n = t.find_xid(Xid(3)).unwrap();
        assert_eq!(t.node(n).ts, Timestamp::from_micros(200));
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<p><price>15</price></p>");
        let n = t.find_xid(Xid(3)).unwrap();
        assert_eq!(t.node(n).ts, Timestamp::from_micros(100));
    }

    #[test]
    fn update_text_mismatch_detected() {
        let mut t = tree_with_xids("<p>xx</p>", 100);
        let d = delta(vec![EditOp::UpdateText {
            xid: Xid(2),
            old: "yy".into(),
            new: "zz".into(),
            old_ts: Timestamp::ZERO,
        }]);
        assert!(matches!(d.apply_forward(&mut t), Err(Error::DeltaMismatch(_))));
    }

    #[test]
    fn setattr_set_replace_remove() {
        let mut t = tree_with_xids(r#"<a k="1"/>"#, 100);
        let d = delta(vec![
            EditOp::SetAttr {
                xid: Xid(1),
                key: "k".into(),
                old: Some("1".into()),
                new: Some("2".into()),
                old_ts: Timestamp::from_micros(100),
            },
            EditOp::SetAttr {
                xid: Xid(1),
                key: "m".into(),
                old: None,
                new: Some("9".into()),
                old_ts: Timestamp::from_micros(200),
            },
        ]);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), r#"<a k="2" m="9"/>"#);
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), r#"<a k="1"/>"#);
        let n = t.root().unwrap();
        assert_eq!(t.node(n).ts, Timestamp::from_micros(100));
    }

    #[test]
    fn move_within_parent_and_back() {
        let mut t = tree_with_xids("<a><b/><c/><d/></a>", 100);
        let d = delta(vec![EditOp::Move {
            xid: Xid(4), // <d/>
            old_parent: Xid(1),
            old_pos: 2,
            new_parent: Xid(1),
            new_pos: 0,
            old_ts: Timestamp::from_micros(100),
            old_parent_ts: Timestamp::from_micros(100),
        }]);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><d/><b/><c/></a>");
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><b/><c/><d/></a>");
    }

    #[test]
    fn move_across_parents() {
        let mut t = tree_with_xids("<a><b><x/></b><c/></a>", 100);
        // move <x/> (xid 3) from b to c
        let d = delta(vec![EditOp::Move {
            xid: Xid(3),
            old_parent: Xid(2),
            old_pos: 0,
            new_parent: Xid(4),
            new_pos: 0,
            old_ts: Timestamp::from_micros(100),
            old_parent_ts: Timestamp::from_micros(100),
        }]);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><b/><c><x/></c></a>");
        // Old parent stamped.
        let b = t.find_xid(Xid(2)).unwrap();
        assert_eq!(t.node(b).ts, Timestamp::from_micros(200));
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><b><x/></b><c/></a>");
        let b = t.find_xid(Xid(2)).unwrap();
        assert_eq!(t.node(b).ts, Timestamp::from_micros(100));
    }

    #[test]
    fn multi_op_script_order_sensitivity() {
        // Two deletes under the same parent; positions recorded at
        // mutation time must replay exactly.
        let mut t = tree_with_xids("<a><b/><c/><d/></a>", 100);
        let root = t.root().unwrap();
        let b = t.node(root).children()[0];
        let d_ = t.node(root).children()[2];
        let sub_b = t.extract_subtree(b);
        let sub_d = t.extract_subtree(d_);
        let d = delta(vec![
            EditOp::DeleteSubtree {
                parent: Xid(1),
                pos: 0,
                subtree: sub_b,
                old_parent_ts: Timestamp::from_micros(100),
            },
            // After deleting b, d is now at position 1.
            EditOp::DeleteSubtree {
                parent: Xid(1),
                pos: 1,
                subtree: sub_d,
                old_parent_ts: Timestamp::from_micros(200),
            },
        ]);
        let orig = to_string(&t);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a><c/></a>");
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), orig);
        assert_eq!(t.node(t.root().unwrap()).ts, Timestamp::from_micros(100));
    }

    #[test]
    fn root_level_insert_delete() {
        let mut t = tree_with_xids("<a/>", 100);
        let d = delta(vec![EditOp::InsertSubtree {
            parent: Xid::NONE,
            pos: 1,
            subtree: payload("<b/>", 50, 200),
        }]);
        d.apply_forward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a/><b/>");
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), "<a/>");
    }

    #[test]
    fn empty_delta_noop() {
        let mut t = tree_with_xids("<a><b/></a>", 100);
        let before = to_string(&t);
        let d = Delta::empty(VersionId(3), Timestamp::from_micros(1), Timestamp::from_micros(2));
        assert!(d.is_empty());
        assert_eq!(d.to_version, VersionId(4));
        d.apply_forward(&mut t).unwrap();
        d.apply_backward(&mut t).unwrap();
        assert_eq!(to_string(&t), before);
    }

    #[test]
    fn touched_xids_collects_and_dedups() {
        let d = delta(vec![
            EditOp::UpdateText {
                xid: Xid(3),
                old: "a".into(),
                new: "b".into(),
                old_ts: Timestamp::ZERO,
            },
            EditOp::Move {
                xid: Xid(3),
                old_parent: Xid(1),
                old_pos: 0,
                new_parent: Xid(2),
                new_pos: 0,
                old_ts: Timestamp::ZERO,
                old_parent_ts: Timestamp::ZERO,
            },
        ]);
        assert_eq!(d.touched_xids(), vec![Xid(1), Xid(2), Xid(3)]);
    }

    #[test]
    fn weights_positive() {
        let d = delta(vec![EditOp::InsertSubtree {
            parent: Xid::NONE,
            pos: 0,
            subtree: payload("<b>hello</b>", 5, 1),
        }]);
        assert!(d.weight() > 48);
    }

    #[test]
    fn delete_wrong_target_detected() {
        let mut t = tree_with_xids("<a><b/></a>", 100);
        let sub = payload("<z/>", 99, 1);
        let d = delta(vec![EditOp::DeleteSubtree {
            parent: Xid(1),
            pos: 0,
            subtree: sub,
            old_parent_ts: Timestamp::ZERO,
        }]);
        assert!(d.apply_forward(&mut t).is_err());
    }
}
