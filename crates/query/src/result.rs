//! Query results and their XML rendering.
//!
//! §5: "the results of an outer query is delivered as default in a
//! document with enclosing tags named `results`. Each result from the
//! SELECT expression is delivered in one element with tags named
//! `result`."

use txdb_base::Timestamp;
use txdb_xml::serialize::escape_text;

use crate::exec::{ExecStats, ExplainNode};

/// One output value.
#[derive(Clone, Debug, PartialEq)]
pub enum OutValue {
    /// Absent value (e.g. `PREVIOUS(R)` of the first version).
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Num(f64),
    /// String.
    Str(String),
    /// Timestamp.
    Time(Timestamp),
    /// Serialized XML (element results, diff edit scripts).
    Xml(String),
}

impl OutValue {
    /// Renders the value into a `<result>` body.
    fn render(&self, out: &mut String) {
        match self {
            OutValue::Null => {}
            OutValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            OutValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            OutValue::Str(s) => escape_text(s, out),
            OutValue::Time(t) => out.push_str(&t.to_string()),
            OutValue::Xml(x) => out.push_str(x),
        }
    }

    /// A plain-text rendering (for examples and test assertions).
    pub fn as_text(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

/// A complete query result.
#[derive(Debug)]
pub struct QueryResult {
    /// Output rows, one `Vec` per row with one value per select item.
    pub rows: Vec<Vec<OutValue>>,
    /// Execution statistics.
    pub stats: ExecStats,
    /// The annotated plan tree, when the query ran with
    /// [`crate::QueryRequest::explain`] (`EXPLAIN ANALYZE`).
    pub explain: Option<ExplainNode>,
}

impl QueryResult {
    /// The §5 result document: `<results><result>…</result>…</results>`.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<results>");
        for row in &self.rows {
            out.push_str("<result>");
            for v in row {
                v.render(&mut out);
            }
            out.push_str("</result>");
        }
        out.push_str("</results>");
        out
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_envelope() {
        let r = QueryResult {
            rows: vec![
                vec![
                    OutValue::Time(Timestamp::from_date(2001, 1, 15)),
                    OutValue::Xml("<price>15</price>".into()),
                ],
                vec![OutValue::Str("a<b".into()), OutValue::Num(3.0)],
                vec![OutValue::Null],
            ],
            stats: ExecStats::default(),
            explain: None,
        };
        assert_eq!(
            r.to_xml(),
            "<results><result>2001-01-15<price>15</price></result>\
             <result>a&lt;b3</result><result></result></results>"
        );
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn number_rendering() {
        assert_eq!(OutValue::Num(15.0).as_text(), "15");
        assert_eq!(OutValue::Num(12.5).as_text(), "12.5");
        assert_eq!(OutValue::Bool(true).as_text(), "true");
    }
}
