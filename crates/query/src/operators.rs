//! The streaming Volcano executor: pull-based operators over the plan.
//!
//! [`open_stream`] lowers a [`Plan`] into a tree of [`Operator`]s —
//! index/tree scans at the leaves, nested-loop join, filter, project or
//! aggregate, and an optional `LIMIT` early-exit at the root — and wraps
//! it in a [`RowStream`], a cursor the caller pulls one row at a time.
//! Nothing is materialised ahead of demand: index scans drive the lazy
//! [`MatchCursor`] postings cursors of the FTI, so a `LIMIT 1` query
//! stops after the first posting chains through, and peak memory is
//! bounded by the operator buffers (inner join sides, the active
//! document's candidates, the reconstruction cache) rather than by the
//! result size. Each operator meters itself — wall time, rows, §6 cost
//! counters — and [`Operator::explain_node`] reads the `EXPLAIN ANALYZE`
//! tree straight off the live operators, so the explain tree maps
//! one-to-one onto what actually ran.

use std::collections::{HashSet, VecDeque};
use std::rc::Rc;
use std::time::{Duration, Instant};

use txdb_base::obs::{Span, TraceContext, TraceValue};
use txdb_base::{DocId, Error, Result, Timestamp, VersionId};
use txdb_core::{Database, MatchCursor};
use txdb_storage::repo::VersionKind;
use txdb_xml::path::Path;
use txdb_xml::pattern::PatternTree;

use crate::ast::{Expr, Func};
use crate::exec::{
    eval, mode_label, node_text, to_out, truthy, Bound, Ctx, ExecStats, ExplainNode, Value,
};
use crate::plan::{DocSel, Plan, ScanMode, SourcePlan, Strategy};
use crate::result::OutValue;

/// One row flowing through the operator tree: the joined variable
/// bindings and, above the projection, the evaluated output values.
#[derive(Clone, Debug, Default)]
pub struct Row {
    pub(crate) binds: Vec<Bound>,
    pub(crate) values: Vec<OutValue>,
}

impl Row {
    /// The projected output values (empty below the projection).
    pub fn values(&self) -> &[OutValue] {
        &self.values
    }

    /// Consumes the row into its output values.
    pub fn into_values(self) -> Vec<OutValue> {
        self.values
    }
}

/// A pull-based (Volcano) operator. `open` prepares state, `next` yields
/// one row at a time until `None`, `close` releases resources. After the
/// tree has run, [`Operator::explain_node`] reports the node's own
/// `EXPLAIN ANALYZE` annotation (inclusive of its inputs; the stream
/// post-processes the tree into exclusive per-stage figures).
pub trait Operator {
    /// Prepares the operator (and its inputs) for pulling.
    fn open(&mut self) -> Result<()>;
    /// Produces the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;
    /// Releases operator state.
    fn close(&mut self);
    /// This node's annotated explain tree (timings inclusive of inputs).
    fn explain_node(&self) -> ExplainNode;
    /// Rows/candidates currently buffered in this operator *and* its
    /// inputs — the bounded-memory figure behind `exec.peak_rows_buffered`.
    fn buffered(&self) -> usize {
        0
    }
}

/// Per-operator instrumentation: wall time and §6 cost counters
/// accumulated across `open`/`next` calls.
struct Meter {
    enabled: bool,
    elapsed: Duration,
    rows: usize,
    recon: u64,
    deltas: u64,
    hits: u64,
    misses: u64,
}

/// Snapshot taken at the start of a metered window.
struct MeterWindow {
    t0: Instant,
    stats0: ExecStats,
    vc0: (u64, u64),
}

impl Meter {
    fn new(enabled: bool) -> Meter {
        Meter { enabled, elapsed: Duration::ZERO, rows: 0, recon: 0, deltas: 0, hits: 0, misses: 0 }
    }

    /// Opens a metering window (no-op without `EXPLAIN ANALYZE`).
    fn begin(&self, ctx: &Ctx<'_>) -> Option<MeterWindow> {
        if !self.enabled {
            return None;
        }
        let (h, m, _, _, _) = ctx.db.store().vcache_stats().snapshot();
        Some(MeterWindow { t0: Instant::now(), stats0: *ctx.stats.borrow(), vc0: (h, m) })
    }

    /// Closes the window, attributing the deltas to this operator.
    fn end(&mut self, w: Option<MeterWindow>, ctx: &Ctx<'_>, emitted: usize) {
        self.rows += emitted;
        let Some(w) = w else { return };
        self.elapsed += w.t0.elapsed();
        let s1 = *ctx.stats.borrow();
        self.recon += (s1.reconstructions - w.stats0.reconstructions) as u64;
        self.deltas += (s1.deltas_applied - w.stats0.deltas_applied) as u64;
        let (h1, m1, _, _, _) = ctx.db.store().vcache_stats().snapshot();
        self.hits += h1.saturating_sub(w.vc0.0);
        self.misses += m1.saturating_sub(w.vc0.1);
    }

    /// Builds the node skeleton with the standard counter set.
    fn node(&self, label: String) -> ExplainNode {
        ExplainNode {
            label,
            elapsed_us: self.elapsed.as_micros() as u64,
            rows: self.rows,
            counters: vec![
                ("reconstructions", self.recon),
                ("deltas_applied", self.deltas),
                ("cache_hits", self.hits),
                ("cache_misses", self.misses),
            ],
            children: Vec::new(),
        }
    }
}

/// Scan over a source whose document doesn't exist: always empty.
struct EmptyScanOp {
    label: String,
    meter: Meter,
}

impl Operator for EmptyScanOp {
    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(None)
    }

    fn close(&mut self) {}

    fn explain_node(&self) -> ExplainNode {
        let mut node = self.meter.node(self.label.clone());
        node.counters.push(("fti_lookups", 0));
        node.counters.push(("postings", 0));
        node
    }
}

/// Index scan leaf: drives a lazy [`MatchCursor`] over the FTI postings
/// (§7.3.1/7.3.2), binding the source variable to each match. Dedups on
/// `(doc, version, xid)` exactly like the materialising executor did;
/// because the cursor emits in `(doc, version)` order the seen-set can be
/// reset per version, keeping it bounded by one version's bindings.
struct IndexScanOp<'db> {
    ctx: Rc<Ctx<'db>>,
    var: String,
    docs: Option<DocId>,
    mode: ScanMode,
    pattern: PatternTree,
    label: String,
    var_idx: usize,
    cursor: Option<MatchCursor<'db>>,
    last_key: Option<(DocId, VersionId)>,
    seen: HashSet<txdb_base::Xid>,
    meter: Meter,
}

impl<'db> Operator for IndexScanOp<'db> {
    fn open(&mut self) -> Result<()> {
        let w = self.meter.begin(&self.ctx);
        // The variable binds to the pattern node carrying it.
        self.var_idx = self
            .pattern
            .nodes()
            .iter()
            .position(|n| n.var.as_deref() == Some(self.var.as_str()))
            .ok_or_else(|| Error::QueryInvalid("pattern lost its variable".into()))?;
        let db: &'db Database = self.ctx.db;
        let cursor = match self.mode {
            ScanMode::Current => db.pattern_cursor(self.docs, &self.pattern)?,
            ScanMode::At(t) => db.tpattern_cursor(self.docs, &self.pattern, t)?,
            ScanMode::Every(iv) => db.tpattern_cursor_all_between(self.docs, &self.pattern, iv)?,
        };
        self.cursor = Some(cursor);
        self.meter.end(w, &self.ctx, 0);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let w = self.meter.begin(&self.ctx);
        let Some(cursor) = self.cursor.as_mut() else {
            self.meter.end(w, &self.ctx, 0);
            return Ok(None);
        };
        while let Some(m) = cursor.try_next()? {
            let eid = m.nodes[self.var_idx];
            let key = (m.doc, m.version);
            if self.last_key != Some(key) {
                self.last_key = Some(key);
                self.seen.clear();
            }
            if self.seen.insert(eid.xid) {
                let row = Row {
                    binds: vec![Bound {
                        var: self.var.clone(),
                        teid: eid.at(m.ts),
                        doc: m.doc,
                        version: m.version,
                    }],
                    values: Vec::new(),
                };
                self.meter.end(w, &self.ctx, 1);
                return Ok(Some(row));
            }
        }
        self.meter.end(w, &self.ctx, 0);
        Ok(None)
    }

    fn close(&mut self) {
        self.cursor = None;
        self.seen.clear();
    }

    fn explain_node(&self) -> ExplainNode {
        let mut node = self.meter.node(self.label.clone());
        let stats = self.cursor.as_ref().map(|c| c.stats()).unwrap_or_default();
        node.counters.push(("fti_lookups", stats.fti_lookups as u64));
        node.counters.push(("postings", stats.postings as u64));
        node
    }

    fn buffered(&self) -> usize {
        self.cursor.as_ref().map_or(0, |c| c.buffered()) + self.seen.len()
    }
}

/// Tree-scan leaf: resolves the `(doc, version)` targets up front (cheap
/// metadata only), then reconstructs and walks one version at a time.
/// Bindings of the version under the cursor are queued; the queue never
/// holds more than one version's worth of bindings.
struct TreeScanOp<'db> {
    ctx: Rc<Ctx<'db>>,
    var: String,
    docs: Option<DocId>,
    mode: ScanMode,
    path: Path,
    /// Warm the materialized-version cache for multi-version scans. Off
    /// under `LIMIT`, where eager reconstruction would defeat early exit.
    prefetch: bool,
    label: String,
    targets: Vec<(DocId, VersionId, Timestamp)>,
    t_idx: usize,
    pending: VecDeque<Bound>,
    meter: Meter,
}

impl Operator for TreeScanOp<'_> {
    fn open(&mut self) -> Result<()> {
        let w = self.meter.begin(&self.ctx);
        let docs: Vec<DocId> = match self.docs {
            Some(d) => vec![d],
            None => self.ctx.db.store().list()?.iter().map(|(d, _)| *d).collect(),
        };
        for doc in docs {
            let entries = self.ctx.db.store().versions(doc)?;
            match self.mode {
                ScanMode::Current => {
                    if let Some(e) = entries.last() {
                        if e.kind == VersionKind::Content {
                            self.targets.push((doc, e.version, e.ts));
                        }
                    }
                }
                ScanMode::At(t) => {
                    if let Some(v) = self.ctx.db.store().version_at(doc, t)? {
                        self.targets.push((doc, v, entries[v.0 as usize].ts));
                    }
                }
                ScanMode::Every(iv) => self.targets.extend(
                    entries
                        .iter()
                        .filter(|e| e.kind == VersionKind::Content && iv.contains(e.ts))
                        .map(|e| (doc, e.version, e.ts)),
                ),
            }
        }
        if self.prefetch && self.targets.len() > 1 {
            let pairs: Vec<(DocId, VersionId)> =
                self.targets.iter().map(|&(d, v, _)| (d, v)).collect();
            self.ctx.db.prefetch_versions(&pairs);
        }
        self.meter.end(w, &self.ctx, 0);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let w = self.meter.begin(&self.ctx);
        loop {
            if let Some(b) = self.pending.pop_front() {
                self.meter.end(w, &self.ctx, 1);
                return Ok(Some(Row { binds: vec![b], values: Vec::new() }));
            }
            let Some(&(doc, v, ts)) = self.targets.get(self.t_idx) else {
                self.meter.end(w, &self.ctx, 0);
                return Ok(None);
            };
            self.t_idx += 1;
            let cached = self.ctx.tree(doc, v)?;
            for n in self.path.eval_roots(&cached.tree) {
                let xid = cached.tree.node(n).xid;
                self.pending.push_back(Bound {
                    var: self.var.clone(),
                    teid: txdb_base::Eid::new(doc, xid).at(ts),
                    doc,
                    version: v,
                });
            }
        }
    }

    fn close(&mut self) {
        self.targets.clear();
        self.pending.clear();
    }

    fn explain_node(&self) -> ExplainNode {
        let mut node = self.meter.node(self.label.clone());
        node.counters.push(("fti_lookups", 0));
        node.counters.push(("postings", 0));
        node
    }

    fn buffered(&self) -> usize {
        self.targets.len().saturating_sub(self.t_idx) + self.pending.len()
    }
}

/// Nested-loop join over the cartesian product of the sources. Streams
/// the **first** source (the outer loop) and materialises only the inner
/// sides — for single-source queries (the common case) nothing is
/// buffered at all and rows flow straight through.
struct JoinOp<'db> {
    ctx: Rc<Ctx<'db>>,
    sources: Vec<Box<dyn Operator + 'db>>,
    /// Materialised rows of sources `1..` (inner loops).
    inners: Vec<Vec<Row>>,
    /// Odometer over the inner sides.
    idx: Vec<usize>,
    left: Option<Row>,
    exhausted: bool,
    meter: Meter,
}

impl Operator for JoinOp<'_> {
    fn open(&mut self) -> Result<()> {
        for s in &mut self.sources {
            s.open()?;
        }
        let w = self.meter.begin(&self.ctx);
        for s in self.sources.iter_mut().skip(1) {
            let mut rows = Vec::new();
            while let Some(r) = s.next()? {
                rows.push(r);
            }
            self.inners.push(rows);
        }
        // The join is a cartesian product: any empty source empties it.
        self.exhausted = self.inners.iter().any(Vec::is_empty);
        self.idx = vec![0; self.inners.len()];
        self.meter.end(w, &self.ctx, 0);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let w = self.meter.begin(&self.ctx);
        if self.exhausted {
            self.meter.end(w, &self.ctx, 0);
            return Ok(None);
        }
        if self.left.is_none() {
            self.left = self.sources[0].next()?;
            self.idx.iter_mut().for_each(|i| *i = 0);
        }
        let Some(left) = self.left.as_ref() else {
            self.exhausted = true;
            self.meter.end(w, &self.ctx, 0);
            return Ok(None);
        };
        let mut binds = left.binds.clone();
        for (k, inner) in self.inners.iter().enumerate() {
            binds.extend(inner[self.idx[k]].binds.iter().cloned());
        }
        self.ctx.stats.borrow_mut().rows_scanned += 1;
        // Advance the odometer; when it wraps, move the outer cursor.
        let mut pos = self.inners.len();
        loop {
            if pos == 0 {
                self.left = None;
                break;
            }
            pos -= 1;
            self.idx[pos] += 1;
            if self.idx[pos] < self.inners[pos].len() {
                break;
            }
            self.idx[pos] = 0;
        }
        self.meter.end(w, &self.ctx, 1);
        Ok(Some(Row { binds, values: Vec::new() }))
    }

    fn close(&mut self) {
        for s in &mut self.sources {
            s.close();
        }
        self.inners.clear();
        self.left = None;
    }

    fn explain_node(&self) -> ExplainNode {
        let n = self.sources.len();
        let label = format!("nested-loop join ({n} source{})", if n == 1 { "" } else { "s" });
        let mut node = self.meter.node(label);
        node.children = self.sources.iter().map(|s| s.explain_node()).collect();
        node
    }

    fn buffered(&self) -> usize {
        self.inners.iter().map(Vec::len).sum::<usize>()
            + self.sources.iter().map(|s| s.buffered()).sum::<usize>()
    }
}

/// Filter: pulls from its input until a row passes the predicate.
struct FilterOp<'db> {
    ctx: Rc<Ctx<'db>>,
    input: Box<dyn Operator + 'db>,
    pred: Expr,
    meter: Meter,
}

impl Operator for FilterOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            let row = self.input.next()?;
            let w = self.meter.begin(&self.ctx);
            let Some(row) = row else {
                self.meter.end(w, &self.ctx, 0);
                return Ok(None);
            };
            if truthy(&eval(&self.ctx, &self.pred, &row.binds)?) {
                self.meter.end(w, &self.ctx, 1);
                return Ok(Some(row));
            }
            self.meter.end(w, &self.ctx, 0);
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn explain_node(&self) -> ExplainNode {
        let mut node = self.meter.node("filter".to_string());
        node.children.push(self.input.explain_node());
        node
    }

    fn buffered(&self) -> usize {
        self.input.buffered()
    }
}

/// Projection: evaluates the select list per row; `DISTINCT` keeps a
/// seen-set of rendered rows (the only unbounded buffer, and only under
/// `DISTINCT`, counted in [`Operator::buffered`]).
struct ProjectOp<'db> {
    ctx: Rc<Ctx<'db>>,
    input: Box<dyn Operator + 'db>,
    items: Vec<Expr>,
    distinct: bool,
    seen: HashSet<String>,
    meter: Meter,
}

impl Operator for ProjectOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            let row = self.input.next()?;
            let w = self.meter.begin(&self.ctx);
            let Some(mut row) = row else {
                self.meter.end(w, &self.ctx, 0);
                return Ok(None);
            };
            let mut values = Vec::with_capacity(self.items.len());
            for item in &self.items {
                values.push(to_out(&self.ctx, eval(&self.ctx, item, &row.binds)?));
            }
            if self.distinct && !self.seen.insert(format!("{values:?}")) {
                self.meter.end(w, &self.ctx, 0);
                continue;
            }
            row.values = values;
            self.meter.end(w, &self.ctx, 1);
            return Ok(Some(row));
        }
    }

    fn close(&mut self) {
        self.input.close();
        self.seen.clear();
    }

    fn explain_node(&self) -> ExplainNode {
        let stage = if self.distinct { "project distinct" } else { "project" };
        let n = self.items.len();
        let label = format!("{stage} ({n} item{})", if n == 1 { "" } else { "s" });
        let mut node = self.meter.node(label);
        node.children.push(self.input.explain_node());
        node
    }

    fn buffered(&self) -> usize {
        self.input.buffered() + self.seen.len()
    }
}

/// One running aggregate accumulator.
enum Acc {
    /// `COUNT(*)` / `COUNT(R)`: row count, no document access (the
    /// paper's Q2 point — the scan already counted).
    CountRows { n: usize },
    /// `COUNT(expr)`: non-null evaluations.
    CountExpr { arg: Expr, n: usize },
    /// `SUM(expr)`.
    Sum { arg: Expr, sum: f64 },
}

/// Aggregation: drains its input once, folding every row into the
/// accumulators, then emits exactly one row (even over empty input).
struct AggregateOp<'db> {
    ctx: Rc<Ctx<'db>>,
    input: Box<dyn Operator + 'db>,
    items: Vec<Expr>,
    accs: Vec<Acc>,
    done: bool,
    meter: Meter,
}

impl Operator for AggregateOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        for item in &self.items {
            let acc = match item {
                Expr::Func { name: Func::Count, args } => {
                    if matches!(args[0], Expr::Star | Expr::Var(_)) {
                        Acc::CountRows { n: 0 }
                    } else {
                        Acc::CountExpr { arg: args[0].clone(), n: 0 }
                    }
                }
                Expr::Func { name: Func::Sum, args } => Acc::Sum { arg: args[0].clone(), sum: 0.0 },
                other => {
                    return Err(Error::QueryInvalid(format!(
                        "select item is not a supported aggregate: {other:?}"
                    )))
                }
            };
            self.accs.push(acc);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        loop {
            let row = self.input.next()?;
            let w = self.meter.begin(&self.ctx);
            let Some(row) = row else {
                self.done = true;
                let values = self
                    .accs
                    .iter()
                    .map(|acc| match acc {
                        Acc::CountRows { n } | Acc::CountExpr { n, .. } => OutValue::Num(*n as f64),
                        Acc::Sum { sum, .. } => OutValue::Num(*sum),
                    })
                    .collect();
                self.meter.end(w, &self.ctx, 1);
                return Ok(Some(Row { binds: Vec::new(), values }));
            };
            for acc in &mut self.accs {
                match acc {
                    Acc::CountRows { n } => *n += 1,
                    Acc::CountExpr { arg, n } => match eval(&self.ctx, arg, &row.binds)? {
                        Value::Null => {}
                        Value::Nodes(nodes) => *n += nodes.len().min(1),
                        _ => *n += 1,
                    },
                    Acc::Sum { arg, sum } => match eval(&self.ctx, arg, &row.binds)? {
                        Value::Num(x) => *sum += x,
                        Value::Str(s) => *sum += s.trim().parse::<f64>().unwrap_or(0.0),
                        Value::Nodes(nodes) => {
                            for nv in &nodes {
                                *sum += node_text(nv).trim().parse::<f64>().unwrap_or(0.0);
                            }
                        }
                        _ => {}
                    },
                }
            }
            self.meter.end(w, &self.ctx, 0);
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn explain_node(&self) -> ExplainNode {
        let n = self.items.len();
        let label = format!("aggregate ({n} item{})", if n == 1 { "" } else { "s" });
        let mut node = self.meter.node(label);
        node.children.push(self.input.explain_node());
        node
    }

    fn buffered(&self) -> usize {
        self.input.buffered()
    }
}

/// `LIMIT n`: stops pulling its input after `n` rows — the early-exit
/// that lets a `LIMIT 1` over a huge history finish after one posting
/// chain instead of a full materialisation.
struct LimitOp<'db> {
    ctx: Rc<Ctx<'db>>,
    input: Box<dyn Operator + 'db>,
    n: usize,
    emitted: usize,
    meter: Meter,
}

impl Operator for LimitOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.emitted >= self.n {
            return Ok(None);
        }
        let row = self.input.next()?;
        let w = self.meter.begin(&self.ctx);
        let emitted = usize::from(row.is_some());
        self.emitted += emitted;
        self.meter.end(w, &self.ctx, emitted);
        Ok(row)
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn explain_node(&self) -> ExplainNode {
        let mut node = self.meter.node(format!("limit {}", self.n));
        node.children.push(self.input.explain_node());
        node
    }

    fn buffered(&self) -> usize {
        self.input.buffered()
    }
}

/// Lowers one `FROM` source to its scan leaf.
fn lower_scan<'db>(
    ctx: &Rc<Ctx<'db>>,
    s: &SourcePlan,
    prefetch: bool,
    explain: bool,
) -> Box<dyn Operator + 'db> {
    let docs = match s.docs {
        DocSel::Missing => {
            return Box::new(EmptyScanOp {
                label: format!("scan {}: no such document", s.var),
                meter: Meter::new(explain),
            })
        }
        DocSel::One(d) => Some(d),
        DocSel::All => None,
    };
    match &s.strategy {
        Strategy::Index(pattern) => {
            let op = match s.mode {
                ScanMode::Current => "PatternScan",
                ScanMode::At(_) => "TPatternScan",
                ScanMode::Every(_) => "TPatternScanAll",
            };
            Box::new(IndexScanOp {
                ctx: ctx.clone(),
                var: s.var.clone(),
                docs,
                mode: s.mode,
                pattern: pattern.clone(),
                label: format!("index scan {}: {op}{}", s.var, mode_label(&s.mode)),
                var_idx: 0,
                cursor: None,
                last_key: None,
                seen: HashSet::new(),
                meter: Meter::new(explain),
            })
        }
        Strategy::Tree(path) => Box::new(TreeScanOp {
            ctx: ctx.clone(),
            var: s.var.clone(),
            docs,
            mode: s.mode,
            path: path.clone(),
            prefetch,
            label: format!("tree scan {}: reconstruct{}", s.var, mode_label(&s.mode)),
            targets: Vec::new(),
            t_idx: 0,
            pending: VecDeque::new(),
            meter: Meter::new(explain),
        }),
    }
}

/// Lowers a plan to its operator tree:
/// `scans → join → [filter] → project|aggregate → [limit]`.
fn lower<'db>(ctx: &Rc<Ctx<'db>>, plan: &Plan, explain: bool) -> Box<dyn Operator + 'db> {
    // Under LIMIT the tree scan must not eagerly reconstruct versions the
    // query will never pull.
    let prefetch = plan.limit.is_none();
    let sources: Vec<Box<dyn Operator + 'db>> =
        plan.sources.iter().map(|s| lower_scan(ctx, s, prefetch, explain)).collect();
    let mut root: Box<dyn Operator + 'db> = Box::new(JoinOp {
        ctx: ctx.clone(),
        sources,
        inners: Vec::new(),
        idx: Vec::new(),
        left: None,
        exhausted: false,
        meter: Meter::new(explain),
    });
    if let Some(pred) = &plan.filter {
        root = Box::new(FilterOp {
            ctx: ctx.clone(),
            input: root,
            pred: pred.clone(),
            meter: Meter::new(explain),
        });
    }
    root = if plan.aggregate {
        Box::new(AggregateOp {
            ctx: ctx.clone(),
            input: root,
            items: plan.select.clone(),
            accs: Vec::new(),
            done: false,
            meter: Meter::new(explain),
        })
    } else {
        Box::new(ProjectOp {
            ctx: ctx.clone(),
            input: root,
            items: plan.select.clone(),
            distinct: plan.distinct,
            seen: HashSet::new(),
            meter: Meter::new(explain),
        })
    };
    if let Some(n) = plan.limit {
        root = Box::new(LimitOp {
            ctx: ctx.clone(),
            input: root,
            n,
            emitted: 0,
            meter: Meter::new(explain),
        });
    }
    root
}

/// Rewrites an inclusive explain tree (each node's figures cover its
/// whole subtree) into exclusive per-stage figures by subtracting the
/// children's (still-inclusive) totals before recursing.
fn make_exclusive(node: &mut ExplainNode) {
    let child_us: u64 = node.children.iter().map(|c| c.elapsed_us).sum();
    node.elapsed_us = node.elapsed_us.saturating_sub(child_us);
    for i in 0..node.counters.len() {
        let (name, own) = node.counters[i];
        let child_sum: u64 = node.children.iter().map(|c| c.counter_total(name)).sum();
        node.counters[i] = (name, own.saturating_sub(child_sum));
    }
    for c in &mut node.children {
        make_exclusive(c);
    }
}

/// Records a finished (exclusive) explain tree as trace spans under
/// `trace` — one span per operator, durations re-inflated to inclusive
/// (own + children) so a child never outlasts its parent and the tree's
/// exclusive times still sum to the metered total.
fn record_operator_spans(trace: &TraceContext, node: &ExplainNode) {
    fn inclusive_us(n: &ExplainNode) -> u64 {
        n.elapsed_us + n.children.iter().map(inclusive_us).sum::<u64>()
    }
    let mut fields = vec![("rows".to_string(), TraceValue::U64(node.rows as u64))];
    for (name, v) in &node.counters {
        if *v > 0 {
            fields.push(((*name).to_string(), TraceValue::U64(*v)));
        }
    }
    let child = trace.record_complete(&node.label, inclusive_us(node), fields);
    for c in &node.children {
        record_operator_spans(&child, c);
    }
}

/// Lowers the plan and opens the operator tree, returning the pull
/// cursor. This is the single entry point behind both
/// [`crate::QueryRequest::run`] (which drains it) and
/// [`crate::QueryRequest::stream`].
pub(crate) fn open_stream<'db>(
    db: &'db Database,
    plan: &Plan,
    explain: bool,
) -> Result<RowStream<'db>> {
    let span = db.metrics().span("query.run_us");
    // When a trace is installed on this thread, the span above has just
    // become its innermost node; capture a context pointing at it so the
    // finished operator tree can be recorded as its children.
    let trace = TraceContext::current();
    // Pin the oldest snapshot time this plan can touch for the cursor's
    // whole lifetime: a concurrent vacuum clamps its purge horizon below
    // this pin, so every version the query can still pull stays
    // reconstructible even if the caller holds the stream open across
    // later writes and vacuums.
    let pin = db.pin_snapshot(plan.min_snapshot_time());
    let (h0, m0, _, _, _) = db.store().vcache_stats().snapshot();
    let ctx = Rc::new(Ctx::new(db, plan.now));
    let mut root = lower(&ctx, plan, explain);
    root.open()?;
    let peak = root.buffered() + ctx.cached_trees();
    Ok(RowStream {
        _pin: pin,
        ctx,
        root,
        span: Some(span),
        trace,
        vc0: (h0, m0),
        explain,
        finished: false,
        rows_out: 0,
        peak_buffered: peak,
        stats: ExecStats::default(),
        explain_tree: None,
    })
}

/// A pull-based cursor over a running query: each [`Iterator::next`]
/// pulls one output row through the operator tree. Dropping the stream —
/// or exhausting it — closes the operators, folds the run into the
/// metrics registry (including the `exec.peak_rows_buffered` gauge) and,
/// under `EXPLAIN ANALYZE`, freezes the explain tree.
pub struct RowStream<'db> {
    /// Snapshot pin at the query's `NOW` anchor, held until the stream
    /// drops: fences concurrent vacuum from purging versions this cursor
    /// may still reconstruct.
    _pin: txdb_storage::SnapshotPin,
    ctx: Rc<Ctx<'db>>,
    root: Box<dyn Operator + 'db>,
    span: Option<Span<'db>>,
    trace: Option<TraceContext>,
    vc0: (u64, u64),
    explain: bool,
    finished: bool,
    rows_out: usize,
    peak_buffered: usize,
    stats: ExecStats,
    explain_tree: Option<ExplainNode>,
}

impl RowStream<'_> {
    /// Finalises the run (idempotent): closes operators, snapshots stats,
    /// publishes metrics and ends the timing span.
    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.explain {
            let mut tree = self.root.explain_node();
            make_exclusive(&mut tree);
            if let Some(trace) = &self.trace {
                record_operator_spans(trace, &tree);
            }
            self.explain_tree = Some(tree);
        }
        self.root.close();
        let mut stats = *self.ctx.stats.borrow();
        stats.rows_output = self.rows_out;
        let (h1, m1, _, _, _) = self.ctx.db.store().vcache_stats().snapshot();
        stats.cache_hits = h1.saturating_sub(self.vc0.0) as usize;
        stats.cache_misses = m1.saturating_sub(self.vc0.1) as usize;
        self.stats = stats;
        let reg = self.ctx.db.metrics();
        reg.counter("query.runs").inc();
        reg.counter("query.rows_scanned").add(stats.rows_scanned as u64);
        reg.counter("query.rows_output").add(stats.rows_output as u64);
        reg.gauge("exec.peak_rows_buffered").set(self.peak_buffered as u64);
        self.span.take();
    }

    /// Execution statistics: final totals once the stream is exhausted
    /// (or dropped), live counters while it is still being pulled.
    pub fn stats(&self) -> ExecStats {
        if self.finished {
            self.stats
        } else {
            let mut s = *self.ctx.stats.borrow();
            s.rows_output = self.rows_out;
            s
        }
    }

    /// The `EXPLAIN ANALYZE` tree (after exhaustion, when requested).
    pub fn explain(&self) -> Option<&ExplainNode> {
        self.explain_tree.as_ref()
    }

    /// Takes the explain tree out of a finished stream.
    pub(crate) fn take_explain(&mut self) -> Option<ExplainNode> {
        self.explain_tree.take()
    }

    /// High-water mark of rows/candidates buffered across the operator
    /// tree plus cached reconstructed versions — the bounded-memory
    /// figure, independent of how many rows the query returns.
    pub fn peak_rows_buffered(&self) -> usize {
        self.peak_buffered
    }
}

impl Iterator for RowStream<'_> {
    type Item = Result<Vec<OutValue>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        match self.root.next() {
            Ok(Some(row)) => {
                self.rows_out += 1;
                let buffered = self.root.buffered() + self.ctx.cached_trees();
                self.peak_buffered = self.peak_buffered.max(buffered);
                Some(Ok(row.into_values()))
            }
            Ok(None) => {
                self.finish();
                None
            }
            Err(e) => {
                self.finish();
                Some(Err(e))
            }
        }
    }
}

impl Drop for RowStream<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}
