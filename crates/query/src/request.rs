//! The fluent query API: `db.query(text).at(ts).run()?`.
//!
//! [`QueryExt::query`] starts a [`QueryRequest`]; `.at(ts)` anchors `NOW`
//! for deterministic replay (tests, the experiment harness); `.run()`
//! parses, plans and executes, returning a materialised [`QueryResult`]
//! whose [`crate::ExecStats`] also report materialized-version cache
//! traffic. `.stream()` instead returns a pull-based
//! [`crate::operators::RowStream`] cursor: rows are produced on demand
//! with bounded peak memory, and a `.limit(n)` (or `LIMIT n` in the
//! query text) early-exits the underlying scans.

use txdb_base::{Result, Timestamp};
use txdb_core::Database;

use crate::operators::RowStream;
use crate::parser::parse_query;
use crate::plan::plan_query;
use crate::result::QueryResult;

/// A query waiting to be run: text plus an optional `NOW` anchor.
///
/// ```
/// use txdb_core::Database;
/// use txdb_query::QueryExt;
///
/// let db = Database::in_memory();
/// db.put("a", "<r><p>15</p></r>", txdb_base::Timestamp::from_secs(10)).unwrap();
/// let r = db
///     .query(r#"SELECT R/p FROM doc("a")//r R"#)
///     .at(txdb_base::Timestamp::from_secs(20))
///     .run()
///     .unwrap();
/// assert_eq!(r.len(), 1);
/// ```
#[must_use = "a QueryRequest does nothing until .run() is called"]
pub struct QueryRequest<'db> {
    db: &'db Database,
    text: String,
    now: Option<Timestamp>,
    explain: bool,
    limit: Option<usize>,
}

impl<'db> QueryRequest<'db> {
    /// Anchors `NOW` (and the default snapshot time) at `now` instead of
    /// the wall clock. Queries become deterministic and replayable.
    pub fn at(mut self, now: Timestamp) -> QueryRequest<'db> {
        self.now = Some(now);
        self
    }

    /// Requests `EXPLAIN ANALYZE`: the query still runs to completion,
    /// and the result's [`crate::ExplainNode`] tree annotates every plan
    /// node with wall-clock time, rows, the index-vs-scan choice, and the
    /// §6 cost counters attributed to that stage.
    pub fn explain(mut self) -> QueryRequest<'db> {
        self.explain = true;
        self
    }

    /// Caps the result at `n` rows with scan early-exit, like a `LIMIT n`
    /// clause in the query text (the tighter of the two wins when both
    /// are given).
    pub fn limit(mut self, n: usize) -> QueryRequest<'db> {
        self.limit = Some(self.limit.map_or(n, |cur| cur.min(n)));
        self
    }

    fn plan(&self) -> Result<crate::plan::Plan> {
        let _span = self.db.metrics().span("query.plan_us");
        let now = self.now.unwrap_or_else(wall_clock);
        let q = parse_query(&self.text)?;
        let mut plan = plan_query(self.db, &q, now)?;
        if let Some(n) = self.limit {
            plan.limit = Some(plan.limit.map_or(n, |cur| cur.min(n)));
        }
        Ok(plan)
    }

    /// Parses, plans and executes the query, materialising every row.
    pub fn run(self) -> Result<QueryResult> {
        let plan = self.plan()?;
        crate::exec::run_plan_inner(self.db, &plan, self.explain)
    }

    /// Parses, plans and *opens* the query, returning a pull-based
    /// [`RowStream`] cursor. Rows are computed as the caller iterates;
    /// peak memory is bounded by the operator buffers, not the result
    /// size, and dropping the stream early abandons the remaining work.
    pub fn stream(self) -> Result<RowStream<'db>> {
        let plan = self.plan()?;
        crate::operators::open_stream(self.db, &plan, self.explain)
    }
}

/// Strips a leading `EXPLAIN ANALYZE` (any case) from a query, returning
/// the remainder. Front ends (the CLI shell, the wire server) accept the
/// prefix as an alternative to their explicit explain switches.
pub fn strip_explain_prefix(q: &str) -> Option<&str> {
    fn strip_word<'a>(s: &'a str, w: &str) -> Option<&'a str> {
        let (head, rest) = s.as_bytes().split_at_checked(w.len())?;
        if !head.eq_ignore_ascii_case(w.as_bytes()) || !rest.first()?.is_ascii_whitespace() {
            return None;
        }
        Some(s[w.len()..].trim_start())
    }
    strip_word(strip_word(q.trim_start(), "EXPLAIN")?, "ANALYZE")
}

/// The current wall-clock time as a [`Timestamp`] (the default `NOW`).
pub(crate) fn wall_clock() -> Timestamp {
    Timestamp::from_micros(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
    )
}

/// Entry point for queries on a [`Database`]: `db.query(text)`.
///
/// An extension trait because `txdb-core` cannot depend on this crate;
/// import it (or the umbrella crate's re-export) to get the method.
pub trait QueryExt {
    /// Starts a [`QueryRequest`] for `text`.
    fn query(&self, text: impl AsRef<str>) -> QueryRequest<'_>;
}

impl QueryExt for Database {
    fn query(&self, text: impl AsRef<str>) -> QueryRequest<'_> {
        QueryRequest {
            db: self,
            text: text.as_ref().to_string(),
            now: None,
            explain: false,
            limit: None,
        }
    }
}
