//! The fluent query API: `db.query(text).at(ts).run()?`.
//!
//! [`QueryExt::query`] starts a [`QueryRequest`]; `.at(ts)` anchors `NOW`
//! for deterministic replay (tests, the experiment harness); `.run()`
//! parses, plans and executes, returning a [`QueryResult`] whose
//! [`crate::ExecStats`] also report materialized-version cache traffic.
//! The free functions `execute`/`execute_at`/`run_plan` are deprecated
//! shims over this builder.

use txdb_base::{Result, Timestamp};
use txdb_core::Database;

use crate::parser::parse_query;
use crate::plan::plan_query;
use crate::result::QueryResult;

/// A query waiting to be run: text plus an optional `NOW` anchor.
///
/// ```
/// use txdb_core::Database;
/// use txdb_query::QueryExt;
///
/// let db = Database::in_memory();
/// db.put("a", "<r><p>15</p></r>", txdb_base::Timestamp::from_secs(10)).unwrap();
/// let r = db
///     .query(r#"SELECT R/p FROM doc("a")//r R"#)
///     .at(txdb_base::Timestamp::from_secs(20))
///     .run()
///     .unwrap();
/// assert_eq!(r.len(), 1);
/// ```
#[must_use = "a QueryRequest does nothing until .run() is called"]
pub struct QueryRequest<'db> {
    db: &'db Database,
    text: String,
    now: Option<Timestamp>,
    explain: bool,
}

impl<'db> QueryRequest<'db> {
    /// Anchors `NOW` (and the default snapshot time) at `now` instead of
    /// the wall clock. Queries become deterministic and replayable.
    pub fn at(mut self, now: Timestamp) -> QueryRequest<'db> {
        self.now = Some(now);
        self
    }

    /// Requests `EXPLAIN ANALYZE`: the query still runs to completion,
    /// and the result's [`crate::ExplainNode`] tree annotates every plan
    /// node with wall-clock time, rows, the index-vs-scan choice, and the
    /// §6 cost counters attributed to that stage.
    pub fn explain(mut self) -> QueryRequest<'db> {
        self.explain = true;
        self
    }

    /// Parses, plans and executes the query.
    pub fn run(self) -> Result<QueryResult> {
        let now = self.now.unwrap_or_else(wall_clock);
        let q = parse_query(&self.text)?;
        let plan = plan_query(self.db, &q, now)?;
        crate::exec::run_plan_inner(self.db, &plan, self.explain)
    }
}

/// The current wall-clock time as a [`Timestamp`] (the default `NOW`).
pub(crate) fn wall_clock() -> Timestamp {
    Timestamp::from_micros(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
    )
}

/// Entry point for queries on a [`Database`]: `db.query(text)`.
///
/// An extension trait because `txdb-core` cannot depend on this crate;
/// import it (or the umbrella crate's re-export) to get the method.
pub trait QueryExt {
    /// Starts a [`QueryRequest`] for `text`.
    fn query(&self, text: impl AsRef<str>) -> QueryRequest<'_>;
}

impl QueryExt for Database {
    fn query(&self, text: impl AsRef<str>) -> QueryRequest<'_> {
        QueryRequest { db: self, text: text.as_ref().to_string(), now: None, explain: false }
    }
}
