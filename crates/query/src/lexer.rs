//! Tokenizer for the temporal query language.
//!
//! Keywords are case-insensitive (`SELECT`, `select` and `Select` are the
//! same token); identifiers keep their original spelling. Numbers are kept
//! as strings so date literals like `26/01/2001` (three numbers joined by
//! `/`) preserve their leading zeros for the parser.

use txdb_base::{Error, Result};

/// One token with its byte offset (for error reporting).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Byte offset into the query text.
    pub offset: usize,
    /// The token itself.
    pub kind: Tok,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Keyword (uppercased).
    Kw(Kw),
    /// Identifier (original spelling).
    Ident(String),
    /// Number literal, verbatim text (may contain a decimal point).
    Number(String),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `~`
    Tilde,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    Distinct,
    Every,
    Now,
    Contains,
    Doc,
    Limit,
    Days,
    Weeks,
    Hours,
    Minutes,
    Seconds,
}

fn keyword(word: &str) -> Option<Kw> {
    Some(match word.to_ascii_uppercase().as_str() {
        "SELECT" => Kw::Select,
        "FROM" => Kw::From,
        "WHERE" => Kw::Where,
        "AND" => Kw::And,
        "OR" => Kw::Or,
        "NOT" => Kw::Not,
        "DISTINCT" => Kw::Distinct,
        "EVERY" => Kw::Every,
        "NOW" => Kw::Now,
        "CONTAINS" => Kw::Contains,
        "DOC" => Kw::Doc,
        "LIMIT" => Kw::Limit,
        "DAY" | "DAYS" => Kw::Days,
        "WEEK" | "WEEKS" => Kw::Weeks,
        "HOUR" | "HOURS" => Kw::Hours,
        "MINUTE" | "MINUTES" => Kw::Minutes,
        "SECOND" | "SECONDS" => Kw::Seconds,
        _ => return None,
    })
}

/// Tokenizes a query.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let err =
        |offset: usize, message: &str| Error::QueryParse { offset, message: message.to_string() };
    while i < b.len() {
        let c = b[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'-' if b.get(i + 1) == Some(&b'-') => {
                // SQL-style line comment.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'(' => {
                out.push(Token { offset: start, kind: Tok::LParen });
                i += 1;
            }
            b')' => {
                out.push(Token { offset: start, kind: Tok::RParen });
                i += 1;
            }
            b'[' => {
                out.push(Token { offset: start, kind: Tok::LBracket });
                i += 1;
            }
            b']' => {
                out.push(Token { offset: start, kind: Tok::RBracket });
                i += 1;
            }
            b',' => {
                out.push(Token { offset: start, kind: Tok::Comma });
                i += 1;
            }
            b'*' => {
                out.push(Token { offset: start, kind: Tok::Star });
                i += 1;
            }
            b'~' => {
                out.push(Token { offset: start, kind: Tok::Tilde });
                i += 1;
            }
            b'+' => {
                out.push(Token { offset: start, kind: Tok::Plus });
                i += 1;
            }
            b'-' => {
                out.push(Token { offset: start, kind: Tok::Minus });
                i += 1;
            }
            b'/' => {
                if b.get(i + 1) == Some(&b'/') {
                    out.push(Token { offset: start, kind: Tok::DoubleSlash });
                    i += 2;
                } else {
                    out.push(Token { offset: start, kind: Tok::Slash });
                    i += 1;
                }
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token { offset: start, kind: Tok::EqEq });
                    i += 2;
                } else {
                    out.push(Token { offset: start, kind: Tok::Eq });
                    i += 1;
                }
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token { offset: start, kind: Tok::Neq });
                    i += 2;
                } else {
                    return Err(err(start, "unexpected `!`"));
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token { offset: start, kind: Tok::Le });
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(Token { offset: start, kind: Tok::Neq });
                    i += 2;
                } else {
                    out.push(Token { offset: start, kind: Tok::Lt });
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token { offset: start, kind: Tok::Ge });
                    i += 2;
                } else {
                    out.push(Token { offset: start, kind: Tok::Gt });
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => return Err(err(start, "unterminated string literal")),
                        Some(&q) if q == quote => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            match b.get(i + 1) {
                                Some(&b'n') => s.push('\n'),
                                Some(&b't') => s.push('\t'),
                                Some(&b'\\') => s.push('\\'),
                                Some(&q) if q == quote => s.push(q as char),
                                _ => return Err(err(i, "bad escape in string")),
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Advance over one UTF-8 character.
                            let ch_len = utf8_len(b[i]);
                            s.push_str(
                                std::str::from_utf8(&b[i..i + ch_len])
                                    .map_err(|_| err(i, "invalid UTF-8"))?,
                            );
                            i += ch_len;
                        }
                    }
                }
                out.push(Token { offset: start, kind: Tok::Str(s) });
            }
            b'0'..=b'9' => {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    // Only one decimal point.
                    if b[i] == b'.' && input[start..i].contains('.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Token { offset: start, kind: Tok::Number(input[start..i].to_string()) });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match keyword(word) {
                    Some(kw) => out.push(Token { offset: start, kind: Tok::Kw(kw) }),
                    None => out.push(Token { offset: start, kind: Tok::Ident(word.to_string()) }),
                }
            }
            _ => {
                return Err(err(start, &format!("unexpected character `{}`", c as char)));
            }
        }
    }
    out.push(Token { offset: input.len(), kind: Tok::Eof });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM Where"),
            vec![Tok::Kw(Kw::Select), Tok::Kw(Kw::From), Tok::Kw(Kw::Where), Tok::Eof]
        );
    }

    #[test]
    fn paper_query_q3_tokens() {
        let toks = kinds(
            r#"SELECT TIME(R), R/price FROM doc("guide.com/restaurants")[EVERY]//restaurant R WHERE R/name="Napoli""#,
        );
        assert!(toks.contains(&Tok::Ident("TIME".into())));
        assert!(toks.contains(&Tok::Str("guide.com/restaurants".into())));
        assert!(toks.contains(&Tok::Kw(Kw::Every)));
        assert!(toks.contains(&Tok::DoubleSlash));
        assert!(toks.contains(&Tok::Str("Napoli".into())));
    }

    #[test]
    fn date_is_three_numbers() {
        assert_eq!(
            kinds("26/01/2001"),
            vec![
                Tok::Number("26".into()),
                Tok::Slash,
                Tok::Number("01".into()),
                Tok::Slash,
                Tok::Number("2001".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= == != <> < <= > >= ~"),
            vec![
                Tok::Eq,
                Tok::EqEq,
                Tok::Neq,
                Tok::Neq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Tilde,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_quotes() {
        assert_eq!(
            kinds(r#""a\"b" 'c''s'"#),
            vec![Tok::Str("a\"b".into()), Tok::Str("c".into()), Tok::Str("s".into()), Tok::Eof]
        );
        assert_eq!(kinds(r#""æøå""#), vec![Tok::Str("æøå".into()), Tok::Eof]);
    }

    #[test]
    fn numbers_and_decimals() {
        assert_eq!(
            kinds("15 12.5"),
            vec![Tok::Number("15".into()), Tok::Number("12.5".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- this is a comment\n R"),
            vec![Tok::Kw(Kw::Select), Tok::Ident("R".into()), Tok::Eof]
        );
    }

    #[test]
    fn duration_units() {
        assert_eq!(
            kinds("14 DAYS 2 weeks"),
            vec![
                Tok::Number("14".into()),
                Tok::Kw(Kw::Days),
                Tok::Number("2".into()),
                Tok::Kw(Kw::Weeks),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_reported_with_offsets() {
        match lex("SELECT ?") {
            Err(Error::QueryParse { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("expected error, got {other:?}"),
        }
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a ! b").is_err());
    }
}
