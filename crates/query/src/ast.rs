//! Abstract syntax of the temporal query language.

use txdb_base::Timestamp;
use txdb_xml::path::Path;

/// A whole `SELECT … FROM … WHERE …` query.
#[derive(Debug, Clone)]
pub struct Query {
    /// `SELECT DISTINCT` deduplicates output rows.
    pub distinct: bool,
    /// Projection list.
    pub select: Vec<Expr>,
    /// Range variables.
    pub from: Vec<FromItem>,
    /// Optional filter.
    pub where_clause: Option<Expr>,
    /// `LIMIT n`: stop after n output rows (early-exit in the executor).
    pub limit: Option<usize>,
}

/// One `FROM` entry: `doc("url")[timespec]/path Var`.
#[derive(Debug, Clone)]
pub struct FromItem {
    /// Document URL; `*` ranges over the whole collection.
    pub url: String,
    /// Which version(s) the variable ranges over (§5).
    pub time: TimeSpec,
    /// Path from the document root(s) to the bound elements.
    pub path: Path,
    /// The variable name.
    pub var: String,
}

/// Temporal qualifier of a `FROM` source.
#[derive(Debug, Clone)]
pub enum TimeSpec {
    /// No qualifier: the current version.
    Current,
    /// `[<time expression>]`: the snapshot valid at that (constant) time.
    At(Expr),
    /// `[EVERY]`: all versions — §5's "when we want more than one version
    /// to be selected".
    Every,
}

/// Expressions.
#[derive(Debug, Clone)]
pub enum Expr {
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// Date/time literal (already resolved to a timestamp).
    Date(Timestamp),
    /// `NOW`.
    Now,
    /// `*` (only valid inside `COUNT(*)`).
    Star,
    /// A range variable, e.g. `R`.
    Var(String),
    /// A path applied to a base expression: `R/price`,
    /// `CURRENT(R)/name`.
    PathOf {
        /// The expression the path navigates from.
        base: Box<Expr>,
        /// The relative path.
        path: Path,
    },
    /// Function call.
    Func {
        /// Which function.
        name: Func,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Comparison.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Time arithmetic: `base ± n UNIT` (`NOW - 14 DAYS`).
    TimeShift {
        /// The base time expression.
        base: Box<Expr>,
        /// True for `-`.
        negative: bool,
        /// The shift amount in microseconds.
        micros: u64,
    },
}

/// Built-in functions (§5/§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `TIME(R)` — the timestamp of the element version.
    Time,
    /// `CREATETIME(R)` / `CREATE TIME(R)` — the `CreTime` operator.
    CreateTime,
    /// `DELETETIME(R)` / `DELETE TIME(R)` — the `DelTime` operator.
    DeleteTime,
    /// `CURRENT(R)` — the current version of the element.
    Current,
    /// `PREVIOUS(R)` — the previous version of the element.
    Previous,
    /// `NEXT(R)` — the next version of the element.
    Next,
    /// `DIFF(a, b)` — the edit script between two elements (§7.3.8).
    Diff,
    /// `COUNT(expr)` / `COUNT(*)` — aggregate.
    Count,
    /// `SUM(expr)` — aggregate over numeric values.
    Sum,
    /// `SIMILARITY(a, b)` — the `~` score as a number.
    Similarity,
}

/// Comparison operators, with the §7.4 distinction between value equality
/// (`=`), identity (`==`) and similarity (`~`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` — value (shallow) equality.
    Eq,
    /// `==` — EID identity.
    Identity,
    /// `!=` / `<>`.
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `~` — similarity above the default threshold.
    Similar,
    /// `CONTAINS` — substring (case-insensitive) on text content.
    Contains,
}

impl Expr {
    /// Does the expression contain an aggregate function call?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Func { name: Func::Count | Func::Sum, .. } => true,
            Expr::Func { args, .. } => args.iter().any(Expr::has_aggregate),
            Expr::PathOf { base, .. } => base.has_aggregate(),
            Expr::Cmp { lhs, rhs, .. } => lhs.has_aggregate() || rhs.has_aggregate(),
            Expr::And(a, b) | Expr::Or(a, b) => a.has_aggregate() || b.has_aggregate(),
            Expr::Not(e) => e.has_aggregate(),
            Expr::TimeShift { base, .. } => base.has_aggregate(),
            _ => false,
        }
    }

    /// The variables referenced by the expression.
    pub fn variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) if !out.contains(v) => {
                out.push(v.clone());
            }
            Expr::PathOf { base, .. } => base.variables(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.variables(out);
                }
            }
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.variables(out);
                rhs.variables(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Not(e) => e.variables(out),
            Expr::TimeShift { base, .. } => base.variables(out),
            _ => {}
        }
    }
}
