//! # txdb-query — the temporal XML query language
//!
//! §5 of the paper sketches (without fixing) a query language "based on a
//! mix of Lorel, the Xyleme query language, and elements of XPath and
//! XQuery"; this crate makes that dialect concrete and executable:
//!
//! ```text
//! SELECT TIME(R), R/price
//! FROM   doc("guide.com/restaurants")[EVERY]//restaurant R
//! WHERE  R/name = "Napoli" AND CREATETIME(R) >= 11/01/2001
//! ```
//!
//! * `doc("url")` — one document; `doc("*")` — the whole collection.
//! * `[26/01/2001]` — snapshot at a time (any constant time expression,
//!   including `NOW - 14 DAYS`); `[EVERY]` — all versions; absent —
//!   the current version. (§5's timestamp-in-the-FROM-clause.)
//! * Functions: `TIME`, `CREATETIME`/`CREATE TIME`, `DELETETIME`/`DELETE
//!   TIME`, `CURRENT`, `PREVIOUS`, `NEXT`, `DIFF`, `COUNT`, `SUM`,
//!   `SIMILARITY`.
//! * Operators: `=` (value, shallow — §7.4), `==` (EID identity), `~`
//!   (similarity), `CONTAINS`, the usual comparisons, `AND`/`OR`/`NOT`,
//!   and `± n DAYS|WEEKS|HOURS|MINUTES|SECONDS` time arithmetic.
//!
//! Results are delivered "in a document with enclosing tags named
//! `results` \[with each\] result … in one element with tags named
//! `result`" (§5) — see [`result::QueryResult::to_xml`].
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`plan`] (strategy choice:
//! index-backed `TPatternScan*` when every path step names a tag, with
//! equality-literal word pushdown; reconstruction fallback for wildcard
//! steps) → [`operators`] (a streaming Volcano engine: the plan lowers to
//! a pull-based `open`/`next`/`close` operator tree driving lazy FTI
//! posting cursors — a `COUNT(R)` never touches a document, the paper's
//! Q2 point, and a `LIMIT 1` stops after the first match).
//!
//! The public entry point is the [`request::QueryExt`] extension trait:
//! `db.query(text).at(ts).run()?` parses, plans and executes in one fluent
//! chain and returns a materialised [`QueryResult`] carrying [`ExecStats`]
//! (including materialized-version cache hits/misses);
//! `db.query(text).at(ts).stream()?` returns the [`RowStream`] cursor
//! itself, producing rows on demand with bounded peak memory. Adding
//! `.explain()` runs the query as `EXPLAIN ANALYZE`: the result also
//! carries an [`ExplainNode`] tree that maps one-to-one onto the executed
//! operator tree, annotating every node with wall-clock time, rows, the
//! index-vs-scan choice and the §6 cost counters for that stage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod operators;
pub mod parser;
pub mod plan;
pub mod request;
pub mod result;

pub use exec::{ExecStats, ExplainNode};
pub use operators::{Operator, Row, RowStream};
pub use parser::parse_query;
pub use request::{strip_explain_prefix, QueryExt, QueryRequest};
pub use result::{OutValue, QueryResult};
