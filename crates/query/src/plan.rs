//! Query planning: from AST to executable source plans.
//!
//! For every `FROM` item the planner picks an access strategy:
//!
//! * **Index scan** — when every path step names a tag, the path compiles
//!   to a pattern tree and runs through the §7.3.1/7.3.2 operators
//!   (`PatternScan`/`TPatternScan`/`TPatternScanAll`). An absolute first
//!   step anchors the pattern at document roots. Equality predicates of
//!   the shape `Var/path = "literal"` are *pushed down* as word
//!   constraints on the pattern (a necessary condition; the filter is
//!   still evaluated afterwards), so the FTI prunes non-matching
//!   documents before any reconstruction.
//! * **Tree scan** — paths with `*` or `text()` steps fall back to
//!   reconstructing the relevant version(s) and evaluating the path
//!   directly (the stratum-style evaluation; rarely taken, and measured
//!   against the index path in the experiments).
//!
//! Snapshot time expressions (`[26/01/2001]`, `[NOW - 14 DAYS]`) are
//! constant-folded at plan time.

use txdb_base::{DocId, Duration, Error, Interval, Result, Timestamp};
use txdb_xml::path::{Axis, Path, Test};
use txdb_xml::pattern::{PatternNode, PatternTree};
use txdb_xml::similarity::tokenize;

use txdb_core::Database;

use crate::ast::{CmpOp, Expr, Query, TimeSpec};

/// Which version(s) a source ranges over, resolved.
#[derive(Clone, Copy, Debug)]
pub enum ScanMode {
    /// Current versions only.
    Current,
    /// The snapshot valid at a fixed time.
    At(Timestamp),
    /// All versions committed within the interval. `[EVERY]` starts as
    /// `Interval::ALL`; `TIME(var) >= t` conjuncts narrow it at plan time
    /// (the paper's §8 "algebraic rewriting techniques" — fewer versions
    /// expanded means fewer candidate rows and fewer reconstructions).
    Every(Interval),
}

/// Which documents a source ranges over.
#[derive(Clone, Copy, Debug)]
pub enum DocSel {
    /// The whole collection (`doc("*")`).
    All,
    /// One document.
    One(DocId),
    /// The named document does not exist — the source is empty.
    Missing,
}

/// Access strategy for one source.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// FTI-backed pattern scan; the variable binds to the pattern's
    /// projected node.
    Index(PatternTree),
    /// Reconstruct + evaluate the path directly.
    Tree(Path),
}

/// One planned `FROM` source.
#[derive(Clone, Debug)]
pub struct SourcePlan {
    /// The bound variable.
    pub var: String,
    /// Documents in range.
    pub docs: DocSel,
    /// Version range.
    pub mode: ScanMode,
    /// Access path.
    pub strategy: Strategy,
}

/// A fully planned query.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The `NOW` anchor the query was planned with (also used when `NOW`
    /// appears in WHERE/SELECT expressions).
    pub now: Timestamp,
    /// Sources, in `FROM` order.
    pub sources: Vec<SourcePlan>,
    /// Residual filter (always fully evaluated, even with pushdown).
    pub filter: Option<Expr>,
    /// Projection list.
    pub select: Vec<Expr>,
    /// Deduplicate output rows.
    pub distinct: bool,
    /// The select list aggregates the whole result into one row.
    pub aggregate: bool,
    /// Stop after this many output rows (`LIMIT n` or
    /// [`crate::QueryRequest::limit`]); the executor lowers it to an
    /// early-exit node that stops pulling the tree.
    pub limit: Option<usize>,
}

impl Plan {
    /// The oldest committed timestamp this plan can touch: the `NOW`
    /// anchor, lowered by any fixed snapshot qualifier (`doc(..)[t]`)
    /// and by the start of any `[EVERY]` version range. The executor
    /// pins this time for the cursor's lifetime, so vacuum cannot purge
    /// a version the query may still reconstruct.
    pub fn min_snapshot_time(&self) -> Timestamp {
        let mut min = self.now;
        for s in &self.sources {
            match s.mode {
                ScanMode::Current => {}
                ScanMode::At(t) => min = min.min(t),
                ScanMode::Every(iv) => min = min.min(iv.start),
            }
        }
        min
    }
}

/// Plans a parsed query against a database. `now` anchors `NOW`.
pub fn plan_query(db: &Database, q: &Query, now: Timestamp) -> Result<Plan> {
    let aggregate = q.select.iter().any(Expr::has_aggregate);
    if aggregate && !q.select.iter().all(Expr::has_aggregate) {
        return Err(Error::QueryInvalid(
            "cannot mix aggregate and non-aggregate select items".into(),
        ));
    }
    // Validate variable references.
    let declared: Vec<&str> = q.from.iter().map(|f| f.var.as_str()).collect();
    {
        let mut used = Vec::new();
        for e in &q.select {
            e.variables(&mut used);
        }
        if let Some(w) = &q.where_clause {
            w.variables(&mut used);
        }
        for v in &used {
            if !declared.contains(&v.as_str()) {
                return Err(Error::QueryInvalid(format!("unknown variable `{v}`")));
            }
        }
    }
    if declared.len() != declared.iter().collect::<std::collections::HashSet<_>>().len() {
        return Err(Error::QueryInvalid("duplicate variable in FROM".into()));
    }

    let mut sources = Vec::with_capacity(q.from.len());
    for item in &q.from {
        let docs = if item.url == "*" {
            DocSel::All
        } else {
            match db.store().doc_id(&item.url)? {
                Some(d) => DocSel::One(d),
                None => DocSel::Missing,
            }
        };
        let mode = match &item.time {
            TimeSpec::Current => ScanMode::Current,
            TimeSpec::Every => {
                ScanMode::Every(every_interval(&item.var, q.where_clause.as_ref(), now))
            }
            TimeSpec::At(e) => ScanMode::At(const_time(e, now)?),
        };
        let strategy = match compile_pattern(&item.path, &item.var) {
            Some(mut pattern) => {
                push_down_words(&mut pattern, &item.var, q.where_clause.as_ref());
                Strategy::Index(pattern)
            }
            None => Strategy::Tree(item.path.clone()),
        };
        sources.push(SourcePlan { var: item.var.clone(), docs, mode, strategy });
    }
    Ok(Plan {
        now,
        sources,
        filter: q.where_clause.clone(),
        select: q.select.clone(),
        distinct: q.distinct,
        aggregate,
        limit: q.limit,
    })
}

/// Constant-folds a time expression (`Date`, `NOW`, `±` shifts).
pub fn const_time(e: &Expr, now: Timestamp) -> Result<Timestamp> {
    match e {
        Expr::Date(ts) => Ok(*ts),
        Expr::Now => Ok(now),
        Expr::Num(n) if *n >= 0.0 => Ok(Timestamp::from_micros(*n as u64)),
        Expr::TimeShift { base, negative, micros } => {
            let b = const_time(base, now)?;
            Ok(if *negative {
                b - txdb_base::Duration::from_micros(*micros)
            } else {
                b + txdb_base::Duration::from_micros(*micros)
            })
        }
        other => Err(Error::QueryInvalid(format!(
            "snapshot time must be a constant time expression, got {other:?}"
        ))),
    }
}

/// Compiles a FROM path into a pattern tree when all steps are tag names;
/// the variable binds to the last step's node.
fn compile_pattern(path: &Path, var: &str) -> Option<PatternTree> {
    let mut names = Vec::with_capacity(path.steps.len());
    for step in &path.steps {
        match &step.test {
            Test::Name(n) => names.push((step.axis, n.clone())),
            _ => return None,
        }
    }
    let mut iter = names.iter().rev();
    let (last_axis, last_name) = iter.next().unwrap();
    let mut cur = PatternNode::tag(last_name.clone()).project().var(var);
    let mut cur_axis = *last_axis;
    for (axis, name) in iter {
        let parent = PatternNode::tag(name.clone());
        cur = match cur_axis {
            Axis::Child => parent.child(cur),
            Axis::Descendant => parent.descendant(cur),
        };
        cur_axis = *axis;
    }
    if path.absolute && cur_axis == Axis::Child {
        cur = cur.root_only();
    }
    Some(PatternTree::new(cur))
}

/// Derives the version interval of an `[EVERY]` source from `TIME(var)`
/// lower-bound conjuncts. Sound direction only: an element's §4 timestamp
/// never exceeds the commit time of the version it appears in, so
/// `TIME(R) >= t` implies the version's commit time is `>= t`; upper
/// bounds do NOT transfer (an old element appears unchanged in new
/// versions). The residual filter still runs — this only prunes the
/// expansion.
fn every_interval(var: &str, filter: Option<&Expr>, now: Timestamp) -> Interval {
    let mut interval = Interval::ALL;
    let Some(filter) = filter else { return interval };
    let mut conjuncts = Vec::new();
    collect_conjuncts(filter, &mut conjuncts);
    for c in conjuncts {
        let Expr::Cmp { op, lhs, rhs } = c else { continue };
        // TIME(var) OP const  /  const OP TIME(var)
        let (op, time_side, const_side) = match (&**lhs, &**rhs) {
            (Expr::Func { name: crate::ast::Func::Time, args }, other) => (*op, args, other),
            (other, Expr::Func { name: crate::ast::Func::Time, args }) => {
                let flipped = match *op {
                    CmpOp::Ge => CmpOp::Le,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Lt => CmpOp::Gt,
                    o => o,
                };
                (flipped, args, other)
            }
            _ => continue,
        };
        if !matches!(time_side.first(), Some(Expr::Var(v)) if v == var) {
            continue;
        }
        let Ok(t) = const_time(const_side, now) else { continue };
        match op {
            CmpOp::Ge => interval.start = interval.start.max(t),
            CmpOp::Gt => interval.start = interval.start.max(t + Duration::from_micros(1)),
            _ => {}
        }
    }
    interval
}

/// Pushes `var/path = "literal"` conjuncts into the pattern as word
/// constraints (necessary condition; the filter still runs).
fn push_down_words(pattern: &mut PatternTree, var: &str, filter: Option<&Expr>) {
    let Some(filter) = filter else { return };
    let mut conjuncts = Vec::new();
    collect_conjuncts(filter, &mut conjuncts);
    for c in conjuncts {
        let Expr::Cmp { op: CmpOp::Eq, lhs, rhs } = c else { continue };
        let (path_expr, lit) = match (&**lhs, &**rhs) {
            (Expr::PathOf { base, path }, Expr::Str(s)) => match &**base {
                Expr::Var(v) if v == var => (path, s),
                _ => continue,
            },
            (Expr::Str(s), Expr::PathOf { base, path }) => match &**base {
                Expr::Var(v) if v == var => (path, s),
                _ => continue,
            },
            _ => continue,
        };
        // Only all-name relative paths can be pushed.
        let mut names = Vec::new();
        for step in &path_expr.steps {
            match &step.test {
                Test::Name(n) => names.push((step.axis, n.clone())),
                _ => {
                    names.clear();
                    break;
                }
            }
        }
        if names.is_empty() {
            continue;
        }
        let words: Vec<String> = tokenize(lit).collect();
        if words.is_empty() {
            continue;
        }
        // Build the constraint chain under the var node.
        let mut iter = names.iter().rev();
        let (last_axis, last_name) = iter.next().unwrap();
        let mut leaf = PatternNode::tag(last_name.clone());
        for w in &words {
            leaf = leaf.word(w);
        }
        let mut cur = leaf;
        let mut cur_axis = *last_axis;
        for (axis, name) in iter {
            let parent = PatternNode::tag(name.clone());
            cur = match cur_axis {
                Axis::Child => parent.child(cur),
                Axis::Descendant => parent.descendant(cur),
            };
            cur_axis = *axis;
        }
        // Attach to the var node.
        attach_to_var(&mut pattern.root, var, cur, cur_axis);
    }
}

fn attach_to_var(node: &mut PatternNode, var: &str, constraint: PatternNode, axis: Axis) {
    if node.var.as_deref() == Some(var) {
        let mut c = constraint;
        c.edge = match axis {
            Axis::Child => txdb_xml::pattern::PatternEdge::Child,
            Axis::Descendant => txdb_xml::pattern::PatternEdge::Descendant,
        };
        node.children.push(c);
        return;
    }
    for child in &mut node.children {
        attach_to_var(child, var, constraint.clone(), axis);
    }
}

/// Flattens a conjunction into its top-level conjuncts.
fn collect_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::And(a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    fn db_with_doc() -> Database {
        let db = Database::in_memory();
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>",
            ts(1),
        )
        .unwrap();
        db
    }

    #[test]
    fn snapshot_time_folded() {
        let db = db_with_doc();
        let q =
            parse_query(r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#)
                .unwrap();
        let p = plan_query(&db, &q, ts(999)).unwrap();
        match p.sources[0].mode {
            ScanMode::At(t) => assert_eq!(t, Timestamp::from_date(2001, 1, 26)),
            ref other => panic!("{other:?}"),
        }
        assert!(matches!(p.sources[0].docs, DocSel::One(_)));
        assert!(matches!(p.sources[0].strategy, Strategy::Index(_)));
    }

    #[test]
    fn now_arithmetic_folded() {
        let db = db_with_doc();
        let now = Timestamp::from_date(2001, 2, 1);
        let q = parse_query(
            r#"SELECT R FROM doc("guide.com/restaurants")[NOW - 14 DAYS]//restaurant R"#,
        )
        .unwrap();
        let p = plan_query(&db, &q, now).unwrap();
        match p.sources[0].mode {
            ScanMode::At(t) => assert_eq!(t, Timestamp::from_date(2001, 1, 18)),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_doc_planned_empty() {
        let db = db_with_doc();
        let q = parse_query(r#"SELECT R FROM doc("no.such.doc")//r R"#).unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        assert!(matches!(p.sources[0].docs, DocSel::Missing));
    }

    #[test]
    fn wildcard_path_uses_tree_scan() {
        let db = db_with_doc();
        let q = parse_query(r#"SELECT R FROM doc("*")/guide/*/name R"#).unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        assert!(matches!(p.sources[0].strategy, Strategy::Tree(_)));
        assert!(matches!(p.sources[0].docs, DocSel::All));
    }

    #[test]
    fn multi_step_pattern_chain() {
        let db = db_with_doc();
        let q = parse_query(r#"SELECT R FROM doc("*")/guide//restaurant/name R"#).unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        let Strategy::Index(pattern) = &p.sources[0].strategy else {
            panic!("expected index strategy")
        };
        let nodes = pattern.nodes();
        assert_eq!(nodes.len(), 3);
        assert!(nodes[0].at_root, "absolute /guide anchors at root");
        assert_eq!(nodes[0].tag.as_deref(), Some("guide"));
        assert_eq!(nodes[2].tag.as_deref(), Some("name"));
        assert_eq!(nodes[2].var.as_deref(), Some("R"));
        assert!(nodes[2].project);
    }

    #[test]
    fn equality_pushdown_adds_words() {
        let db = db_with_doc();
        let q = parse_query(
            r#"SELECT R FROM doc("*")//restaurant R WHERE R/name = "Napoli" AND R/price < 20"#,
        )
        .unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        let Strategy::Index(pattern) = &p.sources[0].strategy else { panic!() };
        let nodes = pattern.nodes();
        assert_eq!(nodes.len(), 2, "name constraint attached");
        assert_eq!(nodes[1].tag.as_deref(), Some("name"));
        assert_eq!(nodes[1].words, vec!["napoli"]);
        // The `<` predicate is NOT pushed (not an equality with literal).
        assert!(p.filter.is_some(), "filter retained");
    }

    #[test]
    fn aggregate_mixing_rejected() {
        let db = db_with_doc();
        let q = parse_query(r#"SELECT COUNT(R), R FROM doc("*")//r R"#).unwrap();
        assert!(plan_query(&db, &q, ts(1)).is_err());
    }

    #[test]
    fn unknown_variable_rejected() {
        let db = db_with_doc();
        let q = parse_query(r#"SELECT S FROM doc("*")//r R"#).unwrap();
        assert!(plan_query(&db, &q, ts(1)).is_err());
        let q = parse_query(r#"SELECT R FROM doc("*")//r R WHERE X = 1"#).unwrap();
        assert!(plan_query(&db, &q, ts(1)).is_err());
    }

    #[test]
    fn duplicate_variable_rejected() {
        let db = db_with_doc();
        let q = parse_query(r#"SELECT R FROM doc("*")//a R, doc("*")//b R"#).unwrap();
        assert!(plan_query(&db, &q, ts(1)).is_err());
    }

    #[test]
    fn time_lower_bound_narrows_every_interval() {
        let db = db_with_doc();
        let q = parse_query(
            r#"SELECT R FROM doc("*")[EVERY]//restaurant R
               WHERE TIME(R) >= 26/01/2001 AND R/price < 20"#,
        )
        .unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        match p.sources[0].mode {
            ScanMode::Every(iv) => {
                assert_eq!(iv.start, Timestamp::from_date(2001, 1, 26));
                assert!(iv.end == Timestamp::FOREVER);
            }
            ref other => panic!("{other:?}"),
        }
        // Flipped operand order narrows too: t <= TIME(R).
        let q = parse_query(
            r#"SELECT R FROM doc("*")[EVERY]//restaurant R WHERE 26/01/2001 <= TIME(R)"#,
        )
        .unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        assert!(matches!(
            p.sources[0].mode,
            ScanMode::Every(iv) if iv.start == Timestamp::from_date(2001, 1, 26)
        ));
        // Upper bounds must NOT narrow (unsound direction).
        let q = parse_query(
            r#"SELECT R FROM doc("*")[EVERY]//restaurant R WHERE TIME(R) <= 26/01/2001"#,
        )
        .unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        assert!(matches!(
            p.sources[0].mode,
            ScanMode::Every(iv) if iv == txdb_base::Interval::ALL
        ));
        // A bound on a DIFFERENT variable must not narrow this source.
        let q = parse_query(
            r#"SELECT R FROM doc("*")[EVERY]//restaurant R, doc("*")//bar S
               WHERE TIME(S) >= 26/01/2001"#,
        )
        .unwrap();
        let p = plan_query(&db, &q, ts(1)).unwrap();
        assert!(matches!(
            p.sources[0].mode,
            ScanMode::Every(iv) if iv == txdb_base::Interval::ALL
        ));
    }

    #[test]
    fn non_constant_snapshot_time_rejected() {
        let db = db_with_doc();
        let q = parse_query(r#"SELECT R FROM doc("*")[R]//r R"#).unwrap();
        assert!(plan_query(&db, &q, ts(1)).is_err());
    }
}
