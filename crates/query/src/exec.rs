//! Query execution: shared state, expression evaluation and statistics.
//!
//! Since the Volcano refactor the actual row flow lives in
//! [`crate::operators`]: the plan is lowered to a pull-based operator tree
//! (`open`/`next`/`close`) and both [`crate::QueryRequest::run`] and
//! [`crate::QueryRequest::stream`] drive that tree. This module keeps what
//! the operators share: the execution context with its lazy, cached
//! reconstruction (a `COUNT(R)` query over an index scan finishes with
//! zero reconstructions — exactly the paper's Q2 observation that "storage
//! of only deltas of previous document versions does not create
//! performance problems" for aggregate queries), the expression
//! evaluator, [`ExecStats`], and the `EXPLAIN ANALYZE` [`ExplainNode`]
//! tree — which since the refactor maps one-to-one onto the live operator
//! tree, each node metered by its own operator.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use txdb_base::{DocId, Error, Result, Teid, Timestamp, VersionId, Xid};
use txdb_core::ops::lifetime::LifetimeStrategy;
use txdb_core::Database;
use txdb_xml::equality::shallow_eq;
use txdb_xml::similarity;
use txdb_xml::tree::{NodeId, Tree};

use crate::ast::{CmpOp, Expr, Func};
use crate::plan::{Plan, ScanMode};
use crate::result::{OutValue, QueryResult};

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Document versions reconstructed (loaded into the tree cache).
    pub reconstructions: usize,
    /// Completed deltas applied during those reconstructions.
    pub deltas_applied: usize,
    /// Rows produced by the source scans (before filtering).
    pub rows_scanned: usize,
    /// Rows in the final result.
    pub rows_output: usize,
    /// Materialized-version cache hits during execution.
    pub cache_hits: usize,
    /// Materialized-version cache misses during execution.
    pub cache_misses: usize,
}

/// One annotated node of an executed plan tree (`EXPLAIN ANALYZE`).
///
/// Produced by [`crate::QueryRequest::explain`]. Each node reports the
/// wall-clock time spent in its stage, the rows it produced, and the
/// paper's §6 cost metrics attributed to that stage (reconstructions,
/// deltas applied, materialized-version cache traffic, FTI lookups and
/// postings for index scans). Stage counters partition the work: summing
/// a counter over the whole tree reproduces the top-level [`ExecStats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainNode {
    /// Human-readable stage label, e.g. `index scan R: TPatternScan @ t`.
    pub label: String,
    /// Wall-clock time spent in this stage, microseconds.
    pub elapsed_us: u64,
    /// Rows this stage produced.
    pub rows: usize,
    /// Named cost counters attributed to this stage.
    pub counters: Vec<(&'static str, u64)>,
    /// Input stages (leaves are source scans).
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// Renders the tree as indented text, one node per line:
    ///
    /// ```text
    /// project (time=12us rows=3)
    ///   filter (time=840us rows=3 reconstructions=3 ...)
    ///     nested-loop join (1 source) (time=1us rows=3)
    ///       index scan R: TPatternScanAll [...] (time=95us rows=3 fti_lookups=2 ...)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{:indent$}{} (time={}us rows={}",
            "",
            self.label,
            self.elapsed_us,
            self.rows,
            indent = depth * 2
        );
        for (name, v) in &self.counters {
            if *v != 0 {
                let _ = write!(out, " {name}={v}");
            }
        }
        out.push_str(")\n");
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// Sums a named counter over this node and all descendants.
    pub fn counter_total(&self, name: &str) -> u64 {
        let own: u64 = self.counters.iter().filter(|(n, _)| *n == name).map(|(_, v)| *v).sum();
        own + self.children.iter().map(|c| c.counter_total(name)).sum::<u64>()
    }
}

/// Executes an already-built plan (the engine behind [`crate::QueryExt`]):
/// lowers it to an operator tree, drains the resulting
/// [`crate::operators::RowStream`] and materialises a [`QueryResult`].
/// With `explain`, the result carries the [`ExplainNode`] tree read back
/// from the live operators.
pub(crate) fn run_plan_inner(db: &Database, plan: &Plan, explain: bool) -> Result<QueryResult> {
    let mut stream = crate::operators::open_stream(db, plan, explain)?;
    let mut rows = Vec::new();
    for r in &mut stream {
        rows.push(r?);
    }
    Ok(QueryResult { rows, stats: stream.stats(), explain: stream.take_explain() })
}

/// One bound variable in a row.
#[derive(Clone, Debug)]
pub(crate) struct Bound {
    pub(crate) var: String,
    pub(crate) teid: Teid,
    pub(crate) doc: DocId,
    pub(crate) version: VersionId,
}

/// A cached reconstructed document version.
pub(crate) struct CachedDoc {
    pub(crate) tree: Rc<Tree>,
    pub(crate) xids: Rc<HashMap<Xid, NodeId>>,
}

/// Shared execution state: the database handle, the query's `NOW` anchor,
/// the reconstructed-version cache and the run's [`ExecStats`]. One `Ctx`
/// is shared (via `Rc`) by every operator of a lowered tree.
pub(crate) struct Ctx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) now: Timestamp,
    cache: RefCell<HashMap<(DocId, VersionId), Rc<CachedDoc>>>,
    /// Cache misses per document: (count, lowest version requested).
    doc_misses: RefCell<HashMap<DocId, (usize, VersionId)>>,
    pub(crate) stats: RefCell<ExecStats>,
}

impl Ctx<'_> {
    /// Fresh context for one query run.
    pub(crate) fn new(db: &Database, now: Timestamp) -> Ctx<'_> {
        Ctx {
            db,
            now,
            cache: RefCell::new(HashMap::new()),
            doc_misses: RefCell::new(HashMap::new()),
            stats: RefCell::new(ExecStats::default()),
        }
    }

    /// Reconstructed versions currently cached (buffered-memory metric).
    pub(crate) fn cached_trees(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Loads (and caches) one document version; bulk-loads the whole
    /// history of a document once several versions of it are touched
    /// (the incremental §7.3.4 strategy instead of repeated §7.3.3 runs).
    pub(crate) fn tree(&self, doc: DocId, version: VersionId) -> Result<Rc<CachedDoc>> {
        if let Some(c) = self.cache.borrow().get(&(doc, version)) {
            return Ok(c.clone());
        }
        let (misses, lowest) = {
            let mut m = self.doc_misses.borrow_mut();
            let e = m.entry(doc).or_insert((0, version));
            e.0 += 1;
            e.1 = e.1.min(version);
            *e
        };
        if misses >= 3 {
            self.preload_history(doc, lowest)?;
            if let Some(c) = self.cache.borrow().get(&(doc, version)) {
                return Ok(c.clone());
            }
        }
        let (tree, deltas) = self.db.store().version_tree_counted(doc, version)?;
        let cached = Rc::new(CachedDoc { xids: Rc::new(tree.xid_map()), tree: Rc::new(tree) });
        {
            let mut s = self.stats.borrow_mut();
            s.reconstructions += 1;
            s.deltas_applied += deltas;
        }
        self.cache.borrow_mut().insert((doc, version), cached.clone());
        Ok(cached)
    }

    /// Fills the cache with the content versions of `doc` from `from`
    /// upwards by walking the delta chain backwards once (queries that
    /// touch many versions of a document — EVERY sources — pay one
    /// incremental §7.3.4 pass instead of repeated §7.3.3 runs, and a
    /// version floor from the §8 interval rewriting bounds the walk).
    pub(crate) fn preload_history(&self, doc: DocId, from: VersionId) -> Result<()> {
        let entries = self.db.store().versions(doc)?;
        let floor =
            entries.get(from.0 as usize).map(|e| e.ts).unwrap_or(txdb_base::Timestamp::ZERO);
        let history = self.db.doc_history(doc, txdb_base::Interval::from_onwards(floor))?;
        let mut s = self.stats.borrow_mut();
        for dv in history {
            s.reconstructions += 1;
            let key = (doc, dv.version);
            if !self.cache.borrow().contains_key(&key) {
                let cached =
                    Rc::new(CachedDoc { xids: Rc::new(dv.tree.xid_map()), tree: Rc::new(dv.tree) });
                self.cache.borrow_mut().insert(key, cached);
            }
        }
        Ok(())
    }
}

/// Evaluated values.
#[derive(Clone, Debug)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Time(Timestamp),
    Nodes(Vec<NodeV>),
}

/// A node value: a node within a (shared) tree.
#[derive(Clone, Debug)]
pub(crate) struct NodeV {
    teid: Option<Teid>,
    tree: Rc<Tree>,
    node: NodeId,
}

/// Renders the snapshot mode of a scan for explain labels.
pub(crate) fn mode_label(mode: &ScanMode) -> String {
    match mode {
        ScanMode::Current => String::new(),
        ScanMode::At(t) => format!(" @ {t}"),
        ScanMode::Every(iv) => format!(" {iv}"),
    }
}

pub(crate) fn find_bound<'r>(row: &'r [Bound], var: &str) -> Result<&'r Bound> {
    row.iter()
        .find(|b| b.var == var)
        .ok_or_else(|| Error::QueryInvalid(format!("unbound variable `{var}`")))
}

pub(crate) fn eval(ctx: &Ctx<'_>, e: &Expr, row: &[Bound]) -> Result<Value> {
    match e {
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Num(n) => Ok(Value::Num(*n)),
        Expr::Date(t) => Ok(Value::Time(*t)),
        Expr::Now => Ok(Value::Time(ctx.now)),
        Expr::Star => Ok(Value::Num(1.0)),
        Expr::Var(v) => {
            let b = find_bound(row, v)?;
            let cached = ctx.tree(b.doc, b.version)?;
            let node =
                cached.xids.get(&b.teid.xid()).copied().ok_or(Error::NoSuchElement(b.teid.eid))?;
            Ok(Value::Nodes(vec![NodeV { teid: Some(b.teid), tree: cached.tree.clone(), node }]))
        }
        Expr::PathOf { base, path } => {
            let base_v = eval(ctx, base, row)?;
            let Value::Nodes(nodes) = base_v else {
                return Ok(Value::Null);
            };
            let mut out = Vec::new();
            for nv in nodes {
                for hit in path.eval_from(&nv.tree, nv.node) {
                    let teid = nv
                        .teid
                        .map(|t| txdb_base::Eid::new(t.doc(), nv.tree.node(hit).xid).at(t.ts));
                    out.push(NodeV { teid, tree: nv.tree.clone(), node: hit });
                }
            }
            Ok(Value::Nodes(out))
        }
        Expr::TimeShift { base, negative, micros } => match eval(ctx, base, row)? {
            Value::Time(t) => Ok(Value::Time(if *negative {
                t - txdb_base::Duration::from_micros(*micros)
            } else {
                t + txdb_base::Duration::from_micros(*micros)
            })),
            _ => Ok(Value::Null),
        },
        Expr::Func { name, args } => eval_func(ctx, *name, args, row),
        Expr::Cmp { op, lhs, rhs } => {
            let a = eval(ctx, lhs, row)?;
            let b = eval(ctx, rhs, row)?;
            Ok(Value::Bool(compare(*op, &a, &b)))
        }
        Expr::And(a, b) => {
            Ok(Value::Bool(truthy(&eval(ctx, a, row)?) && truthy(&eval(ctx, b, row)?)))
        }
        Expr::Or(a, b) => {
            Ok(Value::Bool(truthy(&eval(ctx, a, row)?) || truthy(&eval(ctx, b, row)?)))
        }
        Expr::Not(inner) => Ok(Value::Bool(!truthy(&eval(ctx, inner, row)?))),
    }
}

fn eval_func(ctx: &Ctx<'_>, name: Func, args: &[Expr], row: &[Bound]) -> Result<Value> {
    match name {
        Func::Count | Func::Sum => {
            Err(Error::QueryInvalid("aggregate used outside the select list".into()))
        }
        Func::Time => {
            // TIME(R): the element's §4 timestamp (time of update of the
            // element or one of its children) in the bound version.
            let v = eval(ctx, &args[0], row)?;
            let Value::Nodes(nodes) = v else { return Ok(Value::Null) };
            let Some(nv) = nodes.first() else { return Ok(Value::Null) };
            Ok(Value::Time(nv.tree.effective_ts(nv.node)))
        }
        Func::CreateTime | Func::DeleteTime => {
            let v = eval(ctx, &args[0], row)?;
            let Value::Nodes(nodes) = v else { return Ok(Value::Null) };
            let Some(teid) = nodes.first().and_then(|n| n.teid) else {
                return Ok(Value::Null);
            };
            let t = if name == Func::CreateTime {
                ctx.db.cre_time(teid, LifetimeStrategy::Index)?
            } else {
                ctx.db.del_time(teid, LifetimeStrategy::Index)?
            };
            Ok(Value::Time(t))
        }
        Func::Current | Func::Previous | Func::Next => {
            let v = eval(ctx, &args[0], row)?;
            let Value::Nodes(nodes) = v else { return Ok(Value::Null) };
            let Some(teid) = nodes.first().and_then(|n| n.teid) else {
                return Ok(Value::Null);
            };
            let target_ts = match name {
                Func::Current => ctx.db.current_ts(teid.eid)?,
                Func::Previous => ctx.db.previous_ts(teid)?,
                Func::Next => ctx.db.next_ts(teid)?,
                _ => unreachable!(),
            };
            let Some(target_ts) = target_ts else { return Ok(Value::Null) };
            let target = teid.eid.at(target_ts);
            match ctx.db.reconstruct(target) {
                Ok(sub) => {
                    ctx.stats.borrow_mut().reconstructions += 1;
                    let tree = Rc::new(sub);
                    let root = tree.root().ok_or_else(|| {
                        Error::Corrupt("reconstructed subtree has no root".into())
                    })?;
                    Ok(Value::Nodes(vec![NodeV { teid: Some(target), tree, node: root }]))
                }
                // The element may not exist in the target version.
                Err(Error::NoSuchElement(_)) => Ok(Value::Null),
                Err(e) => Err(e),
            }
        }
        Func::Diff => {
            let a = eval(ctx, &args[0], row)?;
            let b = eval(ctx, &args[1], row)?;
            let (Some(na), Some(nb)) = (first_node(&a), first_node(&b)) else {
                return Ok(Value::Null);
            };
            let old = na.tree.extract_subtree(na.node);
            let new = nb.tree.extract_subtree(nb.node);
            let t1 = na.teid.map(|t| t.ts).unwrap_or(Timestamp::ZERO);
            let t2 = nb.teid.map(|t| t.ts).unwrap_or(Timestamp::ZERO);
            let script = ctx.db.diff_trees_xml(&old, new, t1, t2)?;
            let tree = Rc::new(script);
            let root = tree.root().ok_or_else(|| Error::Corrupt("diff produced no root".into()))?;
            Ok(Value::Nodes(vec![NodeV { teid: None, tree, node: root }]))
        }
        Func::Similarity => {
            let a = eval(ctx, &args[0], row)?;
            let b = eval(ctx, &args[1], row)?;
            let (Some(na), Some(nb)) = (first_node(&a), first_node(&b)) else {
                return Ok(Value::Null);
            };
            Ok(Value::Num(similarity::similarity(&na.tree, na.node, &nb.tree, nb.node)))
        }
    }
}

fn first_node(v: &Value) -> Option<&NodeV> {
    match v {
        Value::Nodes(ns) => ns.first(),
        _ => None,
    }
}

pub(crate) fn node_text(nv: &NodeV) -> String {
    match nv.tree.node(nv.node).text() {
        Some(t) => t.to_string(),
        None => nv.tree.text_content(nv.node),
    }
}

pub(crate) fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Null => false,
        Value::Nodes(ns) => !ns.is_empty(),
        Value::Num(n) => *n != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Time(_) => true,
    }
}

/// Comparison with XPath-style existential semantics over node sets.
fn compare(op: CmpOp, a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Nodes(ns), other) if !matches!(other, Value::Nodes(_)) => {
            ns.iter().any(|n| compare_scalar_node(op, n, other, false))
        }
        (other, Value::Nodes(ns)) if !matches!(other, Value::Nodes(_)) => {
            ns.iter().any(|n| compare_scalar_node(op, n, other, true))
        }
        (Value::Nodes(xs), Value::Nodes(ys)) => {
            xs.iter().any(|x| ys.iter().any(|y| compare_nodes(op, x, y)))
        }
        _ => compare_scalars(op, a, b),
    }
}

fn compare_nodes(op: CmpOp, x: &NodeV, y: &NodeV) -> bool {
    match op {
        // §7.4: `=` between elements uses shallow value equality.
        CmpOp::Eq => shallow_eq(&x.tree, x.node, &y.tree, y.node),
        CmpOp::Neq => !shallow_eq(&x.tree, x.node, &y.tree, y.node),
        // `==` compares persistent identity.
        CmpOp::Identity => match (x.teid, y.teid) {
            (Some(a), Some(b)) => a.eid == b.eid,
            _ => false,
        },
        // `~` similarity with the default threshold.
        CmpOp::Similar => {
            similarity::similar(&x.tree, x.node, &y.tree, y.node, similarity::DEFAULT_THRESHOLD)
        }
        CmpOp::Contains => node_text(x).to_lowercase().contains(&node_text(y).to_lowercase()),
        // Ordering: compare text (numerically when both numeric).
        _ => compare_scalars(op, &Value::Str(node_text(x)), &Value::Str(node_text(y))),
    }
}

/// Compares a node against a scalar; `flipped` when the scalar is the lhs.
fn compare_scalar_node(op: CmpOp, n: &NodeV, scalar: &Value, flipped: bool) -> bool {
    let text = Value::Str(node_text(n));
    if flipped {
        compare_scalars(op, scalar, &text)
    } else {
        compare_scalars(op, &text, scalar)
    }
}

fn compare_scalars(op: CmpOp, a: &Value, b: &Value) -> bool {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.partial_cmp(y),
        (Value::Time(x), Value::Time(y)) => Some(x.cmp(y)),
        // A bare number against a timestamp compares as raw microseconds
        // (the harness and tests write snapshot times this way).
        (Value::Time(x), Value::Num(y)) => (x.micros() as f64).partial_cmp(y),
        (Value::Num(x), Value::Time(y)) => x.partial_cmp(&(y.micros() as f64)),
        (Value::Time(x), Value::Str(y)) => Timestamp::parse(y).ok().map(|t| x.cmp(&t)),
        (Value::Str(x), Value::Time(y)) => Timestamp::parse(x).ok().map(|t| t.cmp(y)),
        (Value::Str(x), Value::Str(y)) => {
            // Numeric comparison when both parse as numbers.
            match (x.trim().parse::<f64>(), y.trim().parse::<f64>()) {
                (Ok(nx), Ok(ny)) => nx.partial_cmp(&ny),
                _ => Some(x.cmp(y)),
            }
        }
        (Value::Str(x), Value::Num(y)) => {
            x.trim().parse::<f64>().ok().and_then(|v| v.partial_cmp(y))
        }
        (Value::Num(x), Value::Str(y)) => {
            y.trim().parse::<f64>().ok().and_then(|v| x.partial_cmp(&v))
        }
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        (Value::Null, _) | (_, Value::Null) => None,
        _ => None,
    };
    match op {
        CmpOp::Contains => match (a, b) {
            (Value::Str(x), Value::Str(y)) => x.to_lowercase().contains(&y.to_lowercase()),
            _ => false,
        },
        CmpOp::Similar => match (a, b) {
            (Value::Str(x), Value::Str(y)) => {
                let bx: std::collections::HashMap<String, u32> =
                    similarity::tokenize(x).fold(HashMap::new(), |mut m, t| {
                        *m.entry(t).or_default() += 1;
                        m
                    });
                let by: std::collections::HashMap<String, u32> =
                    similarity::tokenize(y).fold(HashMap::new(), |mut m, t| {
                        *m.entry(t).or_default() += 1;
                        m
                    });
                similarity::dice(&bx, &by) >= similarity::DEFAULT_THRESHOLD
            }
            _ => false,
        },
        CmpOp::Identity => false, // identity needs elements
        CmpOp::Eq => ord == Some(Ordering::Equal),
        CmpOp::Neq => matches!(ord, Some(o) if o != Ordering::Equal),
        CmpOp::Lt => ord == Some(Ordering::Less),
        CmpOp::Le => matches!(ord, Some(Ordering::Less | Ordering::Equal)),
        CmpOp::Gt => ord == Some(Ordering::Greater),
        CmpOp::Ge => matches!(ord, Some(Ordering::Greater | Ordering::Equal)),
    }
}

pub(crate) fn to_out(_ctx: &Ctx<'_>, v: Value) -> OutValue {
    match v {
        Value::Null => OutValue::Null,
        Value::Bool(b) => OutValue::Bool(b),
        Value::Num(n) => OutValue::Num(n),
        Value::Str(s) => OutValue::Str(s),
        Value::Time(t) => OutValue::Time(t),
        Value::Nodes(ns) => {
            if ns.is_empty() {
                return OutValue::Null;
            }
            let mut xml = String::new();
            for nv in &ns {
                match nv.tree.node(nv.node).text() {
                    Some(t) => {
                        txdb_xml::serialize::escape_text(t, &mut xml);
                    }
                    None => {
                        xml.push_str(&txdb_xml::serialize::subtree_to_string(&nv.tree, nv.node));
                    }
                }
            }
            OutValue::Xml(xml)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryExt;

    /// Midnight on a January/February 2001 day — the paper's timeline.
    fn jan(d: u32) -> Timestamp {
        Timestamp::from_date(2001, 1, d)
    }
    fn feb(d: u32) -> Timestamp {
        Timestamp::from_date(2001, 2, d)
    }

    /// The Figure 1 restaurant database: versions on 01/01, 15/01, 31/01.
    fn figure1() -> Database {
        let db = Database::in_memory();
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>",
            jan(1),
        )
        .unwrap();
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
             <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>",
            jan(15),
        )
        .unwrap();
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>",
            jan(31),
        )
        .unwrap();
        db
    }

    fn run(db: &Database, q: &str) -> QueryResult {
        db.query(q).at(feb(20)).run().unwrap()
    }

    #[test]
    fn q1_snapshot_listing() {
        let db = figure1();
        let r = run(&db, r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#);
        assert_eq!(r.len(), 2);
        let xml = r.to_xml();
        assert!(xml.contains("<name>Napoli</name>"), "{xml}");
        assert!(xml.contains("<name>Akropolis</name>"), "{xml}");
        assert!(xml.contains("<price>15</price>"), "{xml}");
    }

    #[test]
    fn q2_count_without_reconstruction() {
        let db = figure1();
        let r = run(
            &db,
            r#"SELECT COUNT(R) FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#,
        );
        assert_eq!(r.rows, vec![vec![OutValue::Num(2.0)]]);
        // The paper's Q2 point: no reconstruction needed for aggregates.
        assert_eq!(r.stats.reconstructions, 0, "{:?}", r.stats);
        assert_eq!(r.stats.deltas_applied, 0);
    }

    #[test]
    fn q3_price_history() {
        let db = figure1();
        let r = run(
            &db,
            r#"SELECT TIME(R), R/price
               FROM doc("guide.com/restaurants")[EVERY]//restaurant R
               WHERE R/name = "Napoli""#,
        );
        assert_eq!(r.len(), 3, "{}", r.to_xml());
        let xml = r.to_xml();
        assert!(xml.contains("<price>15</price>"));
        assert!(xml.contains("<price>18</price>"));
        // Row timestamps are the version times.
        assert_eq!(r.rows[0][0], OutValue::Time(jan(1)));
        assert_eq!(r.rows[2][0], OutValue::Time(jan(31)));
    }

    #[test]
    fn current_version_default() {
        let db = figure1();
        let r = run(&db, r#"SELECT R/name FROM doc("guide.com/restaurants")//restaurant R"#);
        assert_eq!(r.len(), 1);
        assert_eq!(r.to_xml(), "<results><result><name>Napoli</name></result></results>");
    }

    #[test]
    fn where_price_filter() {
        // The paper's intro example: restaurants with price < 14.
        let db = figure1();
        let r = run(
            &db,
            r#"SELECT R/name FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R WHERE R/price < 14"#,
        );
        assert_eq!(r.to_xml(), "<results><result><name>Akropolis</name></result></results>");
    }

    #[test]
    fn create_time_predicate() {
        let db = figure1();
        // Restaurants created on/after day 110 (Akropolis, day 115).
        let r = run(
            &db,
            r#"SELECT R/name FROM doc("guide.com/restaurants")[EVERY]//restaurant R
               WHERE CREATETIME(R) >= 11/01/2001"#,
        );
        let xml = r.to_xml();
        assert!(xml.contains("Akropolis"), "{xml}");
        assert!(!xml.contains("Napoli"), "{xml}");
    }

    #[test]
    fn previous_and_current_functions() {
        let db = figure1();
        // The previous version of each current restaurant element.
        let r =
            run(&db, r#"SELECT PREVIOUS(R)/price FROM doc("guide.com/restaurants")//restaurant R"#);
        assert_eq!(r.to_xml(), "<results><result><price>15</price></result></results>");
        // CURRENT of a historical binding.
        let r = run(
            &db,
            r#"SELECT DISTINCT CURRENT(R)/price
               FROM doc("guide.com/restaurants")[EVERY]//restaurant R
               WHERE R/name = "Napoli""#,
        );
        assert_eq!(r.to_xml(), "<results><result><price>18</price></result></results>");
    }

    #[test]
    fn price_increase_join() {
        // §7.4: restaurants that have increased their prices since day 110.
        let db = figure1();
        let r = run(
            &db,
            r#"SELECT R1/name
               FROM doc("guide.com/restaurants")[10/01/2001]//restaurant R1,
                    doc("guide.com/restaurants")//restaurant R2
               WHERE R1/name = R2/name AND R1/price < R2/price"#,
        );
        assert_eq!(r.to_xml(), "<results><result><name>Napoli</name></result></results>");
    }

    #[test]
    fn identity_join() {
        let db = figure1();
        // Same element across time: == compares EIDs.
        let r = run(
            &db,
            r#"SELECT TIME(R1)
               FROM doc("guide.com/restaurants")[01/01/2001]//restaurant R1,
                    doc("guide.com/restaurants")//restaurant R2
               WHERE R1 == R2"#,
        );
        assert_eq!(r.len(), 1, "Napoli then == Napoli now");
    }

    #[test]
    fn similarity_operator() {
        let db = Database::in_memory();
        db.put("a", "<r><name>Napoli</name><price>15</price></r>", jan(1)).unwrap();
        db.put("b", "<r><name>Napoli</name><price>16</price></r>", jan(2)).unwrap();
        db.put("c", "<r><name>Corner Bar</name><menu>beer wine soda</menu></r>", jan(3)).unwrap();
        let r = run(
            &db,
            r#"SELECT R2/name FROM doc("a")//r R1, doc("*")//r R2 WHERE R1 ~ R2 AND NOT R1 == R2"#,
        );
        assert_eq!(r.to_xml(), "<results><result><name>Napoli</name></result></results>");
    }

    #[test]
    fn diff_in_select() {
        let db = figure1();
        let r = run(
            &db,
            r#"SELECT DIFF(R1, R2)
               FROM doc("guide.com/restaurants")[01/01/2001]//restaurant R1,
                    doc("guide.com/restaurants")//restaurant R2
               WHERE R1 == R2"#,
        );
        assert_eq!(r.len(), 1);
        let xml = r.to_xml();
        assert!(xml.contains("<delta"), "{xml}");
        assert!(xml.contains("<old>15</old>"), "{xml}");
        assert!(xml.contains("<new>18</new>"), "{xml}");
    }

    #[test]
    fn contains_and_wildcards() {
        let db = figure1();
        let r = run(
            &db,
            r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]/guide/*/name R WHERE R CONTAINS "apo""#,
        );
        // Napoli and Akropolis both contain "apo" — wait: Akropolis has "
        // ropo"; only Napoli matches "apo"? N-a-p-o-l-i: yes; A-k-r-o-p-o:
        // no "apo". One row.
        assert_eq!(r.len(), 1, "{}", r.to_xml());
    }

    #[test]
    fn sum_aggregate() {
        let db = figure1();
        let r = run(
            &db,
            r#"SELECT SUM(R/price) FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#,
        );
        assert_eq!(r.rows, vec![vec![OutValue::Num(28.0)]]);
        let r =
            run(&db, r#"SELECT COUNT(*) FROM doc("guide.com/restaurants")[EVERY]//restaurant R"#);
        assert_eq!(r.rows, vec![vec![OutValue::Num(4.0)]], "3 Napoli versions + 1 Akropolis");
    }

    #[test]
    fn time_pushdown_prunes_versions_and_reconstructions() {
        // §8 rewriting: TIME(R) >= t restricts the EVERY expansion. The
        // rows must be identical with and without pushdown-visible syntax,
        // but the scan and reconstruction counts shrink.
        let db = figure1();
        let narrowed = run(
            &db,
            r#"SELECT TIME(R), R/price FROM doc("*")[EVERY]//restaurant R
               WHERE R/name = "Napoli" AND TIME(R) >= 20/01/2001"#,
        );
        assert_eq!(narrowed.len(), 1, "{}", narrowed.to_xml());
        assert!(narrowed.to_xml().contains("<price>18</price>"));
        // Only the matching version row was scanned at all.
        assert_eq!(narrowed.stats.rows_scanned, 1, "{:?}", narrowed.stats);
        // The equivalent filter without a recognisable TIME bound scans
        // all three versions.
        let full = run(
            &db,
            r#"SELECT TIME(R), R/price FROM doc("*")[EVERY]//restaurant R
               WHERE R/name = "Napoli" AND NOT TIME(R) < 20/01/2001"#,
        );
        assert_eq!(full.to_xml(), narrowed.to_xml());
        assert_eq!(full.stats.rows_scanned, 3);
        assert!(full.stats.reconstructions >= narrowed.stats.reconstructions);
    }

    #[test]
    fn now_in_where_clause_uses_query_anchor() {
        // Regression: NOW inside WHERE used to evaluate to FOREVER.
        let db = figure1();
        // Napoli changed on 31/01; with NOW = 09/02, "within the last two
        // weeks" includes it; "within the last week" does not.
        let r = db
            .query(
                r#"SELECT R/name FROM doc("*")[EVERY]//restaurant R
                   WHERE TIME(R) >= NOW - 2 WEEKS"#,
            )
            .at(feb(9))
            .run()
            .unwrap();
        assert_eq!(r.to_xml(), "<results><result><name>Napoli</name></result></results>");
        let r = db
            .query(
                r#"SELECT R/name FROM doc("*")[EVERY]//restaurant R
                   WHERE TIME(R) >= NOW - 1 WEEKS"#,
            )
            .at(feb(9))
            .run()
            .unwrap();
        assert!(r.is_empty(), "{}", r.to_xml());
    }

    #[test]
    fn empty_results() {
        let db = figure1();
        let r = run(&db, r#"SELECT R FROM doc("no.such")//x R"#);
        assert!(r.is_empty());
        assert_eq!(r.to_xml(), "<results></results>");
        let r = run(&db, r#"SELECT R FROM doc("guide.com/restaurants")[01/12/2000]//restaurant R"#);
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_after_delete_empty() {
        let db = figure1();
        db.delete("guide.com/restaurants", feb(9)).unwrap();
        let r = run(&db, r#"SELECT R FROM doc("guide.com/restaurants")//restaurant R"#);
        assert!(r.is_empty());
        let r = run(&db, r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#);
        assert_eq!(r.len(), 2, "history still answers");
    }

    #[test]
    fn delete_time_exposed() {
        let db = figure1();
        db.delete("guide.com/restaurants", feb(9)).unwrap();
        let r = run(
            &db,
            r#"SELECT DELETETIME(R) FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R
               WHERE R/name = "Napoli""#,
        );
        assert_eq!(r.rows, vec![vec![OutValue::Time(feb(9))]]);
    }

    #[test]
    fn tree_scan_fallback_agrees_with_index() {
        let db = figure1();
        let a = run(&db, r#"SELECT R/name FROM doc("*")[26/01/2001]//restaurant R"#);
        let b =
            run(&db, r#"SELECT R/name FROM doc("*")[26/01/2001]/guide/*  R WHERE R/name != """#);
        // The wildcard scan binds to the same restaurant elements.
        assert_eq!(a.len(), b.len());
        // And the tree-scan path did reconstruct.
        assert!(b.stats.reconstructions > 0);
    }

    #[test]
    fn tree_scan_warm_cache_reported_in_stats() {
        // The tree-scan fallback prefetches every (doc, version) it will
        // touch into the materialized-version cache; a repeat of the same
        // query is then answered from cache — zero deltas — and the hits
        // show up in ExecStats.
        let db = figure1();
        let q = r#"SELECT R/name FROM doc("*")[EVERY]/guide/* R WHERE R/name != """#;
        let cold = run(&db, q);
        let warm = run(&db, q);
        assert_eq!(cold.to_xml(), warm.to_xml());
        assert!(warm.stats.cache_hits > 0, "{:?}", warm.stats);
        assert_eq!(warm.stats.deltas_applied, 0, "{:?}", warm.stats);
    }

    #[test]
    fn explain_tree_sums_to_exec_stats() {
        // EXPLAIN ANALYZE on a representative pattern + history query:
        // the per-node counters must partition the top-level ExecStats,
        // every node must carry a timing, and the tree must name the
        // index-vs-scan choice.
        let db = figure1();
        let r = db
            .query(
                r#"SELECT TIME(R), R/price
                   FROM doc("guide.com/restaurants")[EVERY]//restaurant R
                   WHERE R/name = "Napoli""#,
            )
            .at(feb(20))
            .explain()
            .run()
            .unwrap();
        assert_eq!(r.len(), 3);
        let tree = r.explain.as_ref().expect("explain() populates the plan tree");
        // Per-stage counters sum to the run totals.
        assert_eq!(tree.counter_total("reconstructions"), r.stats.reconstructions as u64);
        assert_eq!(tree.counter_total("deltas_applied"), r.stats.deltas_applied as u64);
        assert_eq!(tree.counter_total("cache_hits"), r.stats.cache_hits as u64);
        assert_eq!(tree.counter_total("cache_misses"), r.stats.cache_misses as u64);
        // Root is the projection and reports the output rows.
        assert!(tree.label.starts_with("project"), "{}", tree.label);
        assert_eq!(tree.rows, r.stats.rows_output);
        // project → filter → join → index scan.
        let filter = &tree.children[0];
        assert_eq!(filter.label, "filter");
        let join = &filter.children[0];
        assert!(join.label.starts_with("nested-loop join"), "{}", join.label);
        assert_eq!(join.rows, r.stats.rows_scanned);
        let scan = &join.children[0];
        assert!(scan.label.starts_with("index scan R: TPatternScanAll"), "{}", scan.label);
        assert!(scan.counter_total("fti_lookups") > 0, "{scan:?}");
        // The rendering shows one line per node with timings.
        let text = tree.render();
        assert_eq!(text.lines().count(), 4, "{text}");
        assert!(text.lines().all(|l| l.contains("us rows=")), "{text}");
        // Without .explain() the tree is absent.
        let plain = run(&db, r#"SELECT COUNT(*) FROM doc("*")//restaurant R"#);
        assert!(plain.explain.is_none());
    }

    #[test]
    fn explain_tree_scan_labels_reconstruction() {
        let db = figure1();
        let r = db
            .query(r#"SELECT R/name FROM doc("*")[26/01/2001]/guide/* R"#)
            .at(feb(20))
            .explain()
            .run()
            .unwrap();
        let tree = r.explain.unwrap();
        // No filter stage: project → join → tree scan.
        let scan = &tree.children[0].children[0];
        assert!(scan.label.starts_with("tree scan R: reconstruct @ "), "{}", scan.label);
        assert!(scan.counter_total("reconstructions") > 0, "{scan:?}");
        assert_eq!(tree.counter_total("reconstructions"), r.stats.reconstructions as u64);
    }

    #[test]
    fn now_in_snapshot_spec() {
        // §5's relative-time idiom: NOW - 14 DAYS from 09/02/2001 is
        // 26/01/2001, inside the two-restaurant snapshot.
        let db = figure1();
        let r = db
            .query(
                r#"SELECT R/price FROM doc("guide.com/restaurants")[NOW - 14 DAYS]//restaurant R"#,
            )
            .at(feb(9))
            .run()
            .unwrap();
        assert_eq!(r.len(), 2, "{}", r.to_xml());
    }
}
