//! Recursive-descent parser for the temporal query language.

use txdb_base::{Error, Result, Timestamp};
use txdb_xml::path::{Axis, Path, Step, Test};

use crate::ast::{CmpOp, Expr, FromItem, Func, Query, TimeSpec};
use crate::lexer::{lex, Kw, Tok, Token};

/// Parses a query string.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect(&Tok::Eof)?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::QueryParse { offset: self.offset(), message: message.into() }
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect(&Tok::Kw(Kw::Select))?;
        let distinct = self.eat(&Tok::Kw(Kw::Distinct));
        let mut select = vec![self.expr()?];
        while self.eat(&Tok::Comma) {
            select.push(self.expr()?);
        }
        self.expect(&Tok::Kw(Kw::From))?;
        let mut from = vec![self.source_item()?];
        while self.eat(&Tok::Comma) {
            from.push(self.source_item()?);
        }
        let where_clause = if self.eat(&Tok::Kw(Kw::Where)) { Some(self.expr()?) } else { None };
        let limit = if self.eat(&Tok::Kw(Kw::Limit)) {
            match self.bump() {
                Tok::Number(n) => match n.parse::<usize>() {
                    Ok(v) => Some(v),
                    Err(_) => {
                        return Err(self.err(format!("LIMIT expects a whole row count, found {n}")))
                    }
                },
                other => {
                    return Err(self.err(format!("expected row count after LIMIT, found {other:?}")))
                }
            }
        } else {
            None
        };
        Ok(Query { distinct, select, from, where_clause, limit })
    }

    /// `doc("url")` `[timespec]`? path var
    fn source_item(&mut self) -> Result<FromItem> {
        self.expect(&Tok::Kw(Kw::Doc))?;
        self.expect(&Tok::LParen)?;
        let url = match self.bump() {
            Tok::Str(s) => s,
            Tok::Star => "*".to_string(),
            other => return Err(self.err(format!("expected document url string, found {other:?}"))),
        };
        self.expect(&Tok::RParen)?;
        let time = if self.eat(&Tok::LBracket) {
            if self.eat(&Tok::Kw(Kw::Every)) {
                self.expect(&Tok::RBracket)?;
                TimeSpec::Every
            } else {
                let e = self.expr()?;
                self.expect(&Tok::RBracket)?;
                TimeSpec::At(e)
            }
        } else {
            TimeSpec::Current
        };
        let path = self.path_from_source()?;
        let var = match self.bump() {
            Tok::Ident(v) => v,
            other => return Err(self.err(format!("expected variable name, found {other:?}"))),
        };
        Ok(FromItem { url, time, path, var })
    }

    /// A path starting with `/` or `//` right after the doc source.
    fn path_from_source(&mut self) -> Result<Path> {
        let mut steps = Vec::new();
        loop {
            let axis = if self.eat(&Tok::DoubleSlash) {
                Axis::Descendant
            } else if self.eat(&Tok::Slash) {
                Axis::Child
            } else {
                break;
            };
            steps.push(self.path_step(axis)?);
        }
        if steps.is_empty() {
            return Err(self.err("expected a path after the document source"));
        }
        Ok(Path { steps, absolute: true })
    }

    fn path_step(&mut self, axis: Axis) -> Result<Step> {
        match self.bump() {
            Tok::Ident(name) => {
                if name == "text" && self.eat(&Tok::LParen) {
                    self.expect(&Tok::RParen)?;
                    Ok(Step { axis, test: Test::Text })
                } else {
                    Ok(Step { axis, test: Test::Name(name) })
                }
            }
            Tok::Star => Ok(Step { axis, test: Test::AnyElement }),
            other => Err(self.err(format!("expected path step, found {other:?}"))),
        }
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Kw(Kw::Or)) {
            let rhs = self.and_expr()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat(&Tok::Kw(Kw::And)) {
            let rhs = self.not_expr()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Kw(Kw::Not)) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.shift_expr()?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::EqEq => CmpOp::Identity,
            Tok::Neq => CmpOp::Neq,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::Tilde => CmpOp::Similar,
            Tok::Kw(Kw::Contains) => CmpOp::Contains,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.shift_expr()?;
        Ok(Expr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    /// Time arithmetic: `primary (± n UNIT)*`.
    fn shift_expr(&mut self) -> Result<Expr> {
        let mut e = self.postfix_expr()?;
        loop {
            let negative = match self.peek() {
                Tok::Plus => false,
                Tok::Minus => true,
                _ => break,
            };
            self.bump();
            let n: u64 = match self.bump() {
                Tok::Number(n) => {
                    n.parse().map_err(|_| self.err("duration amount must be an integer"))?
                }
                other => return Err(self.err(format!("expected duration amount, found {other:?}"))),
            };
            let micros = match self.bump() {
                Tok::Kw(Kw::Days) => n * 86_400_000_000,
                Tok::Kw(Kw::Weeks) => n * 7 * 86_400_000_000,
                Tok::Kw(Kw::Hours) => n * 3_600_000_000,
                Tok::Kw(Kw::Minutes) => n * 60_000_000,
                Tok::Kw(Kw::Seconds) => n * 1_000_000,
                other => return Err(self.err(format!("expected duration unit, found {other:?}"))),
            };
            e = Expr::TimeShift { base: Box::new(e), negative, micros };
        }
        Ok(e)
    }

    /// Primary optionally followed by a relative path (`R/price`,
    /// `CURRENT(R)/name`, `R//x/text()`).
    fn postfix_expr(&mut self) -> Result<Expr> {
        let base = self.primary()?;
        let mut steps = Vec::new();
        loop {
            let axis = if matches!(self.peek(), Tok::DoubleSlash) {
                self.bump();
                Axis::Descendant
            } else if matches!(self.peek(), Tok::Slash)
                && matches!(self.peek2(), Tok::Ident(_) | Tok::Star)
            {
                self.bump();
                Axis::Child
            } else {
                break;
            };
            steps.push(self.path_step(axis)?);
        }
        if steps.is_empty() {
            Ok(base)
        } else {
            Ok(Expr::PathOf { base: Box::new(base), path: Path { steps, absolute: false } })
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Kw(Kw::Now) => {
                self.bump();
                Ok(Expr::Now)
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Star)
            }
            Tok::Number(first) => {
                self.bump();
                // A date literal is NUMBER / NUMBER / NUMBER.
                if matches!(self.peek(), Tok::Slash) && matches!(self.peek2(), Tok::Number(_)) {
                    self.bump(); // '/'
                    let month = match self.bump() {
                        Tok::Number(m) => m,
                        other => return Err(self.err(format!("expected month, found {other:?}"))),
                    };
                    self.expect(&Tok::Slash)
                        .map_err(|_| self.err("expected `/` in date literal"))?;
                    let year = match self.bump() {
                        Tok::Number(y) => y,
                        other => return Err(self.err(format!("expected year, found {other:?}"))),
                    };
                    let ts = Timestamp::parse(&format!("{first}/{month}/{year}"))?;
                    return Ok(Expr::Date(ts));
                }
                let n: f64 =
                    first.parse().map_err(|_| self.err(format!("bad number `{first}`")))?;
                Ok(Expr::Num(n))
            }
            Tok::Ident(name) => {
                self.bump();
                // `CREATE TIME(R)` / `DELETE TIME(R)` two-word forms.
                let two_word =
                    if name.eq_ignore_ascii_case("create") || name.eq_ignore_ascii_case("delete") {
                        if let Tok::Ident(second) = self.peek() {
                            if second.eq_ignore_ascii_case("time") {
                                let combined = format!("{name}time");
                                self.bump();
                                Some(combined)
                            } else {
                                None
                            }
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                let name = two_word.unwrap_or(name);
                if matches!(self.peek(), Tok::LParen) {
                    let func = match name.to_ascii_uppercase().as_str() {
                        "TIME" => Func::Time,
                        "CREATETIME" | "CREATE_TIME" => Func::CreateTime,
                        "DELETETIME" | "DELETE_TIME" => Func::DeleteTime,
                        "CURRENT" => Func::Current,
                        "PREVIOUS" => Func::Previous,
                        "NEXT" => Func::Next,
                        "DIFF" => Func::Diff,
                        "COUNT" => Func::Count,
                        "SUM" => Func::Sum,
                        "SIMILARITY" => Func::Similarity,
                        other => return Err(self.err(format!("unknown function `{other}`"))),
                    };
                    self.bump(); // '('
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::RParen) {
                        args.push(self.expr()?);
                        while self.eat(&Tok::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    let want = match func {
                        Func::Diff | Func::Similarity => 2,
                        _ => 1,
                    };
                    if args.len() != want {
                        return Err(self.err(format!(
                            "{func:?} takes {want} argument(s), got {}",
                            args.len()
                        )));
                    }
                    Ok(Expr::Func { name: func, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::path::Test;

    #[test]
    fn q1_snapshot_query() {
        // Q1 from the paper (with the snapshot timestamp made concrete).
        let q =
            parse_query(r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#)
                .unwrap();
        assert_eq!(q.select.len(), 1);
        assert!(matches!(q.select[0], Expr::Var(ref v) if v == "R"));
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].url, "guide.com/restaurants");
        assert_eq!(q.from[0].var, "R");
        match &q.from[0].time {
            TimeSpec::At(Expr::Date(ts)) => {
                assert_eq!(*ts, Timestamp::from_date(2001, 1, 26));
            }
            other => panic!("wrong timespec {other:?}"),
        }
        assert_eq!(q.from[0].path.steps.len(), 1);
        assert!(matches!(
            q.from[0].path.steps[0].test,
            Test::Name(ref n) if n == "restaurant"
        ));
    }

    #[test]
    fn q2_aggregate() {
        let q = parse_query(
            r#"SELECT COUNT(R) FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#,
        )
        .unwrap();
        assert!(q.select[0].has_aggregate());
    }

    #[test]
    fn q3_every_with_where() {
        let q = parse_query(
            r#"SELECT TIME(R), R/price
               FROM doc("guide.com/restaurants")[EVERY]//restaurant R
               WHERE R/name = "Napoli""#,
        )
        .unwrap();
        assert!(matches!(q.from[0].time, TimeSpec::Every));
        assert_eq!(q.select.len(), 2);
        match &q.where_clause {
            Some(Expr::Cmp { op: CmpOp::Eq, lhs, rhs }) => {
                assert!(matches!(**lhs, Expr::PathOf { .. }));
                assert!(matches!(**rhs, Expr::Str(ref s) if s == "Napoli"));
            }
            other => panic!("wrong where {other:?}"),
        }
    }

    #[test]
    fn create_time_both_spellings() {
        for q in [
            r#"SELECT R FROM doc("d")//r R WHERE CREATETIME(R) >= 11/01/2001"#,
            r#"SELECT R FROM doc("d")//r R WHERE CREATE TIME(R) >= 11/01/2001"#,
        ] {
            let parsed = parse_query(q).unwrap();
            match parsed.where_clause.unwrap() {
                Expr::Cmp { op: CmpOp::Ge, lhs, .. } => {
                    assert!(matches!(*lhs, Expr::Func { name: Func::CreateTime, .. }));
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn now_arithmetic() {
        let q = parse_query(r#"SELECT R FROM doc("d")[NOW - 14 DAYS]//r R"#).unwrap();
        match &q.from[0].time {
            TimeSpec::At(Expr::TimeShift { base, negative, micros }) => {
                assert!(matches!(**base, Expr::Now));
                assert!(*negative);
                assert_eq!(*micros, 14 * 86_400_000_000);
            }
            other => panic!("{other:?}"),
        }
        // Date + weeks too.
        let q = parse_query(r#"SELECT R FROM doc("d")[26/01/2001 + 2 WEEKS]//r R"#).unwrap();
        assert!(matches!(q.from[0].time, TimeSpec::At(Expr::TimeShift { .. })));
    }

    #[test]
    fn multi_source_join_query() {
        // The §7.4 price-increase query shape.
        let q = parse_query(
            r#"SELECT R1/name
               FROM doc("guide.com/restaurants")[10/01/2001]//restaurant R1,
                    doc("guide.com/restaurants")//restaurant R2
               WHERE R1/name = R2/name AND R1/price < R2/price"#,
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert!(matches!(q.from[0].time, TimeSpec::At(_)));
        assert!(matches!(q.from[1].time, TimeSpec::Current));
        assert!(matches!(q.where_clause, Some(Expr::And(..))));
    }

    #[test]
    fn distinct_current_path() {
        // §6: SELECT DISTINCT CURRENT(R)/name.
        let q = parse_query(r#"SELECT DISTINCT CURRENT(R)/name FROM doc("d")//r R"#).unwrap();
        assert!(q.distinct);
        match &q.select[0] {
            Expr::PathOf { base, path } => {
                assert!(matches!(**base, Expr::Func { name: Func::Current, .. }));
                assert_eq!(path.steps.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn diff_and_similarity() {
        let q =
            parse_query(r#"SELECT DIFF(R1, R2) FROM doc("a")//x R1, doc("b")//x R2 WHERE R1 ~ R2"#)
                .unwrap();
        assert!(matches!(q.select[0], Expr::Func { name: Func::Diff, .. }));
        assert!(matches!(q.where_clause, Some(Expr::Cmp { op: CmpOp::Similar, .. })));
    }

    #[test]
    fn identity_vs_value_equality() {
        let q =
            parse_query(r#"SELECT R1 FROM doc("a")//x R1, doc("a")//x R2 WHERE R1 == R2"#).unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Cmp { op: CmpOp::Identity, .. })));
    }

    #[test]
    fn deep_paths_and_wildcards() {
        let q = parse_query(r#"SELECT R/a//b/text() FROM doc("d")/root/*/item R"#).unwrap();
        match &q.select[0] {
            Expr::PathOf { path, .. } => {
                assert_eq!(path.steps.len(), 3);
                assert!(matches!(path.steps[2].test, Test::Text));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.from[0].path.steps.len(), 3);
        assert!(matches!(q.from[0].path.steps[1].test, Test::AnyElement));
    }

    #[test]
    fn count_star() {
        let q = parse_query(r#"SELECT COUNT(*) FROM doc("d")//r R"#).unwrap();
        match &q.select[0] {
            Expr::Func { name: Func::Count, args } => {
                assert!(matches!(args[0], Expr::Star));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn contains_predicate() {
        let q = parse_query(r#"SELECT R FROM doc("d")//r R WHERE R/name CONTAINS "apol""#).unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Cmp { op: CmpOp::Contains, .. })));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "SELECT",
            "SELECT R",
            "SELECT R FROM",
            r#"SELECT R FROM doc("d") R"#, // missing path
            r#"SELECT R FROM doc(d)//r R"#,
            r#"SELECT R FROM doc("d")//r"#, // missing var
            r#"SELECT BOGUS(R) FROM doc("d")//r R"#,
            r#"SELECT DIFF(R) FROM doc("d")//r R"#, // arity
            r#"SELECT R FROM doc("d")[EVERY//r R"#,
            r#"SELECT R FROM doc("d")//r R WHERE"#,
            r#"SELECT R FROM doc("d")//r R WHERE R ="#,
            r#"SELECT R FROM doc("d")//r R trailing"#,
        ] {
            assert!(parse_query(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn invalid_date_rejected() {
        assert!(parse_query(r#"SELECT R FROM doc("d")[32/01/2001]//r R"#).is_err());
    }
}
