//! The temporal full-text index (§7.2).
//!
//! One inverted list per token. A token is either an element's (lowercased)
//! tag name — a *Name* occurrence — or a word from the element's own
//! attribute keys/values and immediate text children — a *Word* occurrence.
//! Occurrences are attributed to the containing element, exactly what the
//! `PatternScan` join needs.
//!
//! A [`Posting`] covers a half-open **version range** `[from, to)` of its
//! document: it is opened when the occurrence appears and closed by the
//! version (or deletion) that removes it — the paper's chosen alternative,
//! "index the contents of the versions", with version numbers instead of
//! timestamps (§7.1: timestamps live in the delta index). The hierarchical
//! information is the element's *xid-path* (chain of XIDs from the root):
//! persistent XIDs make parent/ancestor tests decidable from two postings
//! alone.
//!
//! The three lookup modes map directly onto ranges:
//!
//! * [`FullTextIndex::lookup`] — postings whose range is still open
//!   (current versions of undeleted documents);
//! * [`FullTextIndex::lookup_t`] — postings whose range contains the
//!   version valid at time *t* (the caller resolves time → version per
//!   document through the delta index);
//! * [`FullTextIndex::lookup_h`] — every posting, all times.
//!
//! The index lives in memory and is maintained incrementally by
//! [`crate::maint::IndexSet`]. Bootstrap no longer requires replaying all
//! of history: [`FullTextIndex::encode_into`] / [`FullTextIndex::decode_from`]
//! serialize the whole index compactly (sorted token dictionary, per-doc
//! posting groups with delta-of-version varints) for the index checkpoint
//! (see [`crate::persist`]), and open-time recovery replays only versions
//! above each document's checkpointed high-water mark.

use std::collections::{HashMap, HashSet};

use txdb_base::obs::{Counter, Registry};
use txdb_base::{DocId, Error, Result, VersionId, Xid};

use crate::persist::{read_u8, read_varint, write_varint};

/// Lookup counters, one per mode — the paper's §6 cost metrics
/// `FTI_lookup`, `FTI_lookup_T` and `FTI_lookup_H`. Registered under
/// `fti.*` when the index is opened with a metrics registry; handles are
/// carried across checkpoint [`install`](crate::maint::IndexSet::install)s
/// so the counts survive index replacement.
#[derive(Clone, Debug, Default)]
pub struct FtiMetrics {
    /// `FTI_lookup` calls (current-version lookups).
    pub lookups: Counter,
    /// `FTI_lookup_T` calls (time-point lookups).
    pub lookups_t: Counter,
    /// `FTI_lookup_H` calls (whole-history lookups).
    pub lookups_h: Counter,
}

impl FtiMetrics {
    /// Metrics registered in `reg` under `fti.*`.
    pub fn registered(reg: &Registry) -> FtiMetrics {
        FtiMetrics {
            lookups: reg.counter("fti.lookup"),
            lookups_t: reg.counter("fti.lookup_t"),
            lookups_h: reg.counter("fti.lookup_h"),
        }
    }
}

/// What kind of occurrence a posting records.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OccKind {
    /// The token is the element's tag name.
    Name,
    /// The token occurs in the element's own text or attributes.
    Word,
}

/// Open upper bound for a posting's version range.
pub const OPEN: u32 = u32::MAX;

/// One posting: a token occurrence in one element over a version range.
#[derive(Clone, Debug)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// The element the occurrence is attributed to.
    pub xid: Xid,
    /// Name or word occurrence.
    pub kind: OccKind,
    /// XIDs from the root down to (and including) `xid` — the
    /// hierarchical-relationship information of §7.2.
    pub path: Box<[Xid]>,
    /// First version (inclusive) the occurrence exists in.
    pub from_version: u32,
    /// First version (exclusive) it no longer exists in; [`OPEN`] while
    /// current.
    pub to_version: u32,
}

impl Posting {
    /// True when the posting is valid in version `v` of its document.
    #[inline]
    pub fn valid_at(&self, v: VersionId) -> bool {
        self.from_version <= v.0 && v.0 < self.to_version
    }

    /// True while the occurrence exists in the current version.
    #[inline]
    pub fn is_open(&self) -> bool {
        self.to_version == OPEN
    }

    /// `self` is the parent element of `other` (same document).
    pub fn is_parent_of(&self, other: &Posting) -> bool {
        self.doc == other.doc
            && other.path.len() >= 2
            && other.path[other.path.len() - 2] == self.xid
    }

    /// `self` is a proper ancestor element of `other` (same document).
    pub fn is_ancestor_of(&self, other: &Posting) -> bool {
        self.doc == other.doc
            && other.path.len() > 1
            && other.path[..other.path.len() - 1].contains(&self.xid)
    }

    /// The two postings describe the same element.
    #[inline]
    pub fn same_element(&self, other: &Posting) -> bool {
        self.doc == other.doc && self.xid == other.xid
    }
}

/// One token's postings within one document. Postings are appended in
/// version order (maintenance processes versions monotonically), so
/// `from_version` is non-decreasing — snapshot lookups binary-search the
/// prefix. `open` lists the indices of still-open postings, so
/// current-version lookups never touch closed history (the "additional
/// access structures" §7.2 anticipates: without it, every lookup scans a
/// posting list that grows with churn forever).
#[derive(Default)]
struct DocPostings {
    postings: Vec<Posting>,
    open: Vec<u32>,
}

/// One token's inverted list, partitioned by document so that
/// document-scoped lookups (and selectivity-ordered pattern evaluation)
/// never touch other documents' postings.
#[derive(Default)]
struct TokenList {
    by_doc: HashMap<DocId, DocPostings>,
    total: usize,
}

/// An open posting's address: token, occurrence kind, index into the
/// per-doc posting vector. Maintenance only appends, so indices stay
/// stable between mutations; the one operation that compacts a posting
/// vector ([`FullTextIndex::purge_below`]) remaps these references.
type OpenRef = (String, OccKind, usize);

/// The temporal full-text index.
#[derive(Default)]
pub struct FullTextIndex {
    lists: HashMap<String, TokenList>,
    /// Open postings per (doc, element).
    open: HashMap<(DocId, Xid), Vec<OpenRef>>,
    /// Per-mode lookup counters (shared with the registry when attached).
    metrics: FtiMetrics,
}

impl FullTextIndex {
    /// Fresh empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the metric handles (used to share counters with a store's
    /// registry, and to carry them across checkpoint installs).
    pub fn set_metrics(&mut self, metrics: FtiMetrics) {
        self.metrics = metrics;
    }

    /// The index's metric handles.
    pub fn metrics(&self) -> &FtiMetrics {
        &self.metrics
    }

    /// Opens a posting at `version` for `(doc, xid)` with the given token.
    pub fn open_posting(
        &mut self,
        token: &str,
        doc: DocId,
        xid: Xid,
        kind: OccKind,
        path: &[Xid],
        version: VersionId,
    ) {
        let list = self.lists.entry(token.to_string()).or_default();
        list.total += 1;
        let per_doc = list.by_doc.entry(doc).or_default();
        let idx = per_doc.postings.len();
        debug_assert!(per_doc.postings.last().is_none_or(|p| p.from_version <= version.0));
        per_doc.postings.push(Posting {
            doc,
            xid,
            kind,
            path: path.into(),
            from_version: version.0,
            to_version: OPEN,
        });
        per_doc.open.push(idx as u32);
        self.open.entry((doc, xid)).or_default().push((token.to_string(), kind, idx));
    }

    /// Closes the open posting for `(doc, xid, token, kind)` at `version`
    /// (the first version in which the occurrence no longer exists).
    /// Returns true if an open posting was found.
    pub fn close_posting(
        &mut self,
        token: &str,
        doc: DocId,
        xid: Xid,
        kind: OccKind,
        version: VersionId,
    ) -> bool {
        let Some(entries) = self.open.get_mut(&(doc, xid)) else { return false };
        let Some(pos) = entries.iter().position(|(t, k, _)| t == token && *k == kind) else {
            return false;
        };
        let (t, _, idx) = entries.swap_remove(pos);
        if entries.is_empty() {
            self.open.remove(&(doc, xid));
        }
        let per_doc = self
            .lists
            .get_mut(&t)
            .expect("list exists")
            .by_doc
            .get_mut(&doc)
            .expect("doc list exists");
        let p = &mut per_doc.postings[idx];
        debug_assert!(p.is_open());
        p.to_version = version.0;
        per_doc.open.retain(|&i| i != idx as u32);
        true
    }

    /// Closes *every* open posting of a document at `version` (document
    /// deletion).
    pub fn close_document(&mut self, doc: DocId, version: VersionId) {
        let keys: Vec<(DocId, Xid)> =
            self.open.keys().filter(|(d, _)| *d == doc).copied().collect();
        for key in keys {
            if let Some(entries) = self.open.remove(&key) {
                for (t, _, idx) in entries {
                    let per_doc = self
                        .lists
                        .get_mut(&t)
                        .expect("list exists")
                        .by_doc
                        .get_mut(&doc)
                        .expect("doc list exists");
                    per_doc.postings[idx].to_version = version.0;
                    per_doc.open.retain(|&i| i != idx as u32);
                }
            }
        }
    }

    /// The open postings of one element: (token, kind). Used by maintenance
    /// to diff old vs new occurrence sets.
    pub fn open_tokens(&self, doc: DocId, xid: Xid) -> Vec<(String, OccKind)> {
        self.open
            .get(&(doc, xid))
            .map(|v| v.iter().map(|(t, k, _)| (t.clone(), *k)).collect())
            .unwrap_or_default()
    }

    /// The path recorded on the open postings of one element (all open
    /// postings of an element share it). Borrowed straight from the
    /// posting — maintenance calls this once per affected element, and
    /// cloning a path per call was pure overhead.
    pub fn open_path(&self, doc: DocId, xid: Xid) -> Option<&[Xid]> {
        let (t, _, idx) = self.open.get(&(doc, xid))?.first()?;
        Some(&self.lists[t.as_str()].by_doc[&doc].postings[*idx].path)
    }

    /// The total posting count of a token (selectivity estimate for the
    /// pattern-node evaluation order).
    pub fn list_len(&self, token: &str) -> usize {
        self.lists.get(token).map(|l| l.total).unwrap_or(0)
    }

    /// The per-doc posting groups of a token, restricted to `docs` when
    /// given.
    fn doc_groups<'a>(
        &'a self,
        token: &str,
        docs: Option<&HashSet<DocId>>,
    ) -> Vec<&'a DocPostings> {
        let Some(list) = self.lists.get(token) else {
            return Vec::new();
        };
        match docs {
            Some(set) => set.iter().filter_map(|d| list.by_doc.get(d)).collect(),
            None => list.by_doc.values().collect(),
        }
    }

    /// `FTI_lookup(word)` — occurrences in current versions of undeleted
    /// documents (§7.2).
    pub fn lookup<'a>(&'a self, token: &str, kind: OccKind) -> Vec<&'a Posting> {
        self.lookup_scoped(token, kind, None)
    }

    /// `FTI_lookup` restricted to a document set.
    pub fn lookup_scoped<'a>(
        &'a self,
        token: &str,
        kind: OccKind,
        docs: Option<&HashSet<DocId>>,
    ) -> Vec<&'a Posting> {
        self.open_cursor(token, kind, docs).collect()
    }

    /// Cursor form of [`FullTextIndex::lookup`]: a lazy iterator over the
    /// open postings. Only the open access lists are touched — cost is
    /// O(postings consumed), independent of history length, and a caller
    /// that stops early (pattern intersection emptied, LIMIT satisfied)
    /// never pays for the rest of the list.
    pub fn open_cursor<'a>(
        &'a self,
        token: &str,
        kind: OccKind,
        docs: Option<&HashSet<DocId>>,
    ) -> OpenCursor<'a> {
        self.metrics.lookups.inc();
        OpenCursor { groups: self.doc_groups(token, docs).into_iter(), cur: None, pos: 0, kind }
    }

    /// `FTI_lookup_T(word, t)` — occurrences valid at time *t*. The caller
    /// resolves the version valid at *t* per document (through the delta
    /// index, which maps version numbers to timestamps); documents that did
    /// not exist at *t* resolve to `None`.
    pub fn lookup_t<'a>(
        &'a self,
        token: &str,
        kind: OccKind,
        version_at: impl FnMut(DocId) -> Option<VersionId>,
    ) -> Vec<&'a Posting> {
        self.lookup_t_scoped(token, kind, None, version_at)
    }

    /// `FTI_lookup_T` restricted to a document set.
    pub fn lookup_t_scoped<'a>(
        &'a self,
        token: &str,
        kind: OccKind,
        docs: Option<&HashSet<DocId>>,
        version_at: impl FnMut(DocId) -> Option<VersionId>,
    ) -> Vec<&'a Posting> {
        self.snapshot_cursor(token, kind, docs, version_at).collect()
    }

    /// Cursor form of [`FullTextIndex::lookup_t`]. The timestamp predicate
    /// is pushed into the cursor: per document, `from_version` is
    /// non-decreasing, so a binary search bounds the candidate prefix and
    /// postings past the partition point are never visited.
    pub fn snapshot_cursor<'a, F>(
        &'a self,
        token: &str,
        kind: OccKind,
        docs: Option<&HashSet<DocId>>,
        version_at: F,
    ) -> SnapshotCursor<'a, F>
    where
        F: FnMut(DocId) -> Option<VersionId>,
    {
        self.metrics.lookups_t.inc();
        SnapshotCursor {
            groups: self.doc_groups(token, docs).into_iter(),
            cur: None,
            pos: 0,
            kind,
            version_at,
        }
    }

    /// `FTI_lookup_H(word)` — every posting over the whole history (§7.2).
    pub fn lookup_h<'a>(&'a self, token: &str, kind: OccKind) -> Vec<&'a Posting> {
        self.lookup_h_scoped(token, kind, None)
    }

    /// `FTI_lookup_H` restricted to a document set.
    pub fn lookup_h_scoped<'a>(
        &'a self,
        token: &str,
        kind: OccKind,
        docs: Option<&HashSet<DocId>>,
    ) -> Vec<&'a Posting> {
        self.history_cursor(token, kind, docs).collect()
    }

    /// Cursor form of [`FullTextIndex::lookup_h`]: lazily yields every
    /// posting of the token over the whole history.
    pub fn history_cursor<'a>(
        &'a self,
        token: &str,
        kind: OccKind,
        docs: Option<&HashSet<DocId>>,
    ) -> HistoryCursor<'a> {
        self.metrics.lookups_h.inc();
        HistoryCursor { groups: self.doc_groups(token, docs).into_iter(), cur: None, kind }
    }

    /// Number of postings (index-size metric for E7).
    pub fn posting_count(&self) -> usize {
        self.lists.values().map(|l| l.total).sum()
    }

    /// Number of distinct tokens.
    pub fn token_count(&self) -> usize {
        self.lists.len()
    }

    /// Shrinks a document's posting lists after a vacuum: every *closed*
    /// posting whose range ended at or before `horizon` (the first version
    /// that survived the purge) is dropped in place. Such postings are
    /// unreachable — current lookups only walk open postings, and snapshot
    /// lookups can no longer resolve a purged version, so any resolvable
    /// `v >= horizon` fails `v < to_version`. Whole-history lookups lose
    /// the purged occurrences, which is exactly what vacuuming history
    /// means. Returns the number of postings removed.
    ///
    /// Surviving postings are compacted, so the per-doc indices held by
    /// `open` lists and the open-posting map are remapped; open postings
    /// themselves are never removed (their range has no upper bound).
    pub fn purge_below(&mut self, doc: DocId, horizon: u32) -> usize {
        let mut removed = 0usize;
        let open_map = &mut self.open;
        self.lists.retain(|token, list| {
            let Some(g) = list.by_doc.get_mut(&doc) else { return true };
            let before = g.postings.len();
            g.postings.retain(|p| p.to_version == OPEN || p.to_version > horizon);
            let dropped = before - g.postings.len();
            if dropped == 0 {
                return true;
            }
            removed += dropped;
            list.total -= dropped;
            // Compaction renumbered the survivors: rebuild the open list
            // and patch the open-map references for this token.
            g.open.clear();
            for (idx, p) in g.postings.iter().enumerate() {
                if !p.is_open() {
                    continue;
                }
                g.open.push(idx as u32);
                if let Some(entries) = open_map.get_mut(&(doc, p.xid)) {
                    for e in entries.iter_mut() {
                        if e.0 == *token && e.1 == p.kind {
                            e.2 = idx;
                        }
                    }
                }
            }
            if g.postings.is_empty() {
                list.by_doc.remove(&doc);
            }
            !list.by_doc.is_empty()
        });
        removed
    }

    /// Removes every trace of a document (postings, open lists, open-map
    /// entries). Used when a checkpointed image of the document is stale
    /// and the document must be rebuilt by full replay.
    pub fn drop_document(&mut self, doc: DocId) {
        self.lists.retain(|_, list| {
            if let Some(g) = list.by_doc.remove(&doc) {
                list.total -= g.postings.len();
            }
            !list.by_doc.is_empty()
        });
        self.open.retain(|(d, _), _| *d != doc);
    }

    /// Serializes the index: a sorted token dictionary, and per token the
    /// per-document posting groups with `from_version` delta-encoded as
    /// varints (postings are stored in `from_version` order, so deltas are
    /// small). `to_version` is written as `0` for [`OPEN`], else
    /// `to - from + 1` — closed ranges are short-lived in practice.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut tokens: Vec<(&String, &TokenList)> = self.lists.iter().collect();
        tokens.sort_by_key(|(t, _)| t.as_str());
        write_varint(out, tokens.len() as u64);
        for (token, list) in tokens {
            write_varint(out, token.len() as u64);
            out.extend_from_slice(token.as_bytes());
            let mut groups: Vec<(&DocId, &DocPostings)> = list.by_doc.iter().collect();
            groups.sort_by_key(|(d, _)| d.0);
            write_varint(out, groups.len() as u64);
            for (doc, g) in groups {
                write_varint(out, doc.0 as u64);
                write_varint(out, g.postings.len() as u64);
                let mut prev_from = 0u32;
                for p in &g.postings {
                    write_varint(out, (p.from_version - prev_from) as u64);
                    prev_from = p.from_version;
                    let to = if p.to_version == OPEN {
                        0
                    } else {
                        (p.to_version - p.from_version) as u64 + 1
                    };
                    write_varint(out, to);
                    write_varint(out, p.xid.0);
                    out.push(match p.kind {
                        OccKind::Name => 0,
                        OccKind::Word => 1,
                    });
                    write_varint(out, p.path.len() as u64);
                    for x in p.path.iter() {
                        write_varint(out, x.0);
                    }
                }
            }
        }
    }

    /// Deserializes an index written by [`FullTextIndex::encode_into`],
    /// rebuilding the open-posting access structures from the postings
    /// whose range is still open. Consumes its portion of `input`.
    pub fn decode_from(input: &mut &[u8]) -> Result<FullTextIndex> {
        let mut fti = FullTextIndex::new();
        let n_tokens = read_varint(input)? as usize;
        for _ in 0..n_tokens {
            let len = read_varint(input)? as usize;
            if input.len() < len {
                return Err(Error::Corrupt("fti checkpoint: truncated token".into()));
            }
            let (head, rest) = input.split_at(len);
            *input = rest;
            let token = String::from_utf8(head.to_vec())
                .map_err(|_| Error::Corrupt("fti checkpoint: token not UTF-8".into()))?;
            let list = fti.lists.entry(token.clone()).or_default();
            let n_docs = read_varint(input)? as usize;
            for _ in 0..n_docs {
                let doc = DocId(
                    u32::try_from(read_varint(input)?)
                        .map_err(|_| Error::Corrupt("fti checkpoint: doc id overflow".into()))?,
                );
                let n_postings = read_varint(input)? as usize;
                let per_doc = list.by_doc.entry(doc).or_default();
                let mut prev_from = 0u32;
                for _ in 0..n_postings {
                    let from = prev_from
                        .checked_add(u32::try_from(read_varint(input)?).map_err(|_| {
                            Error::Corrupt("fti checkpoint: version overflow".into())
                        })?)
                        .ok_or_else(|| Error::Corrupt("fti checkpoint: version overflow".into()))?;
                    prev_from = from;
                    let to_raw = read_varint(input)?;
                    let to = if to_raw == 0 {
                        OPEN
                    } else {
                        from.checked_add(
                            u32::try_from(to_raw - 1).map_err(|_| {
                                Error::Corrupt("fti checkpoint: range overflow".into())
                            })?,
                        )
                        .ok_or_else(|| Error::Corrupt("fti checkpoint: range overflow".into()))?
                    };
                    let xid = Xid(read_varint(input)?);
                    let kind = match read_u8(input)? {
                        0 => OccKind::Name,
                        1 => OccKind::Word,
                        x => {
                            return Err(Error::Corrupt(format!(
                                "fti checkpoint: bad occurrence kind {x}"
                            )))
                        }
                    };
                    let path_len = read_varint(input)? as usize;
                    if path_len > input.len() {
                        return Err(Error::Corrupt("fti checkpoint: truncated path".into()));
                    }
                    let mut path = Vec::with_capacity(path_len);
                    for _ in 0..path_len {
                        path.push(Xid(read_varint(input)?));
                    }
                    let idx = per_doc.postings.len();
                    per_doc.postings.push(Posting {
                        doc,
                        xid,
                        kind,
                        path: path.into(),
                        from_version: from,
                        to_version: to,
                    });
                    list.total += 1;
                    if to == OPEN {
                        per_doc.open.push(idx as u32);
                        fti.open.entry((doc, xid)).or_default().push((token.clone(), kind, idx));
                    }
                }
            }
        }
        Ok(fti)
    }

    /// Approximate memory footprint in bytes (E7 index-size metric).
    pub fn approx_bytes(&self) -> usize {
        self.lists
            .iter()
            .map(|(t, l)| {
                t.len()
                    + 48
                    + l.by_doc
                        .values()
                        .flat_map(|g| g.postings.iter())
                        .map(|p| std::mem::size_of::<Posting>() + p.path.len() * 8)
                        .sum::<usize>()
                    + l.by_doc.values().map(|g| 48 + g.open.len() * 4).sum::<usize>()
            })
            .sum::<usize>()
            + self.open.len() * 64
    }
}

/// Lazy `FTI_lookup` cursor over a token's open postings, created by
/// [`FullTextIndex::open_cursor`]. Pulls one posting per `next()`; a
/// caller that stops early never touches the remaining access lists.
pub struct OpenCursor<'a> {
    groups: std::vec::IntoIter<&'a DocPostings>,
    cur: Option<&'a DocPostings>,
    pos: usize,
    kind: OccKind,
}

impl<'a> Iterator for OpenCursor<'a> {
    type Item = &'a Posting;

    fn next(&mut self) -> Option<&'a Posting> {
        loop {
            if let Some(g) = self.cur {
                while self.pos < g.open.len() {
                    let p = &g.postings[g.open[self.pos] as usize];
                    self.pos += 1;
                    if p.kind == self.kind {
                        return Some(p);
                    }
                }
                self.cur = None;
            }
            self.cur = Some(self.groups.next()?);
            self.pos = 0;
        }
    }
}

/// Lazy `FTI_lookup_T` cursor, created by
/// [`FullTextIndex::snapshot_cursor`]. The snapshot version is resolved
/// once per document group and the non-decreasing `from_version` order is
/// exploited to bound each group by binary search before iteration — the
/// timestamp predicate is evaluated inside the cursor, not by the caller.
pub struct SnapshotCursor<'a, F> {
    groups: std::vec::IntoIter<&'a DocPostings>,
    cur: Option<(&'a [Posting], u32)>,
    pos: usize,
    kind: OccKind,
    version_at: F,
}

impl<'a, F: FnMut(DocId) -> Option<VersionId>> Iterator for SnapshotCursor<'a, F> {
    type Item = &'a Posting;

    fn next(&mut self) -> Option<&'a Posting> {
        loop {
            if let Some((slice, v)) = self.cur {
                while self.pos < slice.len() {
                    let p = &slice[self.pos];
                    self.pos += 1;
                    if p.kind == self.kind && v < p.to_version {
                        return Some(p);
                    }
                }
                self.cur = None;
            }
            let g = self.groups.next()?;
            let Some(first) = g.postings.first() else { continue };
            let Some(v) = (self.version_at)(first.doc) else { continue };
            let end = g.postings.partition_point(|p| p.from_version <= v.0);
            self.cur = Some((&g.postings[..end], v.0));
            self.pos = 0;
        }
    }
}

/// Lazy `FTI_lookup_H` cursor over a token's whole history, created by
/// [`FullTextIndex::history_cursor`].
pub struct HistoryCursor<'a> {
    groups: std::vec::IntoIter<&'a DocPostings>,
    cur: Option<std::slice::Iter<'a, Posting>>,
    kind: OccKind,
}

impl<'a> Iterator for HistoryCursor<'a> {
    type Item = &'a Posting;

    fn next(&mut self) -> Option<&'a Posting> {
        loop {
            if let Some(it) = self.cur.as_mut() {
                for p in it {
                    if p.kind == self.kind {
                        return Some(p);
                    }
                }
                self.cur = None;
            }
            self.cur = Some(self.groups.next()?.postings.iter());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u32) -> DocId {
        DocId(n)
    }
    fn x(n: u64) -> Xid {
        Xid(n)
    }
    fn v(n: u32) -> VersionId {
        VersionId(n)
    }

    #[test]
    fn open_lookup_close_cycle() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("napoli", d(1), x(3), OccKind::Word, &[x(1), x(2), x(3)], v(0));
        assert_eq!(fti.lookup("napoli", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("napoli", OccKind::Name).len(), 0);
        assert!(fti.close_posting("napoli", d(1), x(3), OccKind::Word, v(2)));
        assert_eq!(fti.lookup("napoli", OccKind::Word).len(), 0);
        // Historical lookups still see it within [0, 2).
        let got = fti.lookup_t("napoli", OccKind::Word, |_| Some(v(1)));
        assert_eq!(got.len(), 1);
        let got = fti.lookup_t("napoli", OccKind::Word, |_| Some(v(2)));
        assert_eq!(got.len(), 0);
        assert_eq!(fti.lookup_h("napoli", OccKind::Word).len(), 1);
        // Double close is a no-op-false.
        assert!(!fti.close_posting("napoli", d(1), x(3), OccKind::Word, v(3)));
    }

    #[test]
    fn name_and_word_occurrences_distinct() {
        let mut fti = FullTextIndex::new();
        // <restaurant> element named "restaurant" containing word "restaurant".
        fti.open_posting("restaurant", d(1), x(2), OccKind::Name, &[x(1), x(2)], v(0));
        fti.open_posting("restaurant", d(1), x(2), OccKind::Word, &[x(1), x(2)], v(0));
        assert_eq!(fti.lookup("restaurant", OccKind::Name).len(), 1);
        assert_eq!(fti.lookup("restaurant", OccKind::Word).len(), 1);
        assert!(fti.close_posting("restaurant", d(1), x(2), OccKind::Word, v(1)));
        assert_eq!(fti.lookup("restaurant", OccKind::Name).len(), 1, "name survives");
    }

    #[test]
    fn relationships_from_paths() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("guide", d(1), x(1), OccKind::Name, &[x(1)], v(0));
        fti.open_posting("restaurant", d(1), x(2), OccKind::Name, &[x(1), x(2)], v(0));
        fti.open_posting("name", d(1), x(3), OccKind::Name, &[x(1), x(2), x(3)], v(0));
        let g = &fti.lookup("guide", OccKind::Name)[0];
        let r = &fti.lookup("restaurant", OccKind::Name)[0];
        let n = &fti.lookup("name", OccKind::Name)[0];
        assert!(g.is_parent_of(r));
        assert!(!g.is_parent_of(n));
        assert!(g.is_ancestor_of(n));
        assert!(g.is_ancestor_of(r));
        assert!(r.is_parent_of(n));
        assert!(!n.is_ancestor_of(g));
        assert!(!r.same_element(n));
    }

    #[test]
    fn cross_document_relationships_never_hold() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("a", d(1), x(1), OccKind::Name, &[x(1)], v(0));
        fti.open_posting("b", d(2), x(2), OccKind::Name, &[x(1), x(2)], v(0));
        let a = &fti.lookup("a", OccKind::Name)[0];
        let b = &fti.lookup("b", OccKind::Name)[0];
        assert!(!a.is_parent_of(b));
        assert!(!a.is_ancestor_of(b));
    }

    #[test]
    fn close_document_closes_everything() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("a", d(1), x(1), OccKind::Name, &[x(1)], v(0));
        fti.open_posting("w", d(1), x(1), OccKind::Word, &[x(1)], v(0));
        fti.open_posting("a", d(2), x(1), OccKind::Name, &[x(1)], v(0));
        fti.close_document(d(1), v(3));
        assert_eq!(fti.lookup("a", OccKind::Name).len(), 1, "doc 2 untouched");
        assert_eq!(fti.lookup("w", OccKind::Word).len(), 0);
        assert_eq!(fti.lookup_t("w", OccKind::Word, |_| Some(v(2))).len(), 1);
    }

    #[test]
    fn lookup_t_per_document_versions() {
        let mut fti = FullTextIndex::new();
        // doc 1 has the word in versions [0, 5); doc 2 in [3, OPEN).
        fti.open_posting("w", d(1), x(1), OccKind::Word, &[x(1)], v(0));
        fti.close_posting("w", d(1), x(1), OccKind::Word, v(5));
        fti.open_posting("w", d(2), x(1), OccKind::Word, &[x(1)], v(3));
        // At a time where doc1 is at v4 and doc2 at v2:
        let got =
            fti.lookup_t("w", OccKind::Word, |doc| Some(if doc == d(1) { v(4) } else { v(2) }));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].doc, d(1));
        // Doc without a version at t is excluded.
        let got =
            fti.lookup_t("w", OccKind::Word, |doc| if doc == d(2) { Some(v(4)) } else { None });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].doc, d(2));
    }

    #[test]
    fn open_tokens_and_path() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("name", d(1), x(3), OccKind::Name, &[x(1), x(3)], v(0));
        fti.open_posting("napoli", d(1), x(3), OccKind::Word, &[x(1), x(3)], v(0));
        let mut toks = fti.open_tokens(d(1), x(3));
        toks.sort();
        assert_eq!(
            toks,
            vec![("name".to_string(), OccKind::Name), ("napoli".to_string(), OccKind::Word)]
        );
        assert_eq!(fti.open_path(d(1), x(3)).unwrap(), &[x(1), x(3)]);
        assert!(fti.open_path(d(1), x(9)).is_none());
    }

    #[test]
    fn stats_counters() {
        let mut fti = FullTextIndex::new();
        assert_eq!(fti.posting_count(), 0);
        fti.open_posting("a", d(1), x(1), OccKind::Name, &[x(1)], v(0));
        fti.open_posting("b", d(1), x(1), OccKind::Word, &[x(1)], v(0));
        assert_eq!(fti.posting_count(), 2);
        assert_eq!(fti.token_count(), 2);
        assert!(fti.approx_bytes() > 0);
    }

    #[test]
    fn encode_decode_round_trip_preserves_lookups() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("guide", d(1), x(1), OccKind::Name, &[x(1)], v(0));
        fti.open_posting("napoli", d(1), x(3), OccKind::Word, &[x(1), x(2), x(3)], v(0));
        fti.close_posting("napoli", d(1), x(3), OccKind::Word, v(4));
        fti.open_posting("roma", d(1), x(3), OccKind::Word, &[x(1), x(2), x(3)], v(4));
        fti.open_posting("napoli", d(2), x(7), OccKind::Word, &[x(7)], v(2));
        let mut blob = Vec::new();
        fti.encode_into(&mut blob);
        let mut cursor = blob.as_slice();
        let back = FullTextIndex::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty(), "decode consumed everything");
        assert_eq!(back.posting_count(), fti.posting_count());
        assert_eq!(back.token_count(), fti.token_count());
        // Open/current lookups survive (the rebuilt open structures work).
        assert_eq!(back.lookup("napoli", OccKind::Word).len(), 1);
        assert_eq!(back.lookup("roma", OccKind::Word).len(), 1);
        // Snapshot + history lookups survive.
        assert_eq!(back.lookup_t("napoli", OccKind::Word, |_| Some(v(1))).len(), 1);
        assert_eq!(back.lookup_h("napoli", OccKind::Word).len(), 2);
        // Paths and relationships survive.
        let g = &back.lookup("guide", OccKind::Name)[0];
        let r = &back.lookup("roma", OccKind::Word)[0];
        assert!(g.is_ancestor_of(r));
        // The rebuilt index is maintainable: close through the open map.
        let mut back = back;
        assert!(back.close_posting("roma", d(1), x(3), OccKind::Word, v(9)));
        assert_eq!(back.lookup("roma", OccKind::Word).len(), 0);
    }

    #[test]
    fn decode_rejects_garbage() {
        for blob in [vec![0xffu8; 3], vec![2, 1, b'a', 1, 1], vec![1, 200]] {
            let mut cursor = blob.as_slice();
            assert!(FullTextIndex::decode_from(&mut cursor).is_err(), "garbage {blob:?} decoded");
        }
    }

    #[test]
    fn drop_document_removes_all_traces() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("w", d(1), x(1), OccKind::Word, &[x(1)], v(0));
        fti.open_posting("w", d(2), x(1), OccKind::Word, &[x(1)], v(0));
        fti.close_posting("w", d(1), x(1), OccKind::Word, v(1));
        fti.open_posting("only1", d(1), x(2), OccKind::Word, &[x(1), x(2)], v(1));
        fti.drop_document(d(1));
        assert_eq!(fti.lookup_h("w", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup_h("w", OccKind::Word)[0].doc, d(2));
        assert_eq!(fti.list_len("only1"), 0, "token emptied by the drop vanishes");
        assert!(fti.open_tokens(d(1), x(2)).is_empty());
        assert_eq!(fti.posting_count(), 1);
    }

    #[test]
    fn purge_below_drops_only_unreachable_history() {
        let mut fti = FullTextIndex::new();
        // doc 1: "w" lived in [0, 2), then again in [2, 5), then [5, OPEN);
        // "gone" lived in [0, 3) only; "straddle" in [1, 8).
        fti.open_posting("w", d(1), x(1), OccKind::Word, &[x(1)], v(0));
        fti.close_posting("w", d(1), x(1), OccKind::Word, v(2));
        fti.open_posting("w", d(1), x(1), OccKind::Word, &[x(1)], v(2));
        fti.close_posting("w", d(1), x(1), OccKind::Word, v(5));
        fti.open_posting("w", d(1), x(1), OccKind::Word, &[x(1)], v(5));
        fti.open_posting("gone", d(1), x(2), OccKind::Word, &[x(1), x(2)], v(0));
        fti.close_posting("gone", d(1), x(2), OccKind::Word, v(3));
        fti.open_posting("straddle", d(1), x(3), OccKind::Word, &[x(1), x(3)], v(1));
        fti.close_posting("straddle", d(1), x(3), OccKind::Word, v(8));
        // doc 2 shares token "w" and must be untouched.
        fti.open_posting("w", d(2), x(1), OccKind::Word, &[x(1)], v(0));
        fti.close_posting("w", d(2), x(1), OccKind::Word, v(1));

        let before = fti.posting_count();
        // Versions below 5 were purged; version 5 is the first survivor.
        let removed = fti.purge_below(d(1), 5);
        assert_eq!(removed, 3, "w[0,2), w[2,5), gone[0,3)");
        assert_eq!(fti.posting_count(), before - 3);
        // Open posting survives and the remapped open structures still work.
        assert_eq!(fti.lookup("w", OccKind::Word).len(), 1);
        assert!(fti.close_posting("w", d(1), x(1), OccKind::Word, v(9)));
        assert_eq!(fti.lookup("w", OccKind::Word).len(), 0);
        // Ranges straddling the horizon survive; fully-purged tokens vanish.
        assert_eq!(fti.lookup_h("straddle", OccKind::Word).len(), 1);
        assert_eq!(fti.list_len("gone"), 0);
        assert_eq!(fti.lookup_t("straddle", OccKind::Word, |_| Some(v(6))).len(), 1);
        // Other documents' histories untouched.
        assert_eq!(fti.lookup_h("w", OccKind::Word).iter().filter(|p| p.doc == d(2)).count(), 1);
        // Idempotent.
        assert_eq!(fti.purge_below(d(1), 5), 0);
    }

    #[test]
    fn missing_token_lookups_empty() {
        let fti = FullTextIndex::new();
        assert!(fti.lookup("nothing", OccKind::Word).is_empty());
        assert!(fti.lookup_h("nothing", OccKind::Word).is_empty());
        assert!(fti.lookup_t("nothing", OccKind::Word, |_| Some(v(0))).is_empty());
    }
}
