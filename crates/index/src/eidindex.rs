//! The EID-time index (§7.3.6).
//!
//! "Use an additional index that indexes EID and create/delete timestamps."
//! A persistent B+-tree maps `doc.be32 ++ xid.be64` to `(create_ts,
//! delete_ts)`, with `delete_ts = FOREVER` while the element is alive.
//! `CreTime(TEID)`/`DelTime(TEID)` become single index probes — the
//! alternative to backward/forward delta traversal, which E5 benchmarks the
//! crossover against.
//!
//! The paper notes inserts are "not in general append-only, because new
//! elements can be inserted into documents", but that a whole new document
//! inserts many EIDs at once, amortising the cost; maintenance here simply
//! upserts per changed element.

use std::sync::Arc;

use txdb_base::{DocId, Eid, Error, Result, Timestamp, Xid};
use txdb_storage::btree::BTree;
use txdb_storage::buffer::BufferPool;

/// Lifetime of an element: `[created, deleted)`, `deleted = FOREVER` while
/// the element is alive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ElementLifetime {
    /// Transaction time the element (XID) first appeared.
    pub created: Timestamp,
    /// Transaction time it was removed; `FOREVER` if still alive.
    pub deleted: Timestamp,
}

impl ElementLifetime {
    /// True while the element exists in the current version.
    pub fn is_alive(&self) -> bool {
        self.deleted == Timestamp::FOREVER
    }
}

/// The persistent EID → (create, delete) time index.
pub struct EidTimeIndex {
    tree: BTree,
}

fn key_of(eid: Eid) -> [u8; 12] {
    let mut k = [0u8; 12];
    k[..4].copy_from_slice(&eid.doc.0.to_be_bytes());
    k[4..].copy_from_slice(&eid.xid.0.to_be_bytes());
    k
}

impl EidTimeIndex {
    /// Opens the index on the shared buffer pool, rooted at the reserved
    /// [`txdb_storage::repo::roots::EID_INDEX`] slot.
    pub fn open(pool: Arc<BufferPool>) -> Result<EidTimeIndex> {
        Ok(EidTimeIndex { tree: BTree::open(pool, txdb_storage::repo::roots::EID_INDEX)? })
    }

    /// Records the creation of an element.
    pub fn on_create(&self, eid: Eid, ts: Timestamp) -> Result<()> {
        let mut v = [0u8; 16];
        v[..8].copy_from_slice(&ts.micros().to_le_bytes());
        v[8..].copy_from_slice(&Timestamp::FOREVER.micros().to_le_bytes());
        self.tree.insert(&key_of(eid), &v)?;
        Ok(())
    }

    /// Records the deletion of an element (keeps its create time).
    pub fn on_delete(&self, eid: Eid, ts: Timestamp) -> Result<()> {
        let key = key_of(eid);
        let Some(mut v) = self.tree.get(&key)? else {
            return Err(Error::NoSuchElement(eid));
        };
        v[8..16].copy_from_slice(&ts.micros().to_le_bytes());
        self.tree.insert(&key, &v)?;
        Ok(())
    }

    /// Re-opens the lifetime of a previously deleted element (resurrection
    /// of a document restores XIDs; the original create time is kept).
    pub fn on_revive(&self, eid: Eid) -> Result<()> {
        let key = key_of(eid);
        let Some(mut v) = self.tree.get(&key)? else {
            return Err(Error::NoSuchElement(eid));
        };
        v[8..16].copy_from_slice(&Timestamp::FOREVER.micros().to_le_bytes());
        self.tree.insert(&key, &v)?;
        Ok(())
    }

    /// Looks up an element's lifetime.
    pub fn lifetime(&self, eid: Eid) -> Result<Option<ElementLifetime>> {
        let Some(v) = self.tree.get(&key_of(eid))? else { return Ok(None) };
        if v.len() != 16 {
            return Err(Error::Corrupt("bad eid-index value".into()));
        }
        Ok(Some(ElementLifetime {
            created: Timestamp::from_micros(u64::from_le_bytes(v[..8].try_into().unwrap())),
            deleted: Timestamp::from_micros(u64::from_le_bytes(v[8..16].try_into().unwrap())),
        }))
    }

    /// All lifetimes of one document (ordered by XID) — range scan over the
    /// doc prefix.
    pub fn doc_lifetimes(&self, doc: DocId) -> Result<Vec<(Xid, ElementLifetime)>> {
        let mut start = [0u8; 12];
        start[..4].copy_from_slice(&doc.0.to_be_bytes());
        let mut end = [0u8; 12];
        end[..4].copy_from_slice(&(doc.0 + 1).to_be_bytes());
        let mut out = Vec::new();
        for e in self.tree.range(&start, Some(&end))? {
            let (k, v) = e?;
            let xid = Xid(u64::from_be_bytes(k[4..12].try_into().unwrap()));
            out.push((
                xid,
                ElementLifetime {
                    created: Timestamp::from_micros(u64::from_le_bytes(v[..8].try_into().unwrap())),
                    deleted: Timestamp::from_micros(u64::from_le_bytes(
                        v[8..16].try_into().unwrap(),
                    )),
                },
            ));
        }
        Ok(out)
    }

    /// Entry count (index-size metric).
    pub fn len(&self) -> Result<usize> {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> Result<bool> {
        self.tree.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_storage::pager::Pager;

    fn index() -> EidTimeIndex {
        let pool = Arc::new(BufferPool::new(Pager::memory(), 64));
        EidTimeIndex::open(pool).unwrap()
    }

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n)
    }

    #[test]
    fn create_then_lookup() {
        let idx = index();
        let eid = Eid::new(DocId(1), Xid(5));
        idx.on_create(eid, ts(100)).unwrap();
        let lt = idx.lifetime(eid).unwrap().unwrap();
        assert_eq!(lt.created, ts(100));
        assert!(lt.is_alive());
    }

    #[test]
    fn delete_closes_lifetime() {
        let idx = index();
        let eid = Eid::new(DocId(1), Xid(5));
        idx.on_create(eid, ts(100)).unwrap();
        idx.on_delete(eid, ts(250)).unwrap();
        let lt = idx.lifetime(eid).unwrap().unwrap();
        assert_eq!(lt.created, ts(100));
        assert_eq!(lt.deleted, ts(250));
        assert!(!lt.is_alive());
    }

    #[test]
    fn delete_unknown_errors() {
        let idx = index();
        assert!(idx.on_delete(Eid::new(DocId(1), Xid(9)), ts(1)).is_err());
        assert_eq!(idx.lifetime(Eid::new(DocId(1), Xid(9))).unwrap(), None);
    }

    #[test]
    fn doc_scan_is_prefix_bounded() {
        let idx = index();
        for xid in 1..=5u64 {
            idx.on_create(Eid::new(DocId(7), Xid(xid)), ts(xid)).unwrap();
        }
        idx.on_create(Eid::new(DocId(8), Xid(1)), ts(99)).unwrap();
        let got = idx.doc_lifetimes(DocId(7)).unwrap();
        assert_eq!(got.len(), 5);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(idx.len().unwrap(), 6);
    }

    #[test]
    fn many_elements_across_docs() {
        let idx = index();
        for doc in 1..=20u32 {
            for xid in 1..=50u64 {
                idx.on_create(Eid::new(DocId(doc), Xid(xid)), ts(xid)).unwrap();
            }
        }
        assert_eq!(idx.len().unwrap(), 1000);
        let lt = idx.lifetime(Eid::new(DocId(13), Xid(37))).unwrap().unwrap();
        assert_eq!(lt.created, ts(37));
    }
}
