//! The delta-content index — the §7.2 *second alternative*.
//!
//! "Index the contents of the delta objects. This implies indexing the
//! operations, e.g., update, move and delete information directly in the
//! text index. This would for example facilitate search for the path
//! delete/restaurant/name/napoli."
//!
//! The paper rejects this as the *primary* index (too many instances of the
//! operation keywords, poor for snapshot queries) but leaves "studying the
//! relative performance of the three alternatives" as future work — which
//! experiment E7 carries out. Entries map tokens occurring in a delta
//! operation's payload (plus the operation keyword itself) to
//! `(doc, version, op, xid)`, supporting change-oriented queries like
//! *"when was a restaurant named napoli deleted?"* without touching any
//! reconstruction path.

use std::collections::HashMap;

use txdb_base::{DocId, Error, Result, VersionId, Xid};
use txdb_delta::{Delta, EditOp};
use txdb_xml::similarity::tokenize;
use txdb_xml::tree::{NodeKind, Tree};

use crate::persist::{read_u8, read_varint, write_varint};

/// Kind of change an entry describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChangeOp {
    /// Content inserted.
    Insert,
    /// Content deleted.
    Delete,
    /// Text or attribute updated.
    Update,
    /// Subtree moved.
    Move,
}

impl ChangeOp {
    /// The operation keyword, itself indexed ("extremely many instances of
    /// the delta keywords" — the cost the paper predicts, measured in E7).
    pub fn keyword(self) -> &'static str {
        match self {
            ChangeOp::Insert => "insert",
            ChangeOp::Delete => "delete",
            ChangeOp::Update => "update",
            ChangeOp::Move => "move",
        }
    }
}

/// One entry: a token involved in one operation of one delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangeEntry {
    /// Document the delta belongs to.
    pub doc: DocId,
    /// The version the delta produced.
    pub version: VersionId,
    /// What happened.
    pub op: ChangeOp,
    /// The element the operation targeted (subtree root for
    /// insert/delete/move, the element/text node for updates).
    pub xid: Xid,
}

/// The delta-content index.
#[derive(Default)]
pub struct DeltaContentIndex {
    lists: HashMap<String, Vec<ChangeEntry>>,
    entries: usize,
}

impl DeltaContentIndex {
    /// Fresh empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(&mut self, token: impl Into<String>, entry: ChangeEntry) {
        let list = self.lists.entry(token.into()).or_default();
        // One entry per (token, op occurrence).
        if list.last() != Some(&entry) {
            list.push(entry);
            self.entries += 1;
        }
    }

    fn add_subtree_tokens(&mut self, tree: &Tree, entry: ChangeEntry) {
        for n in tree.iter() {
            match &tree.node(n).kind {
                NodeKind::Element { name, attrs } => {
                    self.add(name.to_lowercase(), entry.clone());
                    for (k, v) in attrs {
                        for t in tokenize(k).chain(tokenize(v)) {
                            self.add(t, entry.clone());
                        }
                    }
                }
                NodeKind::Text { value } => {
                    for t in tokenize(value) {
                        self.add(t, entry.clone());
                    }
                }
            }
        }
    }

    /// Indexes one completed delta.
    pub fn index_delta(&mut self, doc: DocId, delta: &Delta) {
        let version = delta.to_version;
        for op in &delta.ops {
            match op {
                EditOp::InsertSubtree { subtree, .. } => {
                    let xid = subtree.root().map(|r| subtree.node(r).xid).unwrap_or(Xid::NONE);
                    let entry = ChangeEntry { doc, version, op: ChangeOp::Insert, xid };
                    self.add(ChangeOp::Insert.keyword(), entry.clone());
                    self.add_subtree_tokens(subtree, entry);
                }
                EditOp::DeleteSubtree { subtree, .. } => {
                    let xid = subtree.root().map(|r| subtree.node(r).xid).unwrap_or(Xid::NONE);
                    let entry = ChangeEntry { doc, version, op: ChangeOp::Delete, xid };
                    self.add(ChangeOp::Delete.keyword(), entry.clone());
                    self.add_subtree_tokens(subtree, entry);
                }
                EditOp::UpdateText { xid, old, new, .. } => {
                    let entry = ChangeEntry { doc, version, op: ChangeOp::Update, xid: *xid };
                    self.add(ChangeOp::Update.keyword(), entry.clone());
                    for t in tokenize(old).chain(tokenize(new)) {
                        self.add(t, entry.clone());
                    }
                }
                EditOp::SetAttr { xid, key, old, new, .. } => {
                    let entry = ChangeEntry { doc, version, op: ChangeOp::Update, xid: *xid };
                    self.add(ChangeOp::Update.keyword(), entry.clone());
                    for t in tokenize(key) {
                        self.add(t, entry.clone());
                    }
                    for v in [old, new].into_iter().flatten() {
                        for t in tokenize(v) {
                            self.add(t, entry.clone());
                        }
                    }
                }
                EditOp::Move { xid, .. } => {
                    let entry = ChangeEntry { doc, version, op: ChangeOp::Move, xid: *xid };
                    self.add(ChangeOp::Move.keyword(), entry.clone());
                }
            }
        }
    }

    /// Changes involving `token`, optionally restricted to one operation
    /// kind — the change-oriented query of §7.2 ("search for the path
    /// delete/…/napoli" becomes `find("napoli", Some(Delete))` joined with
    /// structural tokens).
    pub fn find(&self, token: &str, op: Option<ChangeOp>) -> Vec<&ChangeEntry> {
        self.find_cursor(token, op).collect()
    }

    /// Cursor form of [`DeltaContentIndex::find`]: lazily yields matching
    /// change entries so callers that stop early (intersection emptied,
    /// LIMIT satisfied) never walk the rest of the list.
    pub fn find_cursor<'a>(
        &'a self,
        token: &str,
        op: Option<ChangeOp>,
    ) -> impl Iterator<Item = &'a ChangeEntry> + 'a {
        self.lists
            .get(&token.to_lowercase())
            .map(|l| l.as_slice())
            .unwrap_or_default()
            .iter()
            .filter(move |e| op.is_none_or(|o| e.op == o))
    }

    /// Conjunction: versions in which *all* tokens took part in a matching
    /// operation of the same document (e.g. `delete` ∧ `restaurant` ∧
    /// `napoli`).
    pub fn find_all(&self, tokens: &[&str], op: Option<ChangeOp>) -> Vec<(DocId, VersionId)> {
        let mut sets: Vec<std::collections::HashSet<(DocId, VersionId)>> = Vec::new();
        for t in tokens {
            sets.push(self.find(t, op).into_iter().map(|e| (e.doc, e.version)).collect());
        }
        let Some(first) = sets.first().cloned() else { return Vec::new() };
        let mut out: Vec<(DocId, VersionId)> =
            first.into_iter().filter(|k| sets[1..].iter().all(|s| s.contains(k))).collect();
        out.sort();
        out
    }

    /// Removes every entry of a document (stale-checkpoint repair path).
    pub fn drop_document(&mut self, doc: DocId) {
        let entries = &mut self.entries;
        self.lists.retain(|_, l| {
            let before = l.len();
            l.retain(|e| e.doc != doc);
            *entries -= before - l.len();
            !l.is_empty()
        });
    }

    /// Serializes the index: sorted token dictionary, entries as varints.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut tokens: Vec<(&String, &Vec<ChangeEntry>)> = self.lists.iter().collect();
        tokens.sort_by_key(|(t, _)| t.as_str());
        write_varint(out, tokens.len() as u64);
        for (token, list) in tokens {
            write_varint(out, token.len() as u64);
            out.extend_from_slice(token.as_bytes());
            write_varint(out, list.len() as u64);
            for e in list {
                write_varint(out, e.doc.0 as u64);
                write_varint(out, e.version.0 as u64);
                out.push(match e.op {
                    ChangeOp::Insert => 0,
                    ChangeOp::Delete => 1,
                    ChangeOp::Update => 2,
                    ChangeOp::Move => 3,
                });
                write_varint(out, e.xid.0);
            }
        }
    }

    /// Deserializes an index written by
    /// [`DeltaContentIndex::encode_into`]. Consumes its portion of
    /// `input`.
    pub fn decode_from(input: &mut &[u8]) -> Result<DeltaContentIndex> {
        let mut idx = DeltaContentIndex::new();
        let n_tokens = read_varint(input)? as usize;
        for _ in 0..n_tokens {
            let len = read_varint(input)? as usize;
            if input.len() < len {
                return Err(Error::Corrupt("delta index checkpoint: truncated token".into()));
            }
            let (head, rest) = input.split_at(len);
            *input = rest;
            let token = String::from_utf8(head.to_vec())
                .map_err(|_| Error::Corrupt("delta index checkpoint: token not UTF-8".into()))?;
            let n_entries = read_varint(input)? as usize;
            let list = idx.lists.entry(token).or_default();
            for _ in 0..n_entries {
                let doc = DocId(u32::try_from(read_varint(input)?).map_err(|_| {
                    Error::Corrupt("delta index checkpoint: doc id overflow".into())
                })?);
                let version = VersionId(u32::try_from(read_varint(input)?).map_err(|_| {
                    Error::Corrupt("delta index checkpoint: version overflow".into())
                })?);
                let op = match read_u8(input)? {
                    0 => ChangeOp::Insert,
                    1 => ChangeOp::Delete,
                    2 => ChangeOp::Update,
                    3 => ChangeOp::Move,
                    x => return Err(Error::Corrupt(format!("delta index checkpoint: bad op {x}"))),
                };
                let xid = Xid(read_varint(input)?);
                list.push(ChangeEntry { doc, version, op, xid });
                idx.entries += 1;
            }
        }
        Ok(idx)
    }

    /// Total entries (index-size metric for E7).
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Approximate bytes (E7).
    pub fn approx_bytes(&self) -> usize {
        self.lists
            .iter()
            .map(|(t, l)| t.len() + 48 + l.len() * std::mem::size_of::<ChangeEntry>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_base::{Timestamp, VersionId};
    use txdb_xml::parse::parse_document;
    use txdb_xml::tree::NodeId;

    fn payload(src: &str, first_xid: u64) -> Tree {
        let mut t = parse_document(src).unwrap();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(first_xid + i as u64);
        }
        t
    }

    fn delta(ops: Vec<EditOp>) -> Delta {
        Delta {
            from_version: VersionId(1),
            to_version: VersionId(2),
            from_ts: Timestamp::from_micros(10),
            to_ts: Timestamp::from_micros(20),
            ops,
        }
    }

    #[test]
    fn delete_of_napoli_findable() {
        // The paper's example: search for delete/restaurant/name/napoli.
        let mut idx = DeltaContentIndex::new();
        let d = delta(vec![EditOp::DeleteSubtree {
            parent: Xid(1),
            pos: 0,
            subtree: payload("<restaurant><name>Napoli</name></restaurant>", 10),
            old_parent_ts: Timestamp::ZERO,
        }]);
        idx.index_delta(DocId(3), &d);
        let hits = idx.find("napoli", Some(ChangeOp::Delete));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].version, VersionId(2));
        // Conjunctive query across structural and content tokens.
        let both = idx.find_all(&["restaurant", "name", "napoli"], Some(ChangeOp::Delete));
        assert_eq!(both, vec![(DocId(3), VersionId(2))]);
        // Not findable as an insert.
        assert!(idx.find("napoli", Some(ChangeOp::Insert)).is_empty());
    }

    #[test]
    fn update_indexes_old_and_new() {
        let mut idx = DeltaContentIndex::new();
        let d = delta(vec![EditOp::UpdateText {
            xid: Xid(5),
            old: "fifteen".into(),
            new: "eighteen".into(),
            old_ts: Timestamp::ZERO,
        }]);
        idx.index_delta(DocId(1), &d);
        assert_eq!(idx.find("fifteen", None).len(), 1);
        assert_eq!(idx.find("eighteen", None).len(), 1);
        assert_eq!(idx.find("update", None).len(), 1);
    }

    #[test]
    fn keyword_blowup_is_measurable() {
        // The paper's predicted cost: operation keywords accumulate.
        let mut idx = DeltaContentIndex::new();
        for v in 0..50u32 {
            let mut d = delta(vec![EditOp::UpdateText {
                xid: Xid(5),
                old: format!("v{v}"),
                new: format!("v{}", v + 1),
                old_ts: Timestamp::ZERO,
            }]);
            d.to_version = VersionId(v + 1);
            idx.index_delta(DocId(1), &d);
        }
        assert_eq!(idx.find("update", None).len(), 50);
        assert!(idx.entry_count() >= 150);
        assert!(idx.approx_bytes() > 0);
    }

    #[test]
    fn moves_and_attrs() {
        let mut idx = DeltaContentIndex::new();
        let d = delta(vec![
            EditOp::Move {
                xid: Xid(4),
                old_parent: Xid(1),
                old_pos: 0,
                new_parent: Xid(2),
                new_pos: 0,
                old_ts: Timestamp::ZERO,
                old_parent_ts: Timestamp::ZERO,
            },
            EditOp::SetAttr {
                xid: Xid(4),
                key: "category".into(),
                old: Some("italian".into()),
                new: Some("greek".into()),
                old_ts: Timestamp::ZERO,
            },
        ]);
        idx.index_delta(DocId(1), &d);
        assert_eq!(idx.find("move", None).len(), 1);
        assert_eq!(idx.find("italian", Some(ChangeOp::Update)).len(), 1);
        assert_eq!(idx.find("greek", None).len(), 1);
        assert_eq!(idx.find("category", None).len(), 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut idx = DeltaContentIndex::new();
        let d = delta(vec![EditOp::UpdateText {
            xid: Xid(5),
            old: "fifteen".into(),
            new: "eighteen".into(),
            old_ts: Timestamp::ZERO,
        }]);
        idx.index_delta(DocId(1), &d);
        let mut blob = Vec::new();
        idx.encode_into(&mut blob);
        let mut cursor = blob.as_slice();
        let back = DeltaContentIndex::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back.entry_count(), idx.entry_count());
        assert_eq!(back.find("fifteen", Some(ChangeOp::Update)).len(), 1);
        assert_eq!(back.find("update", None).len(), 1);
    }

    #[test]
    fn drop_document_prunes_entries_and_counts() {
        let mut idx = DeltaContentIndex::new();
        let d = delta(vec![EditOp::UpdateText {
            xid: Xid(5),
            old: "a".into(),
            new: "b".into(),
            old_ts: Timestamp::ZERO,
        }]);
        idx.index_delta(DocId(1), &d);
        idx.index_delta(DocId(2), &d);
        let before = idx.entry_count();
        idx.drop_document(DocId(1));
        assert_eq!(idx.entry_count(), before / 2);
        assert!(idx.find("a", None).iter().all(|e| e.doc == DocId(2)));
    }

    #[test]
    fn empty_queries() {
        let idx = DeltaContentIndex::new();
        assert!(idx.find("x", None).is_empty());
        assert!(idx.find_all(&[], None).is_empty());
        assert_eq!(idx.entry_count(), 0);
    }
}
