//! Index-checkpoint (de)serialization.
//!
//! The storage layer persists one opaque blob per checkpoint (see
//! `txdb_storage::ckpt`); this module defines what is inside it:
//!
//! ```text
//! [format varint]
//! [covers: n, then per doc (doc, covered_entries, purged_in_prefix)]
//! [full-text index — FullTextIndex::encode_into]
//! [delta-content index — DeltaContentIndex::encode_into]
//! ```
//!
//! The **cover** is the staleness contract. `covered` is the number of
//! version entries of the document the serialized indexes reflect — the
//! high-water mark; at open, only entries past it are replayed. `purged`
//! counts `Purged` entries among those first `covered` entries: a vacuum
//! rewrites history *below* the high-water mark, so a purged count
//! mismatch (or a shrunk entry list) marks the document stale and forces
//! a full replay of just that document. The EID-time index is *not* part
//! of the blob — it already persists in the shared B+-tree — but it relies
//! on the same covers to avoid re-replaying covered history.

use txdb_base::{DocId, Error, Result};

use crate::deltaindex::DeltaContentIndex;
use crate::fti::FullTextIndex;

/// Blob format version.
pub const FORMAT: u64 = 1;

/// What the serialized indexes cover for one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocCover {
    /// The document.
    pub doc: DocId,
    /// Number of version entries (from the start of the document's delta
    /// index) reflected in the serialized indexes.
    pub covered: u32,
    /// Number of `Purged` entries among the first `covered` entries when
    /// the checkpoint was taken. A vacuum changes this, invalidating the
    /// cover.
    pub purged: u32,
}

/// A decoded index checkpoint.
pub struct IndexCheckpoint {
    /// Per-document coverage stamps.
    pub covers: Vec<DocCover>,
    /// The full-text index as of the covers.
    pub fti: FullTextIndex,
    /// The delta-content index as of the covers.
    pub delta: DeltaContentIndex,
}

/// Serializes covers + indexes into one blob.
pub fn encode(covers: &[DocCover], fti: &FullTextIndex, delta: &DeltaContentIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    write_varint(&mut out, FORMAT);
    write_varint(&mut out, covers.len() as u64);
    for c in covers {
        write_varint(&mut out, c.doc.0 as u64);
        write_varint(&mut out, c.covered as u64);
        write_varint(&mut out, c.purged as u64);
    }
    fti.encode_into(&mut out);
    delta.encode_into(&mut out);
    out
}

/// Decodes a blob written by [`encode`]. Trailing bytes are an error —
/// a truncated or padded blob means the checkpoint machinery is broken.
pub fn decode(blob: &[u8]) -> Result<IndexCheckpoint> {
    let mut b = blob;
    let input = &mut b;
    let format = read_varint(input)?;
    if format != FORMAT {
        return Err(Error::Corrupt(format!("index checkpoint: unknown blob format {format}")));
    }
    let n = read_varint(input)? as usize;
    let mut covers = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let doc = DocId(
            u32::try_from(read_varint(input)?)
                .map_err(|_| Error::Corrupt("index checkpoint: doc id overflow".into()))?,
        );
        let covered = u32::try_from(read_varint(input)?)
            .map_err(|_| Error::Corrupt("index checkpoint: cover overflow".into()))?;
        let purged = u32::try_from(read_varint(input)?)
            .map_err(|_| Error::Corrupt("index checkpoint: cover overflow".into()))?;
        covers.push(DocCover { doc, covered, purged });
    }
    let fti = FullTextIndex::decode_from(input)?;
    let delta = DeltaContentIndex::decode_from(input)?;
    if !input.is_empty() {
        return Err(Error::Corrupt(format!("index checkpoint: {} trailing byte(s)", input.len())));
    }
    Ok(IndexCheckpoint { covers, fti, delta })
}

/// LEB128-style varint writer (same wire format as `txdb_xml::codec`).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Varint reader over a shrinking slice.
pub(crate) fn read_varint(b: &mut &[u8]) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = b
            .split_first()
            .ok_or_else(|| Error::Corrupt("index checkpoint: truncated varint".into()))?;
        *b = rest;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(Error::Corrupt("index checkpoint: varint overflow".into()));
        }
    }
}

/// Single-byte reader over a shrinking slice.
pub(crate) fn read_u8(b: &mut &[u8]) -> Result<u8> {
    let (&byte, rest) =
        b.split_first().ok_or_else(|| Error::Corrupt("index checkpoint: truncated byte".into()))?;
    *b = rest;
    Ok(byte)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fti::OccKind;
    use txdb_base::{VersionId, Xid};

    #[test]
    fn empty_checkpoint_round_trips() {
        let blob = encode(&[], &FullTextIndex::new(), &DeltaContentIndex::new());
        let ckpt = decode(&blob).unwrap();
        assert!(ckpt.covers.is_empty());
        assert_eq!(ckpt.fti.posting_count(), 0);
        assert_eq!(ckpt.delta.entry_count(), 0);
    }

    #[test]
    fn covers_round_trip() {
        let covers = vec![
            DocCover { doc: DocId(1), covered: 70, purged: 0 },
            DocCover { doc: DocId(9), covered: 3, purged: 2 },
        ];
        let blob = encode(&covers, &FullTextIndex::new(), &DeltaContentIndex::new());
        let ckpt = decode(&blob).unwrap();
        assert_eq!(ckpt.covers, covers);
    }

    #[test]
    fn full_blob_round_trips() {
        let mut fti = FullTextIndex::new();
        fti.open_posting(
            "napoli",
            DocId(1),
            Xid(3),
            OccKind::Word,
            &[Xid(1), Xid(3)],
            VersionId(0),
        );
        let delta = DeltaContentIndex::new();
        let covers = vec![DocCover { doc: DocId(1), covered: 1, purged: 0 }];
        let blob = encode(&covers, &fti, &delta);
        let ckpt = decode(&blob).unwrap();
        assert_eq!(ckpt.covers, covers);
        assert_eq!(ckpt.fti.lookup("napoli", OccKind::Word).len(), 1);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut blob = encode(&[], &FullTextIndex::new(), &DeltaContentIndex::new());
        blob.push(0);
        assert!(matches!(decode(&blob), Err(Error::Corrupt(_))));
    }

    #[test]
    fn unknown_format_rejected() {
        let mut blob = encode(&[], &FullTextIndex::new(), &DeltaContentIndex::new());
        blob[0] = 99;
        assert!(matches!(decode(&blob), Err(Error::Corrupt(_))));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let mut fti = FullTextIndex::new();
        fti.open_posting("word", DocId(2), Xid(5), OccKind::Word, &[Xid(5)], VersionId(1));
        let covers = vec![DocCover { doc: DocId(2), covered: 2, purged: 0 }];
        let blob = encode(&covers, &fti, &DeltaContentIndex::new());
        for cut in 0..blob.len() {
            assert!(decode(&blob[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }
}
