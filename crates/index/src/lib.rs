//! # txdb-index — temporal indexing for the XML database
//!
//! §7.2 of the paper: "all documents are indexed by an inverted-list-based
//! free-text index (FTI). This index indexes all words in the documents,
//! including element names. The postings (one for each word occurrence)
//! include document identifier as well as information that can be used to
//! determine hierarchical relationships between elements from the same
//! document." The temporal extension adds the three lookup modes
//! `FTI_lookup`, `FTI_lookup_T` and `FTI_lookup_H`, and the paper weighs
//! three *indexing alternatives*: index version contents (its choice),
//! index delta operations, or both. This crate implements all of it:
//!
//! * [`fti`] — the temporal full-text index. Postings carry `(doc, xid,
//!   xid-path, [from_version, to_version))`; because XIDs are persistent,
//!   the xid-path decides `isParentOf`/`isAscendantOf` between postings,
//!   and version ranges realise the paper's "index the contents of the
//!   versions" alternative with version *numbers*, not timestamps (§7.1).
//! * [`eidindex`] — the §7.3.6 auxiliary index mapping EIDs to create/
//!   delete timestamps, persisted in a B+-tree; the alternative to delta
//!   traversal for `CreTime`/`DelTime` (benchmarked against it in E5).
//! * [`deltaindex`] — the §7.2 second alternative: indexing the delta
//!   *operations* ("facilitates search for the path
//!   delete/restaurant/name/napoli"); part of the E7 ablation.
//! * [`maint`] — index maintenance driven by completed deltas: one
//!   [`maint::IndexSet`] keeps every enabled index consistent on each
//!   document put/delete, touching only changed elements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deltaindex;
pub mod eidindex;
pub mod fti;
pub mod maint;
pub mod persist;

pub use fti::{FullTextIndex, HistoryCursor, OccKind, OpenCursor, Posting, SnapshotCursor};
pub use maint::{FtiMode, IndexConfig, IndexSet};
pub use persist::{DocCover, IndexCheckpoint};
