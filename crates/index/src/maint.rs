//! Index maintenance driven by completed deltas.
//!
//! One [`IndexSet`] bundles the enabled indexes and keeps them consistent
//! with the document store on every put/delete. Maintenance is
//! **delta-driven**: only elements actually affected by a change are
//! re-examined, which is what makes "the cost of storing only deltas" also
//! pay off on the indexing side. The affected set of a delta is:
//!
//! * all elements of inserted/deleted payload subtrees,
//! * the parent element of inserted/deleted/updated *text* nodes (their
//!   words belong to the parent),
//! * attribute-update targets,
//! * moved subtrees (every element inside — their xid-paths change) plus
//!   the old/new parents of moved text nodes.
//!
//! For each affected element the old open postings (tracked by the FTI
//! itself) are diffed against the element's new occurrence signature; only
//! the difference is closed/opened.
//!
//! [`FtiMode`] selects the §7.2 indexing alternative: version contents
//! (the paper's choice), delta operations, or both (experiment E7).

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::RwLock;
use txdb_base::{DocId, Eid, Result, Timestamp, VersionId, Xid};
use txdb_delta::{Delta, EditOp};
use txdb_storage::buffer::BufferPool;
use txdb_xml::similarity::tokenize;
use txdb_xml::tree::{NodeId, NodeKind, Tree};

use crate::deltaindex::DeltaContentIndex;
use crate::eidindex::EidTimeIndex;
use crate::fti::{FullTextIndex, OccKind};

/// Which §7.2 indexing alternative the FTI side runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FtiMode {
    /// Index version contents (the paper's choice).
    Versions,
    /// Index delta operations only.
    Deltas,
    /// Both (largest indexes, highest update cost — E7 quantifies).
    Both,
}

/// Index configuration.
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Indexing alternative for content search.
    pub fti_mode: FtiMode,
    /// Maintain the §7.3.6 EID-time index.
    pub eid_index: bool,
    /// Persist the in-memory indexes at checkpoint time and load them at
    /// open, replaying only history above the checkpointed high-water
    /// marks (O(index) open instead of O(history)). Disabling forces a
    /// full replay at every open — the cold path the `open_bench`
    /// experiment measures.
    pub checkpoints: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig { fti_mode: FtiMode::Versions, eid_index: true, checkpoints: true }
    }
}

/// The bundle of indexes maintained alongside the document store.
pub struct IndexSet {
    /// Configuration the set was opened with.
    pub config: IndexConfig,
    fti: RwLock<FullTextIndex>,
    delta_index: RwLock<DeltaContentIndex>,
    eid: Option<EidTimeIndex>,
}

impl IndexSet {
    /// Opens the index set; the EID index persists on the shared pool.
    pub fn open(pool: Arc<BufferPool>, config: IndexConfig) -> Result<IndexSet> {
        let eid = if config.eid_index { Some(EidTimeIndex::open(pool)?) } else { None };
        Ok(IndexSet {
            config,
            fti: RwLock::new(FullTextIndex::new()),
            delta_index: RwLock::new(DeltaContentIndex::new()),
            eid,
        })
    }

    /// Like [`IndexSet::open`] but with the FTI's per-mode lookup
    /// counters registered in `reg` under `fti.*`.
    pub fn open_with_metrics(
        pool: Arc<BufferPool>,
        config: IndexConfig,
        reg: &txdb_base::obs::Registry,
    ) -> Result<IndexSet> {
        let set = IndexSet::open(pool, config)?;
        set.fti.write().set_metrics(crate::fti::FtiMetrics::registered(reg));
        Ok(set)
    }

    /// Read access to the temporal FTI.
    pub fn fti(&self) -> parking_lot::RwLockReadGuard<'_, FullTextIndex> {
        self.fti.read()
    }

    /// Read access to the delta-content index.
    pub fn delta_index(&self) -> parking_lot::RwLockReadGuard<'_, DeltaContentIndex> {
        self.delta_index.read()
    }

    /// The EID-time index, when enabled.
    pub fn eid_index(&self) -> Option<&EidTimeIndex> {
        self.eid.as_ref()
    }

    /// Replaces the in-memory indexes wholesale with checkpoint-loaded
    /// ones. The EID-time index is untouched — it persists on the shared
    /// buffer pool and never needs reloading. Metric handles carry over
    /// from the replaced index so registry-shared counters keep counting.
    pub fn install(&self, mut fti: FullTextIndex, delta_index: DeltaContentIndex) {
        let mut cur = self.fti.write();
        fti.set_metrics(cur.metrics().clone());
        *cur = fti;
        drop(cur);
        *self.delta_index.write() = delta_index;
    }

    /// Drops one document from the in-memory indexes (its checkpointed
    /// image was stale); the caller rebuilds it by full replay.
    pub fn drop_document(&self, doc: DocId) {
        self.fti.write().drop_document(doc);
        self.delta_index.write().drop_document(doc);
    }

    /// Serializes the in-memory indexes with their per-document covers
    /// into a checkpoint blob.
    pub fn encode_checkpoint(&self, covers: &[crate::persist::DocCover]) -> Vec<u8> {
        crate::persist::encode(covers, &self.fti.read(), &self.delta_index.read())
    }

    fn fti_enabled(&self) -> bool {
        matches!(self.config.fti_mode, FtiMode::Versions | FtiMode::Both)
    }

    fn delta_enabled(&self) -> bool {
        matches!(self.config.fti_mode, FtiMode::Deltas | FtiMode::Both)
    }

    /// Maintains all indexes after a document put.
    ///
    /// * first version: `delta == None`, everything in `new_tree` opens;
    /// * update: `delta` drives the affected set;
    /// * resurrection (put over a tombstone): pass `resurrected = true` so
    ///   postings closed by the deletion reopen for unchanged elements too.
    pub fn on_put(
        &self,
        doc: DocId,
        version: VersionId,
        ts: Timestamp,
        new_tree: &Tree,
        delta: Option<&Delta>,
        resurrected: bool,
    ) -> Result<()> {
        if self.delta_enabled() {
            if let Some(d) = delta {
                self.delta_index.write().index_delta(doc, d);
            }
        }
        if !self.fti_enabled() && self.eid.is_none() {
            return Ok(());
        }
        match (delta, resurrected) {
            (None, _) | (_, true) => self.reindex_all(doc, version, ts, new_tree, resurrected),
            (Some(d), false) => self.apply_delta(doc, version, ts, new_tree, d),
        }
    }

    /// Opens postings (and lifetimes) for every element of the tree. For a
    /// resurrection, elements that already have open postings (none) or
    /// existing lifetimes are revived rather than re-created.
    fn reindex_all(
        &self,
        doc: DocId,
        version: VersionId,
        ts: Timestamp,
        tree: &Tree,
        revive: bool,
    ) -> Result<()> {
        let mut fti = self.fti.write();
        for n in tree.iter() {
            if !tree.node(n).is_element() {
                continue;
            }
            let xid = tree.node(n).xid;
            if self.fti_enabled() {
                let path = tree.xid_path(n);
                for (tok, kind) in element_signature(tree, n) {
                    fti.open_posting(&tok, doc, xid, kind, &path, version);
                }
            }
            if let Some(eid_idx) = &self.eid {
                let eid = Eid::new(doc, xid);
                if revive && eid_idx.lifetime(eid)?.is_some() {
                    eid_idx.on_revive(eid)?;
                } else {
                    eid_idx.on_create(eid, ts)?;
                }
            }
        }
        Ok(())
    }

    fn apply_delta(
        &self,
        doc: DocId,
        version: VersionId,
        ts: Timestamp,
        new_tree: &Tree,
        delta: &Delta,
    ) -> Result<()> {
        let new_map = new_tree.xid_map();
        let mut affected: HashSet<Xid> = HashSet::new();
        for op in &delta.ops {
            match op {
                EditOp::InsertSubtree { parent, subtree, .. }
                | EditOp::DeleteSubtree { parent, subtree, .. } => {
                    let mut any_element = false;
                    for n in subtree.iter() {
                        if subtree.node(n).is_element() {
                            affected.insert(subtree.node(n).xid);
                            any_element = true;
                        }
                    }
                    // A bare text payload changes the parent's word set.
                    if !any_element && !parent.is_none() {
                        affected.insert(*parent);
                    }
                }
                EditOp::UpdateText { xid, .. } => {
                    // Words belong to the parent element.
                    if let Some(&n) = new_map.get(xid) {
                        if let Some(p) = new_tree.node(n).parent() {
                            affected.insert(new_tree.node(p).xid);
                        }
                    }
                }
                EditOp::SetAttr { xid, .. } => {
                    affected.insert(*xid);
                }
                EditOp::Move { xid, old_parent, new_parent, .. } => {
                    if let Some(&n) = new_map.get(xid) {
                        if new_tree.node(n).is_element() {
                            // Paths of the whole moved subtree changed.
                            for d in new_tree.descendants(n) {
                                if new_tree.node(d).is_element() {
                                    affected.insert(new_tree.node(d).xid);
                                }
                            }
                        } else {
                            // Moved text: both parents' word sets changed.
                            if !old_parent.is_none() {
                                affected.insert(*old_parent);
                            }
                            if !new_parent.is_none() {
                                affected.insert(*new_parent);
                            }
                        }
                    }
                }
            }
        }

        let mut fti = self.fti.write();
        for xid in affected {
            let present = new_map.get(&xid).copied();
            match present {
                Some(n) if new_tree.node(n).is_element() => {
                    let desired_path = new_tree.xid_path(n);
                    let desired: Vec<(String, OccKind)> = element_signature(new_tree, n);
                    let current =
                        if self.fti_enabled() { fti.open_tokens(doc, xid) } else { Vec::new() };
                    let existed = self
                        .eid
                        .as_ref()
                        .map(|e| e.lifetime(Eid::new(doc, xid)))
                        .transpose()?
                        .flatten()
                        .is_some_and(|lt| lt.is_alive())
                        || !current.is_empty();
                    if self.fti_enabled() {
                        let path_changed = fti
                            .open_path(doc, xid)
                            .map(|p| p != desired_path.as_slice())
                            .unwrap_or(false);
                        if path_changed {
                            for (tok, kind) in &current {
                                fti.close_posting(tok, doc, xid, *kind, version);
                            }
                            for (tok, kind) in &desired {
                                fti.open_posting(tok, doc, xid, *kind, &desired_path, version);
                            }
                        } else {
                            for (tok, kind) in &current {
                                if !desired.contains(&(tok.clone(), *kind)) {
                                    fti.close_posting(tok, doc, xid, *kind, version);
                                }
                            }
                            for (tok, kind) in &desired {
                                if !current.contains(&(tok.clone(), *kind)) {
                                    fti.open_posting(tok, doc, xid, *kind, &desired_path, version);
                                }
                            }
                        }
                    }
                    if let Some(eid_idx) = &self.eid {
                        if !existed {
                            eid_idx.on_create(Eid::new(doc, xid), ts)?;
                        }
                    }
                }
                _ => {
                    // Element no longer present: close everything.
                    if self.fti_enabled() {
                        for (tok, kind) in fti.open_tokens(doc, xid) {
                            fti.close_posting(&tok, doc, xid, kind, version);
                        }
                    }
                    if let Some(eid_idx) = &self.eid {
                        let eid = Eid::new(doc, xid);
                        if eid_idx.lifetime(eid)?.is_some_and(|lt| lt.is_alive()) {
                            eid_idx.on_delete(eid, ts)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Shrinks the in-memory FTI after a vacuum purged `doc`'s history
    /// below `horizon` (the first version that survived). Closed postings
    /// that ended at or before the horizon are unreachable by any lookup
    /// and are dropped in place — a long-lived handle sees its posting
    /// lists shrink without a reopen. The delta-content index is left
    /// alone: it records *changes*, which the vacuum does not rewrite.
    /// Returns the number of postings removed.
    pub fn on_vacuum(&self, doc: DocId, horizon: VersionId) -> usize {
        if !self.fti_enabled() {
            return 0;
        }
        self.fti.write().purge_below(doc, horizon.0)
    }

    /// Maintains all indexes after a document deletion (tombstone at
    /// `version`, time `ts`).
    pub fn on_delete(
        &self,
        doc: DocId,
        version: VersionId,
        ts: Timestamp,
        old_tree: &Tree,
    ) -> Result<()> {
        if self.fti_enabled() {
            self.fti.write().close_document(doc, version);
        }
        if self.delta_enabled() {
            // Synthesize the whole-document delete for the change index.
            let mut ops = Vec::new();
            for (pos, &r) in old_tree.roots().iter().enumerate() {
                ops.push(EditOp::DeleteSubtree {
                    parent: Xid::NONE,
                    pos,
                    subtree: old_tree.extract_subtree(r),
                    old_parent_ts: Timestamp::ZERO,
                });
            }
            let d = Delta {
                from_version: VersionId(version.0.saturating_sub(1)),
                to_version: version,
                from_ts: Timestamp::ZERO,
                to_ts: ts,
                ops,
            };
            self.delta_index.write().index_delta(doc, &d);
        }
        if let Some(eid_idx) = &self.eid {
            for n in old_tree.iter() {
                if old_tree.node(n).is_element() {
                    let eid = Eid::new(doc, old_tree.node(n).xid);
                    if eid_idx.lifetime(eid)?.is_some_and(|lt| lt.is_alive()) {
                        eid_idx.on_delete(eid, ts)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// The occurrence signature of one element: its lowercased name (Name
/// occurrence) plus the word tokens of its attributes and immediate text
/// children (Word occurrences), deduplicated.
pub fn element_signature(tree: &Tree, n: NodeId) -> Vec<(String, OccKind)> {
    let mut out: Vec<(String, OccKind)> = Vec::new();
    let NodeKind::Element { name, attrs } = &tree.node(n).kind else {
        return out;
    };
    out.push((name.to_lowercase(), OccKind::Name));
    let push_word = |w: String, out: &mut Vec<(String, OccKind)>| {
        let item = (w, OccKind::Word);
        if !out.contains(&item) {
            out.push(item);
        }
    };
    for (k, v) in attrs {
        for t in tokenize(k).chain(tokenize(v)) {
            push_word(t, &mut out);
        }
    }
    for &c in tree.node(n).children() {
        if let Some(t) = tree.node(c).text() {
            for w in tokenize(t) {
                push_word(w, &mut out);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deltaindex::ChangeOp;
    use txdb_storage::repo::{DocumentStore, StoreOptions};

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    /// A store + index set wired together manually (the core crate's
    /// Database does this wiring for real use).
    struct Fixture {
        store: DocumentStore,
        idx: IndexSet,
    }

    impl Fixture {
        fn new(mode: FtiMode) -> Fixture {
            let store = DocumentStore::open(StoreOptions::default()).unwrap().0;
            let idx = IndexSet::open(
                store.pool().clone(),
                IndexConfig { fti_mode: mode, ..IndexConfig::default() },
            )
            .unwrap();
            Fixture { store, idx }
        }

        fn put(&self, name: &str, xml: &str, t: Timestamp) -> txdb_storage::repo::PutResult {
            let was_deleted = self
                .store
                .doc_id(name)
                .unwrap()
                .map(|d| self.store.is_deleted(d).unwrap())
                .unwrap_or(false);
            let r = self.store.put(name, xml, t).unwrap();
            if r.changed {
                self.idx
                    .on_put(r.doc, r.version, r.ts, &r.new_tree, r.delta.as_ref(), was_deleted)
                    .unwrap();
            }
            r
        }

        fn delete(&self, name: &str, t: Timestamp) {
            if let Some(d) = self.store.delete(name, t).unwrap() {
                self.idx.on_delete(d.doc, d.version, d.ts, &d.old_tree).unwrap();
            }
        }

        /// Oracle: tokens visible for `tok` in the reconstructed version at
        /// time `t`, via direct scan.
        fn scan_word_at(&self, tok: &str, t: Timestamp) -> usize {
            let mut count = 0;
            for (doc, _) in self.store.list().unwrap() {
                let Some(v) = self.store.version_at(doc, t).unwrap() else { continue };
                let tree = self.store.version_tree(doc, v).unwrap();
                for n in tree.iter() {
                    if tree.node(n).is_element()
                        && element_signature(&tree, n)
                            .iter()
                            .any(|(w, k)| w == tok && *k == OccKind::Word)
                    {
                        count += 1;
                    }
                }
            }
            count
        }

        /// FTI count for a word at time t.
        fn fti_word_at(&self, tok: &str, t: Timestamp) -> usize {
            self.idx
                .fti()
                .lookup_t(tok, OccKind::Word, |doc| self.store.version_at(doc, t).unwrap())
                .len()
        }
    }

    #[test]
    fn initial_version_indexed() {
        let f = Fixture::new(FtiMode::Versions);
        f.put(
            "guide",
            r#"<guide><restaurant category="italian"><name>Napoli</name></restaurant></guide>"#,
            ts(1),
        );
        let fti = f.idx.fti();
        assert_eq!(fti.lookup("restaurant", OccKind::Name).len(), 1);
        assert_eq!(fti.lookup("napoli", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("italian", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("guide", OccKind::Name).len(), 1);
        // Word occurrences attributed to the containing element.
        let p = &fti.lookup("napoli", OccKind::Word)[0];
        assert_eq!(p.path.len(), 3, "guide/restaurant/name");
    }

    #[test]
    fn text_update_closes_and_opens() {
        let f = Fixture::new(FtiMode::Versions);
        f.put("d", "<g><r><p>fifteen</p></r></g>", ts(1));
        f.put("d", "<g><r><p>eighteen</p></r></g>", ts(2));
        let fti = f.idx.fti();
        assert_eq!(fti.lookup("fifteen", OccKind::Word).len(), 0);
        assert_eq!(fti.lookup("eighteen", OccKind::Word).len(), 1);
        // History intact.
        assert_eq!(fti.lookup_h("fifteen", OccKind::Word).len(), 1);
        drop(fti);
        assert_eq!(f.fti_word_at("fifteen", ts(1)), 1);
        assert_eq!(f.fti_word_at("fifteen", ts(2)), 0);
        assert_eq!(f.fti_word_at("eighteen", ts(2)), 1);
    }

    #[test]
    fn insert_and_delete_subtrees() {
        let f = Fixture::new(FtiMode::Versions);
        f.put("d", "<g><r><n>Napoli</n></r></g>", ts(1));
        f.put("d", "<g><r><n>Napoli</n></r><r><n>Akropolis</n></r></g>", ts(2));
        assert_eq!(f.idx.fti().lookup("akropolis", OccKind::Word).len(), 1);
        assert_eq!(f.idx.fti().lookup("restaurant", OccKind::Name).len(), 0);
        assert_eq!(f.idx.fti().lookup("r", OccKind::Name).len(), 2);
        f.put("d", "<g><r><n>Akropolis</n></r></g>", ts(3));
        assert_eq!(f.idx.fti().lookup("napoli", OccKind::Word).len(), 0);
        assert_eq!(f.fti_word_at("napoli", ts(2)), 1);
        assert_eq!(f.fti_word_at("napoli", ts(3)), 0);
        // Oracle agreement at every time point.
        for t in [ts(1), ts(2), ts(3)] {
            assert_eq!(f.fti_word_at("napoli", t), f.scan_word_at("napoli", t));
            assert_eq!(f.fti_word_at("akropolis", t), f.scan_word_at("akropolis", t));
        }
    }

    #[test]
    fn document_delete_closes_postings_and_lifetimes() {
        let f = Fixture::new(FtiMode::Versions);
        let r = f.put("d", "<g><n>Napoli</n></g>", ts(1));
        f.delete("d", ts(2));
        assert_eq!(f.idx.fti().lookup("napoli", OccKind::Word).len(), 0);
        assert_eq!(f.fti_word_at("napoli", ts(1)), 1);
        // EID lifetimes closed at deletion.
        let eidx = f.idx.eid_index().unwrap();
        let root_xid = {
            let t = &r.new_tree;
            t.node(t.root().unwrap()).xid
        };
        let lt = eidx.lifetime(Eid::new(r.doc, root_xid)).unwrap().unwrap();
        assert_eq!(lt.created, ts(1));
        assert_eq!(lt.deleted, ts(2));
    }

    #[test]
    fn resurrection_reopens_postings() {
        let f = Fixture::new(FtiMode::Versions);
        let r = f.put("d", "<g><n>Napoli</n></g>", ts(1));
        f.delete("d", ts(2));
        f.put("d", "<g><n>Napoli</n></g>", ts(3));
        assert_eq!(f.idx.fti().lookup("napoli", OccKind::Word).len(), 1);
        assert_eq!(f.fti_word_at("napoli", ts(2)), 0, "gone during tombstone gap");
        assert_eq!(f.fti_word_at("napoli", ts(3)), 1);
        // Lifetime revived, original create time kept.
        let eidx = f.idx.eid_index().unwrap();
        let root_xid = {
            let t = &r.new_tree;
            t.node(t.root().unwrap()).xid
        };
        let lt = eidx.lifetime(Eid::new(r.doc, root_xid)).unwrap().unwrap();
        assert_eq!(lt.created, ts(1));
        assert!(lt.is_alive());
    }

    #[test]
    fn element_lifetimes_from_updates() {
        let f = Fixture::new(FtiMode::Versions);
        let r = f.put("d", "<g><a>one</a></g>", ts(1));
        f.put("d", "<g><a>one</a><b>two</b></g>", ts(2));
        f.put("d", "<g><b>two</b></g>", ts(3));
        let eidx = f.idx.eid_index().unwrap();
        let lts = eidx.doc_lifetimes(r.doc).unwrap();
        // g, a, text(one) created at 1; b, text(two) created at 2; a's
        // lifetime [1, 3). Text nodes are not tracked (element index).
        let alive: Vec<_> = lts.iter().filter(|(_, lt)| lt.is_alive()).collect();
        assert_eq!(alive.len(), 2, "g and b alive: {lts:?}");
        let dead: Vec<_> = lts.iter().filter(|(_, lt)| !lt.is_alive()).collect();
        assert_eq!(dead.len(), 1, "a deleted");
        assert_eq!(dead[0].1.created, ts(1));
        assert_eq!(dead[0].1.deleted, ts(3));
    }

    #[test]
    fn move_updates_paths() {
        let f = Fixture::new(FtiMode::Versions);
        f.put("d", "<g><a><big><x>deep</x></big></a><b/></g>", ts(1));
        {
            let fti = f.idx.fti();
            let p = &fti.lookup("deep", OccKind::Word)[0];
            assert_eq!(p.path.len(), 4, "g/a/big/x");
        }
        f.put("d", "<g><a/><b><big><x>deep</x></big></b></g>", ts(2));
        let fti = f.idx.fti();
        let hits = fti.lookup("deep", OccKind::Word);
        assert_eq!(hits.len(), 1);
        // Path now runs through b.
        let b_hits = fti.lookup("b", OccKind::Name);
        assert_eq!(b_hits.len(), 1);
        assert!(b_hits[0].is_ancestor_of(hits[0]), "moved under b");
    }

    #[test]
    fn attribute_change_indexed() {
        let f = Fixture::new(FtiMode::Versions);
        f.put("d", r#"<r category="italian"/>"#, ts(1));
        f.put("d", r#"<r category="greek"/>"#, ts(2));
        let fti = f.idx.fti();
        assert_eq!(fti.lookup("italian", OccKind::Word).len(), 0);
        assert_eq!(fti.lookup("greek", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup_h("italian", OccKind::Word).len(), 1);
    }

    #[test]
    fn unchanged_elements_untouched() {
        // Posting count grows only by the changed element's tokens.
        let f = Fixture::new(FtiMode::Versions);
        f.put("d", "<g><r><n>Napoli</n><p>15</p></r><r><n>Akropolis</n><p>13</p></r></g>", ts(1));
        let before = f.idx.fti().posting_count();
        f.put("d", "<g><r><n>Napoli</n><p>18</p></r><r><n>Akropolis</n><p>13</p></r></g>", ts(2));
        let after = f.idx.fti().posting_count();
        // price 15→18: one closed (15) + one opened (18) ⇒ +1 posting.
        assert_eq!(after, before + 1, "only the price element re-indexed");
    }

    #[test]
    fn delta_mode_indexes_changes_not_content() {
        let f = Fixture::new(FtiMode::Deltas);
        f.put("d", "<g><n>Napoli</n></g>", ts(1));
        f.put("d", "<g><n>Roma</n></g>", ts(2));
        // No content FTI.
        assert_eq!(f.idx.fti().lookup("roma", OccKind::Word).len(), 0);
        // But the change is findable.
        let di = f.idx.delta_index();
        assert_eq!(di.find("napoli", Some(ChangeOp::Update)).len(), 1);
        assert_eq!(di.find("roma", None).len(), 1);
    }

    #[test]
    fn both_mode_maintains_both() {
        let f = Fixture::new(FtiMode::Both);
        f.put("d", "<g><n>Napoli</n></g>", ts(1));
        f.put("d", "<g></g>", ts(2));
        assert_eq!(f.idx.fti().lookup_h("napoli", OccKind::Word).len(), 1);
        assert_eq!(f.idx.delta_index().find("napoli", Some(ChangeOp::Delete)).len(), 1);
    }

    #[test]
    fn delete_in_delta_mode_synthesizes_change() {
        let f = Fixture::new(FtiMode::Deltas);
        f.put("d", "<g><n>Napoli</n></g>", ts(1));
        f.delete("d", ts(2));
        let di = f.idx.delta_index();
        assert_eq!(di.find("napoli", Some(ChangeOp::Delete)).len(), 1);
    }

    #[test]
    fn fti_oracle_agreement_random_workload() {
        // Differential check across a longer update sequence.
        let f = Fixture::new(FtiMode::Versions);
        let words = ["alpha", "beta", "gamma", "delta"];
        let mut t = 1u64;
        for round in 0..12u64 {
            for d in 0..3u64 {
                let w1 = words[((round + d) % 4) as usize];
                let w2 = words[((round * 3 + d) % 4) as usize];
                let xml =
                    format!("<doc><item><v>{w1}</v></item><item><v>{w2} {w1}</v></item></doc>");
                f.put(&format!("doc{d}"), &xml, ts(t));
                t += 1;
            }
        }
        for probe in [1, 5, 14, 20, 30, 36] {
            for w in words {
                assert_eq!(
                    f.fti_word_at(w, ts(probe)),
                    f.scan_word_at(w, ts(probe)),
                    "word {w} at t{probe}"
                );
            }
        }
    }
}
