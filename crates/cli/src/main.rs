//! `txdb` — the command-line front end of the temporal XML database.
//!
//! ```text
//! txdb --db DIR put <name> <file.xml> [--at TIME]   store a new version
//! txdb --db DIR delete <name> [--at TIME]           delete (tombstone)
//! txdb --db DIR ls                                  list documents
//! txdb --db DIR log <name>                          version history (delta index)
//! txdb --db DIR cat <name> [--at TIME | --version N] [--pretty]
//! txdb --db DIR diff <name> <t1> <t2>               edit script between snapshots
//! txdb --db DIR query [--explain] "SELECT …"        run a temporal query
//! txdb --db DIR query "EXPLAIN ANALYZE SELECT …"    …with the timed plan tree
//! txdb --db DIR stats                               space and index statistics
//! txdb --db DIR metrics [--json]                    engine metrics registry dump
//! txdb --db DIR shell                               interactive query shell
//! ```
//!
//! `TIME` accepts the paper's `DD/MM/YYYY`, ISO `YYYY-MM-DD[THH:MM[:SS]]`,
//! or raw microseconds since the epoch; `--at` defaults to the wall clock.
//! Without `--db` the database lives in memory (useful for `shell`).

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("txdb: {e}");
            ExitCode::FAILURE
        }
    }
}
